//! The span sink: causal event collection with the one-untaken-branch
//! disabled-cost contract.
//!
//! A [`SpanSink`] is created per traced run and threaded through
//! instrumented code as `Option<&mut SpanSink>`. Emitters record:
//!
//! * **closed spans** ([`SpanSink::span`]) or **nested enter/exit
//!   pairs** ([`SpanSink::enter`] / [`SpanSink::exit`]) on a [`Track`];
//! * **instant events** ([`SpanSink::instant`]) — zero-duration marks;
//! * **item visits** ([`SpanSink::visit`]) — the structured record of
//!   one item passing through one stage, carrying the exact
//!   enqueue/eligible/consumed/done timestamps that decompose its
//!   sojourn into enforced wait + queueing backlog + service;
//! * **item fates** ([`SpanSink::fate`]) — one per stream input:
//!   arrival time and completion time (or `None` for drops).
//!
//! [`SpanSink::finish`] folds everything into a serializable
//! [`TraceLog`], closing any spans left open at their start time.

use serde::{Deserialize, Serialize};

/// Which family of timeline a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackKind {
    /// A pipeline stage's firing timeline (index = stage).
    Stage,
    /// A stream input's lifeline (index = origin).
    Item,
    /// Solver activity (index = solve attempt, wall-clock microseconds).
    Solver,
}

/// A timeline identifier: kind plus an index within the kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Track {
    /// Timeline family.
    pub kind: TrackKind,
    /// Index within the family (stage number, item origin, solve id).
    pub index: u64,
}

impl Track {
    /// The firing timeline of pipeline stage `stage`.
    pub fn stage(stage: usize) -> Track {
        Track {
            kind: TrackKind::Stage,
            index: stage as u64,
        }
    }

    /// The lifeline of stream input `origin`.
    pub fn item(origin: u64) -> Track {
        Track {
            kind: TrackKind::Item,
            index: origin,
        }
    }

    /// The solver timeline for solve attempt `attempt`.
    pub fn solver(attempt: u64) -> Track {
        Track {
            kind: TrackKind::Solver,
            index: attempt,
        }
    }
}

/// One closed span: a named interval on a track.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Timeline the span lives on.
    pub track: Track,
    /// Short, low-cardinality name (groups identical work in viewers).
    pub name: String,
    /// Category, e.g. `"firing"`, `"solver"`, `"lifeline"`.
    pub cat: String,
    /// Free-form detail rendered as a span argument (may be empty).
    pub detail: String,
    /// Start timestamp (simulated cycles, or µs for solver tracks).
    pub start: f64,
    /// Duration in the same unit as `start`.
    pub dur: f64,
    /// Nesting depth at emission (0 = top level of its track).
    pub depth: u32,
}

/// A zero-duration mark on a track.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstantRecord {
    /// Timeline the mark lives on.
    pub track: Track,
    /// Event name.
    pub name: String,
    /// Timestamp.
    pub at: f64,
}

/// One sample of a named numeric series on a track (e.g. the solver's
/// per-iteration residual). Rendered as a Chrome `ph:"C"` counter track
/// so convergence is visible as a curve alongside the solve spans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterRecord {
    /// Timeline the sample belongs to.
    pub track: Track,
    /// Series name (e.g. `"residual"`, `"barrier-mu"`).
    pub name: String,
    /// Timestamp, in the track's time unit.
    pub at: f64,
    /// Sampled value.
    pub value: f64,
}

/// One item's passage through one stage, with the timestamps that
/// partition its sojourn exactly:
///
/// ```text
/// enqueued ──enforced wait──▶ eligible ──queue wait──▶ consumed ──service──▶ done
/// ```
///
/// * **enforced wait** (`eligible − enqueued`): time until the stage's
///   first firing opportunity at or after the item entered the queue —
///   the structural delay imposed by the enforced-waits period (or, for
///   the monolithic strategy, by waiting for the block to fill).
/// * **queue wait** (`consumed − eligible`): extra firings the item had
///   to wait out because items ahead of it filled earlier firings — the
///   empirical counterpart of the paper's backlog term `b_i`.
/// * **service** (`done − consumed`): the firing that consumed the item.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ItemVisit {
    /// Stream input this item derives from.
    pub origin: u64,
    /// Stage visited.
    pub stage: u32,
    /// When the item entered the stage's input queue.
    pub enqueued: f64,
    /// First firing instant at or after `enqueued`.
    pub eligible: f64,
    /// Firing instant that actually consumed the item.
    pub consumed: f64,
    /// `consumed` + the stage's service time.
    pub done: f64,
}

impl ItemVisit {
    /// Structural wait for the next firing opportunity.
    pub fn enforced_wait(&self) -> f64 {
        self.eligible - self.enqueued
    }

    /// Extra wait caused by backlog ahead of the item.
    pub fn queue_wait(&self) -> f64 {
        self.consumed - self.eligible
    }

    /// Service time of the consuming firing.
    pub fn service(&self) -> f64 {
        self.done - self.consumed
    }

    /// Total time from enqueue to firing completion.
    pub fn sojourn(&self) -> f64 {
        self.done - self.enqueued
    }
}

/// The fate of one stream input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ItemFate {
    /// Stream input index.
    pub origin: u64,
    /// Arrival time.
    pub arrival: f64,
    /// Completion time of the last derived item, or `None` if the input
    /// was still unresolved when the run ended (a drop).
    pub completion: Option<f64>,
}

impl ItemFate {
    /// End-to-end latency, if the input completed.
    pub fn latency(&self) -> Option<f64> {
        self.completion.map(|c| c - self.arrival)
    }
}

/// Capacity limits for a [`SpanSink`].
///
/// Long runs emit one visit per item per stage and one span per firing;
/// the caps below bound memory for pathological runs. When a cap is
/// hit, further records of that kind are counted (see
/// [`TraceLog::dropped_spans`] / [`TraceLog::dropped_visits`]) but not
/// stored — the newest records are dropped, keeping the causally
/// earliest prefix intact so lifelines stay reconstructable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Maximum generic spans + instants retained.
    pub max_spans: usize,
    /// Maximum item visits retained.
    pub max_visits: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            max_spans: 1 << 20,
            max_visits: 1 << 21,
        }
    }
}

/// Live span collector. Construct per traced run, thread through
/// instrumented code as `Option<&mut SpanSink>`, then call
/// [`SpanSink::finish`].
#[derive(Debug, Clone)]
pub struct SpanSink {
    config: TraceConfig,
    spans: Vec<SpanRecord>,
    open: Vec<SpanRecord>,
    instants: Vec<InstantRecord>,
    counters: Vec<CounterRecord>,
    visits: Vec<ItemVisit>,
    fates: Vec<ItemFate>,
    dropped_spans: u64,
    dropped_visits: u64,
}

impl SpanSink {
    /// Sink with the given capacity limits.
    pub fn new(config: TraceConfig) -> Self {
        SpanSink {
            config,
            spans: Vec::new(),
            open: Vec::new(),
            instants: Vec::new(),
            counters: Vec::new(),
            visits: Vec::new(),
            fates: Vec::new(),
            dropped_spans: 0,
            dropped_visits: 0,
        }
    }

    /// Sink with default limits.
    pub fn with_defaults() -> Self {
        SpanSink::new(TraceConfig::default())
    }

    fn span_room(&mut self) -> bool {
        if self.spans.len() + self.open.len() + self.instants.len() + self.counters.len()
            >= self.config.max_spans
        {
            self.dropped_spans += 1;
            return false;
        }
        true
    }

    /// Record a closed span.
    pub fn span(
        &mut self,
        track: Track,
        name: impl Into<String>,
        cat: impl Into<String>,
        start: f64,
        end: f64,
    ) {
        self.span_detail(track, name, cat, String::new(), start, end);
    }

    /// Record a closed span with a detail argument.
    pub fn span_detail(
        &mut self,
        track: Track,
        name: impl Into<String>,
        cat: impl Into<String>,
        detail: impl Into<String>,
        start: f64,
        end: f64,
    ) {
        if !self.span_room() {
            return;
        }
        self.spans.push(SpanRecord {
            track,
            name: name.into(),
            cat: cat.into(),
            detail: detail.into(),
            start,
            dur: (end - start).max(0.0),
            depth: self.open.len() as u32,
        });
    }

    /// Open a nested span; close it with [`SpanSink::exit`]. Nesting is
    /// a single stack shared across tracks (matching how instrumented
    /// code calls it: strictly LIFO within one emitter).
    pub fn enter(
        &mut self,
        track: Track,
        name: impl Into<String>,
        cat: impl Into<String>,
        start: f64,
    ) {
        if !self.span_room() {
            // Still push a placeholder so enter/exit stay paired.
            self.open.push(SpanRecord {
                track,
                name: String::new(),
                cat: String::new(),
                detail: String::new(),
                start,
                dur: f64::NAN,
                depth: u32::MAX, // sentinel: dropped on exit
            });
            return;
        }
        let depth = self.open.len() as u32;
        self.open.push(SpanRecord {
            track,
            name: name.into(),
            cat: cat.into(),
            detail: String::new(),
            start,
            dur: f64::NAN,
            depth,
        });
    }

    /// Close the innermost open span at `end`. Returns `false` (and
    /// records nothing) if no span is open.
    pub fn exit(&mut self, end: f64) -> bool {
        match self.open.pop() {
            Some(mut rec) => {
                if rec.depth != u32::MAX {
                    rec.dur = (end - rec.start).max(0.0);
                    self.spans.push(rec);
                }
                true
            }
            None => false,
        }
    }

    /// Record an instant event.
    pub fn instant(&mut self, track: Track, name: impl Into<String>, at: f64) {
        if !self.span_room() {
            return;
        }
        self.instants.push(InstantRecord {
            track,
            name: name.into(),
            at,
        });
    }

    /// Record one sample of a numeric series (counted against the span
    /// cap, like instants).
    pub fn counter(&mut self, track: Track, name: impl Into<String>, at: f64, value: f64) {
        if !self.span_room() {
            return;
        }
        self.counters.push(CounterRecord {
            track,
            name: name.into(),
            at,
            value,
        });
    }

    /// Record one item-stage visit.
    pub fn visit(&mut self, visit: ItemVisit) {
        if self.visits.len() >= self.config.max_visits {
            self.dropped_visits += 1;
            return;
        }
        self.visits.push(visit);
    }

    /// Record a stream input's fate. Fates are never capped: there is
    /// exactly one per stream input and the forensics layer needs all
    /// of them.
    pub fn fate(&mut self, fate: ItemFate) {
        self.fates.push(fate);
    }

    /// Number of visits recorded so far.
    pub fn visit_count(&self) -> usize {
        self.visits.len()
    }

    /// Fold into a [`TraceLog`]. Spans still open are closed with zero
    /// duration at their start time.
    pub fn finish(mut self) -> TraceLog {
        while let Some(mut rec) = self.open.pop() {
            if rec.depth != u32::MAX {
                rec.dur = 0.0;
                self.spans.push(rec);
            }
        }
        TraceLog {
            spans: self.spans,
            instants: self.instants,
            counters: self.counters,
            visits: self.visits,
            fates: self.fates,
            dropped_spans: self.dropped_spans,
            dropped_visits: self.dropped_visits,
        }
    }
}

/// A finished, serializable trace: everything a [`SpanSink`] collected.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    /// Closed spans, in emission order.
    pub spans: Vec<SpanRecord>,
    /// Instant events, in emission order.
    pub instants: Vec<InstantRecord>,
    /// Counter-series samples, in emission order.
    pub counters: Vec<CounterRecord>,
    /// Item-stage visits, in consumption order.
    pub visits: Vec<ItemVisit>,
    /// Per-input fates (one per stream input that arrived).
    pub fates: Vec<ItemFate>,
    /// Spans/instants discarded after [`TraceConfig::max_spans`].
    pub dropped_spans: u64,
    /// Visits discarded after [`TraceConfig::max_visits`].
    pub dropped_visits: u64,
}

impl TraceLog {
    /// Merge another log into this one (e.g. solver spans + sim spans).
    pub fn merge(&mut self, other: TraceLog) {
        self.spans.extend(other.spans);
        self.instants.extend(other.instants);
        self.counters.extend(other.counters);
        self.visits.extend(other.visits);
        self.fates.extend(other.fates);
        self.dropped_spans += other.dropped_spans;
        self.dropped_visits += other.dropped_visits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_spans_record_duration() {
        let mut s = SpanSink::with_defaults();
        s.span(Track::stage(0), "fire", "firing", 10.0, 15.0);
        let log = s.finish();
        assert_eq!(log.spans.len(), 1);
        assert_eq!(log.spans[0].start, 10.0);
        assert_eq!(log.spans[0].dur, 5.0);
        assert_eq!(log.spans[0].depth, 0);
    }

    #[test]
    fn enter_exit_nest() {
        let mut s = SpanSink::with_defaults();
        s.enter(Track::solver(0), "solve", "solver", 0.0);
        s.enter(Track::solver(0), "iteration", "solver", 1.0);
        assert!(s.exit(2.0));
        assert!(s.exit(5.0));
        assert!(!s.exit(6.0), "stack is empty");
        let log = s.finish();
        assert_eq!(log.spans.len(), 2);
        // Inner span closed first, at depth 1.
        assert_eq!(log.spans[0].name, "iteration");
        assert_eq!(log.spans[0].depth, 1);
        assert_eq!(log.spans[0].dur, 1.0);
        assert_eq!(log.spans[1].name, "solve");
        assert_eq!(log.spans[1].depth, 0);
        assert_eq!(log.spans[1].dur, 5.0);
    }

    #[test]
    fn dangling_open_spans_closed_at_finish() {
        let mut s = SpanSink::with_defaults();
        s.enter(Track::stage(1), "fire", "firing", 3.0);
        let log = s.finish();
        assert_eq!(log.spans.len(), 1);
        assert_eq!(log.spans[0].dur, 0.0);
    }

    #[test]
    fn caps_drop_newest_and_count() {
        let mut s = SpanSink::new(TraceConfig {
            max_spans: 2,
            max_visits: 1,
        });
        for i in 0..4 {
            s.span(Track::stage(0), "f", "firing", i as f64, i as f64 + 1.0);
        }
        s.visit(ItemVisit {
            origin: 0,
            stage: 0,
            enqueued: 0.0,
            eligible: 1.0,
            consumed: 2.0,
            done: 3.0,
        });
        s.visit(ItemVisit {
            origin: 1,
            stage: 0,
            enqueued: 0.0,
            eligible: 1.0,
            consumed: 2.0,
            done: 3.0,
        });
        let log = s.finish();
        assert_eq!(log.spans.len(), 2);
        assert_eq!(log.dropped_spans, 2);
        assert_eq!(log.spans[0].start, 0.0, "earliest prefix kept");
        assert_eq!(log.visits.len(), 1);
        assert_eq!(log.dropped_visits, 1);
    }

    #[test]
    fn visit_decomposition_partitions_sojourn() {
        let v = ItemVisit {
            origin: 7,
            stage: 2,
            enqueued: 100.0,
            eligible: 130.0,
            consumed: 170.0,
            done: 200.0,
        };
        assert_eq!(v.enforced_wait(), 30.0);
        assert_eq!(v.queue_wait(), 40.0);
        assert_eq!(v.service(), 30.0);
        assert_eq!(
            v.enforced_wait() + v.queue_wait() + v.service(),
            v.sojourn()
        );
    }

    #[test]
    fn fate_latency() {
        let done = ItemFate {
            origin: 0,
            arrival: 10.0,
            completion: Some(110.0),
        };
        assert_eq!(done.latency(), Some(100.0));
        let dropped = ItemFate {
            origin: 1,
            arrival: 10.0,
            completion: None,
        };
        assert_eq!(dropped.latency(), None);
    }

    #[test]
    fn counters_record_and_cap_like_instants() {
        let mut s = SpanSink::new(TraceConfig {
            max_spans: 2,
            max_visits: 8,
        });
        s.counter(Track::solver(0), "residual", 0.0, 1.0);
        s.counter(Track::solver(0), "residual", 1.0, 0.1);
        s.counter(Track::solver(0), "residual", 2.0, 0.01); // over cap
        let log = s.finish();
        assert_eq!(log.counters.len(), 2);
        assert_eq!(log.dropped_spans, 1);
        assert_eq!(log.counters[1].value, 0.1);
    }

    #[test]
    fn log_round_trips_through_json() {
        let mut s = SpanSink::with_defaults();
        s.span_detail(Track::stage(0), "fire", "firing", "take=3", 0.0, 4.0);
        s.instant(Track::solver(1), "fallback", 9.0);
        s.counter(Track::solver(1), "residual", 10.0, 0.5);
        s.visit(ItemVisit {
            origin: 3,
            stage: 1,
            enqueued: 1.0,
            eligible: 2.0,
            consumed: 3.0,
            done: 4.0,
        });
        s.fate(ItemFate {
            origin: 3,
            arrival: 1.0,
            completion: None,
        });
        let log = s.finish();
        let v = serde_json::to_value(&log).unwrap();
        let back: TraceLog = serde_json::from_value(&v).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn merge_concatenates_and_sums_drops() {
        let mut a = SpanSink::new(TraceConfig {
            max_spans: 1,
            max_visits: 8,
        });
        a.span(Track::stage(0), "x", "c", 0.0, 1.0);
        a.span(Track::stage(0), "y", "c", 1.0, 2.0); // dropped
        let mut log = a.finish();
        let mut b = SpanSink::with_defaults();
        b.instant(Track::item(0), "drop", 5.0);
        log.merge(b.finish());
        assert_eq!(log.spans.len(), 1);
        assert_eq!(log.instants.len(), 1);
        assert_eq!(log.dropped_spans, 1);
    }
}
