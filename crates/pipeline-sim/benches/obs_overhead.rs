//! Overhead of the observability layer on the enforced-waits simulator.
//!
//! Three variants of the same run:
//!
//! - `obs_disabled` — the public [`simulate_enforced`] entry point,
//!   which passes `None` for the sink. The per-event cost of
//!   instrumentation is a branch on an `Option` that is never taken;
//!   this must stay within noise (≤2%) of the seed simulator.
//! - `obs_enabled` — full per-stage histograms and counters.
//! - `obs_enabled_traced` — histograms plus a 256-event ring trace.

use criterion::{criterion_group, criterion_main, Criterion};
use dataflow_model::{GainModel, PipelineSpec, PipelineSpecBuilder, RtParams};
use des::obs::ObsConfig;
use pipeline_sim::{simulate_enforced, simulate_enforced_observed, SimConfig};
use rtsdf_core::{EnforcedWaitsProblem, SolveMethod, WaitSchedule};
use std::hint::black_box;

fn blast() -> PipelineSpec {
    PipelineSpecBuilder::new(128)
        .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
        .stage(
            "s1",
            955.0,
            GainModel::CensoredPoisson {
                mean: 1.920,
                cap: 16,
            },
        )
        .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
        .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
        .build()
        .unwrap()
}

fn schedule(pipeline: &PipelineSpec) -> WaitSchedule {
    let params = RtParams::new(20.0, 2e5).unwrap();
    EnforcedWaitsProblem::new(pipeline, params, vec![1.0, 3.0, 9.0, 6.0])
        .solve(SolveMethod::WaterFilling)
        .unwrap()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let p = blast();
    let sched = schedule(&p);
    let cfg = SimConfig::quick(20.0, 7, 2_000);

    c.bench_function("enforced_obs_disabled", |b| {
        b.iter(|| black_box(simulate_enforced(&p, &sched, 2e5, &cfg)))
    });
    c.bench_function("enforced_obs_enabled", |b| {
        b.iter(|| {
            black_box(simulate_enforced_observed(
                &p,
                &sched,
                2e5,
                &cfg,
                ObsConfig::default(),
            ))
        })
    });
    c.bench_function("enforced_obs_enabled_traced", |b| {
        b.iter(|| {
            black_box(simulate_enforced_observed(
                &p,
                &sched,
                2e5,
                &cfg,
                ObsConfig::with_trace(256),
            ))
        })
    });
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
