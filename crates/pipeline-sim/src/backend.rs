//! The simulator as a [`PipelineExecutor`] backend.
//!
//! `rtsdf-exec` runs schedules on OS threads; this module wraps the
//! discrete-event simulator behind the *same* trait, so callers (the
//! CLI's `execute` command, the sim-vs-real comparison) can drive
//! either backend through one interface and compare
//! [`dataflow_model::ExecOutcome`]s quantity by quantity.

use crate::config::SimConfig;
use crate::enforced::simulate_enforced_topology;
use crate::metrics::SimMetrics;
use crate::monolithic::simulate_monolithic_topology;
use dataflow_model::exec::{ExecOutcome, IntoOutcome, PipelineExecutor};
use dataflow_model::Topology;
use rtsdf_core::AnySchedule;
use std::convert::Infallible;

impl IntoOutcome for SimMetrics {
    fn outcome(&self) -> ExecOutcome {
        ExecOutcome {
            items_arrived: self.items_arrived,
            items_completed: self.items_completed,
            items_dropped: self.items_dropped,
            deadline_misses: self.deadline_misses,
            active_fraction: self.active_fraction,
            mean_latency: self.latency.mean(),
            horizon_cycles: self.horizon,
        }
    }
}

/// The discrete-event simulator behind the [`PipelineExecutor`] trait.
#[derive(Debug, Clone)]
pub struct DesBackend {
    /// Simulation configuration (stream, seed, arrivals, discipline).
    pub config: SimConfig,
    /// Per-item end-to-end deadline, cycles.
    pub deadline: f64,
}

impl PipelineExecutor for DesBackend {
    type Schedule = AnySchedule;
    type Report = SimMetrics;
    type Error = Infallible;

    fn name(&self) -> &'static str {
        "des"
    }

    fn run(&self, topology: &Topology, schedule: &AnySchedule) -> Result<SimMetrics, Infallible> {
        Ok(match schedule {
            AnySchedule::Enforced(s) => {
                simulate_enforced_topology(topology, s, self.deadline, &self.config)
            }
            AnySchedule::Monolithic(s) => {
                simulate_monolithic_topology(topology, s, self.deadline, &self.config)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{GainModel, PipelineSpecBuilder, RtParams};
    use rtsdf_core::{EnforcedWaitsProblem, SolveMethod};

    #[test]
    fn des_backend_runs_via_trait_and_reports_outcome() {
        let p = PipelineSpecBuilder::new(16)
            .stage("a", 100.0, GainModel::Deterministic { k: 1 })
            .stage("b", 200.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap();
        let topology = Topology::chain(&p);
        let params = RtParams::new(40.0, 5e4).unwrap();
        let schedule = EnforcedWaitsProblem::new(&p, params, vec![1.0, 1.0])
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let backend = DesBackend {
            config: SimConfig::quick(40.0, 3, 200),
            deadline: 5e4,
        };
        let metrics = backend
            .run(&topology, &AnySchedule::from(schedule))
            .unwrap();
        let outcome = metrics.outcome();
        assert_eq!(outcome.items_arrived, 200);
        assert!(outcome.conservation_holds());
        assert!(outcome.active_fraction > 0.0);
        assert_eq!(backend.name(), "des");
    }
}
