//! Empirical calibration of the backlog factors `b_i` (paper §6.2).
//!
//! The deadline constraint of the Fig.-1 program needs worst-case queue
//! sizes, expressed as multiples `b_i` of the vector width. Estimating
//! them from queueing theory is hard for a tandem network of
//! bulk-service queues (§3), so the paper calibrates empirically:
//!
//! 1. start optimistically at `b_i = ⌈g_i⌉`;
//! 2. optimize the waits and simulate many seeds over the operating
//!    grid;
//! 3. if too many runs miss deadlines, raise the factors of the nodes
//!    whose observed queue high-water marks exceeded the design
//!    assumption, and repeat.
//!
//! The paper reports `b = [1, 3, 9, 6]` for the BLAST pipeline, reaching
//! miss-free execution in ≥ 95% of random trials across the grid.

use crate::config::SimConfig;
use crate::runner::run_seeds_enforced;
use dataflow_model::{PipelineSpec, RtParams};
use rtsdf_core::{EnforcedWaitsProblem, SolveMethod, WarmStart};
use serde::{Deserialize, Serialize};

/// Calibration methodology parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Operating points to validate on. Infeasible points are skipped
    /// (matching the paper, whose grid is chosen within the feasible
    /// region).
    pub grid: Vec<RtParams>,
    /// Random seeds per operating point (paper: 100).
    pub seeds_per_point: u64,
    /// Stream length per run (paper: 50 000).
    pub stream_length: usize,
    /// Required fraction of miss-free runs at every point (paper: 0.95).
    pub target_miss_free: f64,
    /// Escalation rounds before giving up.
    pub max_rounds: usize,
    /// Upper limit on any individual factor (divergence guard).
    pub b_cap: f64,
}

impl CalibrationConfig {
    /// A scaled-down methodology for tests and examples: small grid,
    /// few seeds, short streams.
    pub fn quick(grid: Vec<RtParams>) -> Self {
        CalibrationConfig {
            grid,
            seeds_per_point: 8,
            stream_length: 3_000,
            target_miss_free: 0.95,
            max_rounds: 12,
            b_cap: 64.0,
        }
    }
}

/// One escalation round's record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationRound {
    /// Factors tried this round.
    pub b: Vec<f64>,
    /// Worst miss-free fraction over the grid.
    pub worst_miss_free: f64,
    /// The operating point attaining it, as `(τ0, D)`.
    pub worst_point: Option<(f64, f64)>,
    /// Componentwise max empirical backlog (vectors) over all points
    /// and seeds.
    pub observed_backlog: Vec<f64>,
    /// Mean solver iterations per feasible grid point this round. After
    /// the first round every solve is warm-started from the same grid
    /// point's previous schedule, so this drops once calibration starts
    /// iterating.
    pub mean_solver_iterations: f64,
    /// Mean of the per-point iterations-saved telemetry (previous
    /// round's iterations minus this round's), `None` on the first
    /// round where there is nothing to compare against.
    pub mean_iterations_saved: Option<f64>,
}

/// Final calibration outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationResult {
    /// The calibrated factors.
    pub b: Vec<f64>,
    /// Per-round history.
    pub rounds: Vec<CalibrationRound>,
    /// True if the target was met within the round budget.
    pub converged: bool,
}

/// Run the §6.2 calibration loop for the enforced-waits strategy.
///
/// # Panics
/// Panics if the grid is empty or no grid point is feasible at the
/// optimistic starting factors.
pub fn calibrate_enforced(
    pipeline: &PipelineSpec,
    config: &CalibrationConfig,
) -> CalibrationResult {
    assert!(!config.grid.is_empty(), "calibration grid is empty");
    let n = pipeline.len();
    let mut b = EnforcedWaitsProblem::optimistic_backlog(pipeline);
    let mut rounds = Vec::new();
    // Per-grid-point warm-start chain: each round seeds its solves from
    // the same point's schedule in the previous round (factors change
    // little between rounds, so the previous optimum is a good hint).
    let mut prev: Vec<Option<(WarmStart, u64)>> = vec![None; config.grid.len()];
    // Set once an escalation clamps a factor to `b_cap`: one more
    // evaluation round runs at the capped factors, then the loop stops.
    let mut capped = false;
    let mut round = 0;

    loop {
        let mut worst_miss_free = 1.0_f64;
        let mut worst_point = None;
        let mut observed = vec![0.0_f64; n];
        let mut any_feasible = false;
        let mut iter_sum = 0u64;
        let mut iter_points = 0u64;
        let mut saved_sum = 0i64;
        let mut saved_points = 0u64;

        for (gi, params) in config.grid.iter().enumerate() {
            let prob = EnforcedWaitsProblem::new(pipeline, *params, b.clone());
            let solved = match prev[gi].as_ref() {
                // A poor hint must not cost a grid point: retry cold on
                // any warm failure (genuinely infeasible points fail
                // both ways).
                Some((hint, _)) => prob
                    .solve_warm(SolveMethod::WaterFilling, hint)
                    .or_else(|_| prob.solve(SolveMethod::WaterFilling)),
                None => prob.solve(SolveMethod::WaterFilling),
            };
            let mut sched = match solved {
                Ok(s) => s,
                Err(_) => {
                    prev[gi] = None;
                    continue; // infeasible at these factors: skip
                }
            };
            if let Some(t) = sched.telemetry.as_mut() {
                iter_sum += t.iterations;
                iter_points += 1;
                if let Some((_, prev_iters)) = prev[gi].as_ref() {
                    let saved = *prev_iters as i64 - t.iterations as i64;
                    t.iterations_saved = Some(saved);
                    saved_sum += saved;
                    saved_points += 1;
                }
            }
            prev[gi] = Some((
                WarmStart::from_schedule(&sched),
                sched.telemetry.as_ref().map_or(0, |t| t.iterations),
            ));
            let sched = sched;
            any_feasible = true;
            let cfg = SimConfig::quick(params.tau0, 0, config.stream_length);
            let report = run_seeds_enforced(
                pipeline,
                &sched,
                params.deadline,
                &cfg,
                config.seeds_per_point,
            );
            let mf = report.miss_free_fraction();
            if mf < worst_miss_free {
                worst_miss_free = mf;
                worst_point = Some((params.tau0, params.deadline));
            }
            for (o, &x) in observed.iter_mut().zip(&report.max_backlog_vectors()) {
                *o = o.max(x);
            }
        }
        assert!(
            any_feasible,
            "no feasible grid point at backlog factors {b:?}"
        );

        rounds.push(CalibrationRound {
            b: b.clone(),
            worst_miss_free,
            worst_point,
            observed_backlog: observed.clone(),
            mean_solver_iterations: if iter_points > 0 {
                iter_sum as f64 / iter_points as f64
            } else {
                0.0
            },
            mean_iterations_saved: (saved_points > 0)
                .then(|| saved_sum as f64 / saved_points as f64),
        });

        if worst_miss_free >= config.target_miss_free {
            return CalibrationResult {
                b,
                rounds,
                converged: true,
            };
        }

        // Stop only *after* evaluating the current factors, so the
        // returned `b` is always the last simulated vector (a capped or
        // budget-exhausted escalation result was previously returned
        // without ever being solved or simulated).
        round += 1;
        if round >= config.max_rounds || capped {
            break;
        }

        // Escalate: raise each factor to the observed high-water mark;
        // if observation never exceeded the assumption, bump the node
        // with the tightest margin by one.
        let mut changed = false;
        for i in 0..n {
            let candidate = observed[i].ceil();
            if candidate > b[i] {
                b[i] = candidate.min(config.b_cap);
                changed = true;
            }
        }
        if !changed {
            let (worst_i, _) = b
                .iter()
                .enumerate()
                .map(|(i, &bi)| (i, observed[i] / bi))
                .fold(
                    (0, f64::NEG_INFINITY),
                    |acc, x| if x.1 > acc.1 { x } else { acc },
                );
            b[worst_i] = (b[worst_i] + 1.0).min(config.b_cap);
        }
        capped = b.iter().any(|&bi| bi >= config.b_cap);
    }

    CalibrationResult {
        converged: false,
        b,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{GainModel, PipelineSpecBuilder};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    #[test]
    fn calibration_converges_on_blast_subgrid() {
        let p = blast();
        let grid = vec![
            RtParams::new(10.0, 1e5).unwrap(),
            RtParams::new(30.0, 1.5e5).unwrap(),
        ];
        let result = calibrate_enforced(&p, &CalibrationConfig::quick(grid));
        assert!(result.converged, "history: {:?}", result.rounds);
        assert_eq!(result.b.len(), 4);
        // Factors should start optimistic and only grow.
        let optimistic = EnforcedWaitsProblem::optimistic_backlog(&p);
        for (bi, oi) in result.b.iter().zip(&optimistic) {
            assert!(bi >= oi);
        }
        // First round used the optimistic factors.
        assert_eq!(result.rounds[0].b, optimistic);
    }

    #[test]
    fn warm_chaining_cuts_solver_effort_between_rounds() {
        let p = blast();
        // Tight deadlines miss at the optimistic factors, forcing at
        // least one escalation round (so warm chaining kicks in).
        let grid = vec![
            RtParams::new(10.0, 4e4).unwrap(),
            RtParams::new(30.0, 6e4).unwrap(),
        ];
        let result = calibrate_enforced(&p, &CalibrationConfig::quick(grid));
        assert!(
            result.rounds.len() >= 2,
            "expected an escalation: {:?}",
            result.rounds
        );
        let first = &result.rounds[0];
        assert!(first.mean_solver_iterations > 0.0);
        assert!(first.mean_iterations_saved.is_none());
        for later in &result.rounds[1..] {
            assert!(
                later.mean_solver_iterations < first.mean_solver_iterations,
                "warm round {} vs cold round {}",
                later.mean_solver_iterations,
                first.mean_solver_iterations
            );
            let saved = later.mean_iterations_saved.expect("warm rounds record it");
            assert!(saved > 0.0, "iterations saved {saved}");
        }
    }

    #[test]
    fn calibrated_factors_hold_on_fresh_seeds() {
        let p = blast();
        let grid = vec![RtParams::new(10.0, 1e5).unwrap()];
        let result = calibrate_enforced(&p, &CalibrationConfig::quick(grid.clone()));
        assert!(result.converged);
        // Validate on seeds the calibration never saw.
        let prob = EnforcedWaitsProblem::new(&p, grid[0], result.b.clone());
        let sched = prob.solve(SolveMethod::WaterFilling).unwrap();
        let mut cfg = SimConfig::quick(10.0, 0, 3_000);
        cfg.seed = 10_000;
        let report = run_seeds_enforced(&p, &sched, 1e5, &cfg, 6);
        assert!(
            report.miss_free_fraction() >= 0.5,
            "fresh-seed miss-free fraction {}",
            report.miss_free_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "grid is empty")]
    fn empty_grid_panics() {
        let p = blast();
        calibrate_enforced(&p, &CalibrationConfig::quick(vec![]));
    }

    #[test]
    fn returned_factors_were_always_evaluated() {
        // Regression: on hitting `b_cap` (or the round budget) the loop
        // used to escalate and then return factors that were never
        // solved or simulated, so `result.b` disagreed with the last
        // recorded round. Force the cap with a hopeless deadline and a
        // tiny cap, and require the invariant.
        let p = blast();
        // An unreachable target forces escalation every round; a tiny
        // cap makes it clamp almost immediately.
        let mut config = CalibrationConfig::quick(vec![RtParams::new(10.0, 1e5).unwrap()]);
        config.target_miss_free = 2.0;
        config.b_cap = 3.0;
        config.seeds_per_point = 2;
        config.stream_length = 500;
        let result = calibrate_enforced(&p, &config);
        assert!(!result.converged);
        assert!(
            result.b.iter().any(|&bi| bi >= config.b_cap),
            "cap was never hit: {:?}",
            result.b
        );
        let last = result.rounds.last().expect("at least one round");
        assert_eq!(
            result.b, last.b,
            "returned factors must be the last evaluated vector"
        );
        // The capped vector itself was evaluated: its round is recorded
        // with real simulation output.
        assert!(result.rounds.iter().all(|r| !r.observed_backlog.is_empty()));
    }

    #[test]
    fn round_budget_exhaustion_returns_last_evaluated_b() {
        // Same invariant on the max_rounds path: with a single round
        // allowed, the result must be the (evaluated) starting factors,
        // not an escalated vector that never ran.
        let p = blast();
        let mut config = CalibrationConfig::quick(vec![RtParams::new(10.0, 4e4).unwrap()]);
        config.max_rounds = 1;
        config.seeds_per_point = 2;
        config.stream_length = 500;
        let result = calibrate_enforced(&p, &config);
        assert_eq!(result.rounds.len(), 1);
        assert_eq!(result.b, result.rounds[0].b);
        if !result.converged {
            assert_eq!(result.b, EnforcedWaitsProblem::optimistic_backlog(&p));
        }
    }
}
