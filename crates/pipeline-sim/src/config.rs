//! Simulation run configuration.

use dataflow_model::ArrivalProcess;
use serde::{Deserialize, Serialize};

/// How a node behaves when its firing point arrives and its input queue
/// is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FiringDiscipline {
    /// The paper's analysis model: fire anyway (an empty firing),
    /// strictly every `t_i + w_i` cycles.
    StrictPeriodic,
    /// The paper's practical variant ("in practice they could be
    /// treated as a vacation for the node", §4): a node facing an empty
    /// queue goes dormant instead of firing, and wakes to fire the
    /// moment input next arrives — its mandatory period has already
    /// elapsed, so an immediate fire never violates the enforced-wait
    /// contract (the gap between consecutive fires stays ≥ t_i + w_i).
    Vacation,
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of stream inputs to process (the paper uses 50 000).
    pub stream_length: usize,
    /// Master RNG seed; every simulated entity derives a substream.
    pub seed: u64,
    /// How items arrive. The paper's model is periodic.
    pub arrivals: ArrivalProcess,
    /// Charge firings that consumed zero items as active time (the
    /// paper's analysis convention; the alternative "vacation" metric is
    /// always reported alongside).
    pub charge_empty_firings: bool,
    /// Safety multiplier: the run aborts (counting unfinished inputs as
    /// deadline misses) if simulated time exceeds
    /// `last_arrival + drain_factor × deadline`. Guards against
    /// accidentally simulating an unstable schedule forever.
    pub drain_factor: f64,
    /// Empty-queue firing behaviour (see [`FiringDiscipline`]).
    pub discipline: FiringDiscipline,
}

impl SimConfig {
    /// The paper's §6.2 methodology for one seed: 50 000 periodic
    /// arrivals.
    pub fn paper(tau0: f64, seed: u64) -> Self {
        SimConfig {
            stream_length: 50_000,
            seed,
            arrivals: ArrivalProcess::Periodic { tau0 },
            charge_empty_firings: true,
            drain_factor: 50.0,
            discipline: FiringDiscipline::StrictPeriodic,
        }
    }

    /// A shortened variant for fast tests and examples.
    pub fn quick(tau0: f64, seed: u64, stream_length: usize) -> Self {
        SimConfig {
            stream_length,
            seed,
            arrivals: ArrivalProcess::Periodic { tau0 },
            charge_empty_firings: true,
            drain_factor: 50.0,
            discipline: FiringDiscipline::StrictPeriodic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SimConfig::paper(10.0, 7);
        assert_eq!(c.stream_length, 50_000);
        assert_eq!(c.seed, 7);
        assert!(c.charge_empty_firings);
        match c.arrivals {
            ArrivalProcess::Periodic { tau0 } => assert_eq!(tau0, 10.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quick_overrides_length() {
        let c = SimConfig::quick(5.0, 1, 100);
        assert_eq!(c.stream_length, 100);
        assert_eq!(c.discipline, FiringDiscipline::StrictPeriodic);
    }
}
