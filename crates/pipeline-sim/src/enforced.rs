//! Discrete-event execution of an enforced-waits schedule.
//!
//! Every node `n_i` fires strictly periodically: at each fire it
//! consumes up to `v` items from its input queue, occupies the processor
//! (under its share) for `t_i`, delivers its outputs to the next queue
//! at firing completion, and fires again exactly `t_i + w_i` after the
//! previous fire began — the paper's "fires, then waits exactly `w_i`"
//! semantics. Firings with empty input queues still happen and are
//! charged as active time under the paper's analysis convention (the
//! alternative "vacation" accounting is reported alongside).
//!
//! Determinism: events at the same timestamp are processed in class
//! order — arrivals and deliveries first, then fires — so an item that
//! arrives exactly when a node fires is visible to that firing.
//!
//! The core routes firings along a [`Topology`]'s out-edges: each firing
//! draws one gain batch per out-edge (from that edge's dedicated RNG
//! substream), Bernoulli-thins it by the edge's routing weight when the
//! weight is below 1, and delivers one batch per edge at firing
//! completion; fan-in nodes simply receive deliveries from several
//! producers into the same queue. A linear chain is the one-out-edge
//! special case, and the chain entry points below wrap their
//! [`PipelineSpec`] in [`Topology::chain`] — edge `i`'s substream label
//! equals the per-stage label the chain implementation used, so the
//! chain path is bit-identical to the frozen scalar reference.

use crate::config::{FiringDiscipline, SimConfig};
use crate::faults::{FaultState, MitigationPolicy, FAULT_ARRIVAL_STREAM};
use crate::item::LineageTracker;
use crate::live::SimLive;
use crate::metrics::SimMetrics;
use crate::soa::SoaQueue;
use dataflow_model::{GainModel, Perturbation, PipelineSpec, RtParams, Topology};
use des::calendar::Calendar;
use des::clock::SimTime;
use des::obs::{ObsConfig, ObsSink};
use des::rng::RngStream;
use des::stats::OnlineStats;
use obs_trace::{
    analyze, ForensicsConfig, ItemFate, ItemVisit, SpanSink, TraceConfig, TraceLog, Track,
};
use rtsdf_core::WaitSchedule;
use simd_device::{ActiveTimeLedger, OccupancyStats};
use std::collections::VecDeque;

/// Calendar event classes, in intra-timestamp processing order.
///
/// Stream arrivals are *not* calendar events: they are precomputed and
/// merged into the event loop from a sorted cursor (class 0, before any
/// calendar event at the same instant — the order the old
/// all-in-calendar implementation produced), which keeps thousands of
/// one-shot arrival entries out of the binary heap entirely.
#[derive(Debug, Clone)]
enum Ev {
    /// Outputs of an upstream firing land in a node's input queue. The
    /// payload is the flat origin lane of the delivered batch (SoA: no
    /// per-item struct), recycled through the buffer pool.
    Deliver { node: usize, origins: Vec<u64> },
    /// A node's periodic firing.
    Fire { node: usize },
}

impl Ev {
    fn class(&self) -> u8 {
        match self {
            Ev::Deliver { .. } => 0,
            Ev::Fire { .. } => 1,
        }
    }
}

/// Stable in-place insertion sort of a same-timestamp batch by event
/// class. Batches are tiny (a handful of events per instant), and the
/// standard stable sort allocates a merge buffer for slices longer than
/// its insertion threshold — this keeps the hot loop allocation-free
/// while preserving the FIFO order within each class that determinism
/// depends on.
fn sort_batch_by_class(batch: &mut [Ev]) {
    for i in 1..batch.len() {
        let mut j = i;
        while j > 0 && batch[j - 1].class() > batch[j].class() {
            batch.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// Simulate one run of `schedule` on `pipeline` with deadline `deadline`.
///
/// # Panics
/// Panics if the schedule's length does not match the pipeline.
pub fn simulate_enforced(
    pipeline: &PipelineSpec,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
) -> SimMetrics {
    simulate_enforced_with(pipeline, schedule, deadline, config, None)
}

/// [`simulate_enforced`] under fault injection with graceful
/// degradation.
///
/// The perturbation's arrival faults (jitter, bursts), service faults
/// (inflation, spikes, stalls), and gain drift are applied from
/// dedicated RNG substreams, so a zero-intensity perturbation is
/// bit-identical to [`simulate_enforced`] at the same seed. `policy`
/// selects the mitigations:
///
/// * **load shedding** — an arrival observed during overload (some
///   queue above its design backlog factor) whose predicted latency
///   exceeds the deadline is rejected at admission and counted in
///   [`SimMetrics::items_shed`];
/// * **escalation** — when the backlog high-water mark exceeds the
///   design factors, the waits are re-solved at the observed ceilings
///   (warm-started from the running schedule) and the node periods are
///   updated mid-run; [`SimMetrics::resolves`] counts the re-solves.
///
/// # Panics
/// Panics if the schedule's length does not match the pipeline or the
/// perturbation fails [`Perturbation::validate`].
pub fn simulate_enforced_perturbed(
    pipeline: &PipelineSpec,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    perturb: &Perturbation,
    policy: &MitigationPolicy,
) -> SimMetrics {
    simulate_enforced_topology_perturbed(
        &Topology::chain(pipeline),
        schedule,
        deadline,
        config,
        perturb,
        policy,
    )
}

/// [`simulate_enforced`] publishing live progress into a metrics
/// registry (see [`crate::live::SimLiveMetrics`]): items
/// arrived/completed/dropped, per-stage queue-depth high-water marks,
/// and wall-clock throughput.
pub fn simulate_enforced_live(
    pipeline: &PipelineSpec,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    live: &SimLive<'_>,
) -> SimMetrics {
    simulate_enforced_topology_live(&Topology::chain(pipeline), schedule, deadline, config, live)
}

/// [`simulate_enforced_perturbed`] publishing live progress (including
/// shed counts) into a metrics registry.
///
/// # Panics
/// Panics if the schedule's length does not match the pipeline or the
/// perturbation fails [`Perturbation::validate`].
pub fn simulate_enforced_perturbed_live(
    pipeline: &PipelineSpec,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    perturb: &Perturbation,
    policy: &MitigationPolicy,
    live: &SimLive<'_>,
) -> SimMetrics {
    simulate_enforced_topology_perturbed_live(
        &Topology::chain(pipeline),
        schedule,
        deadline,
        config,
        perturb,
        policy,
        live,
    )
}

/// [`simulate_enforced`] with the observability layer enabled: collects
/// per-stage queue-depth / occupancy / sojourn distributions, event
/// counters, and (if `obs_config.trace_capacity > 0`) a recent-event
/// trace, returned in [`SimMetrics::obs`].
pub fn simulate_enforced_observed(
    pipeline: &PipelineSpec,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    obs_config: ObsConfig,
) -> SimMetrics {
    simulate_enforced_topology_observed(
        &Topology::chain(pipeline),
        schedule,
        deadline,
        config,
        obs_config,
    )
}

/// [`simulate_enforced`] with causal span tracing enabled: collects
/// per-firing spans, per-item stage visits (the exact enforced-wait /
/// queue-wait / service sojourn decomposition), and per-input fates,
/// then runs deadline-miss forensics over the finished trace. Returns
/// the metrics (with [`SimMetrics::blame`] attached) and the raw
/// [`TraceLog`] for export.
pub fn simulate_enforced_traced(
    pipeline: &PipelineSpec,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    trace: TraceConfig,
    forensics: &ForensicsConfig,
) -> (SimMetrics, TraceLog) {
    simulate_enforced_topology_traced(
        &Topology::chain(pipeline),
        schedule,
        deadline,
        config,
        trace,
        forensics,
    )
}

/// Core simulator. `obs` is branch-on-`Option`: when `None`, every hook
/// is a single untaken branch, so the uninstrumented path stays at the
/// cost of the plain simulator.
pub fn simulate_enforced_with(
    pipeline: &PipelineSpec,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    obs: Option<&mut ObsSink>,
) -> SimMetrics {
    simulate_enforced_topology_with(&Topology::chain(pipeline), schedule, deadline, config, obs)
}

/// Simulate one run of `schedule` on an arbitrary DAG `topology` with
/// deadline `deadline`.
///
/// Firings are routed along the topology's out-edges: each out-edge
/// draws its own stochastic gain per consumed item (from a dedicated
/// RNG substream), thins the outputs by the edge's routing weight, and
/// delivers the surviving batch to its destination node at firing
/// completion. Fan-in nodes merge deliveries from all producers into a
/// single FIFO input queue. An item is complete when every output it
/// spawned — across all edges — has been resolved.
///
/// For a chain topology this is bit-identical to [`simulate_enforced`]
/// on the underlying [`PipelineSpec`].
///
/// # Panics
/// Panics if the schedule's length does not match the topology.
pub fn simulate_enforced_topology(
    topology: &Topology,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
) -> SimMetrics {
    simulate_enforced_topology_with(topology, schedule, deadline, config, None)
}

/// [`simulate_enforced_topology`] with an optional observability sink
/// (the topology-general core behind [`simulate_enforced_with`]).
pub fn simulate_enforced_topology_with(
    topology: &Topology,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    obs: Option<&mut ObsSink>,
) -> SimMetrics {
    simulate_enforced_full(topology, schedule, deadline, config, obs, None, None, None)
}

/// [`simulate_enforced_topology`] under fault injection with graceful
/// degradation (see [`simulate_enforced_perturbed`] for the mitigation
/// semantics; escalation re-solves use the DAG solver, which delegates
/// to the chain solver on chain topologies).
///
/// # Panics
/// Panics if the schedule's length does not match the topology or the
/// perturbation fails [`Perturbation::validate`].
pub fn simulate_enforced_topology_perturbed(
    topology: &Topology,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    perturb: &Perturbation,
    policy: &MitigationPolicy,
) -> SimMetrics {
    perturb.validate().expect("invalid perturbation");
    simulate_enforced_full(
        topology,
        schedule,
        deadline,
        config,
        None,
        None,
        Some((perturb, policy)),
        None,
    )
}

/// [`simulate_enforced_topology`] publishing live progress into a
/// metrics registry.
pub fn simulate_enforced_topology_live(
    topology: &Topology,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    live: &SimLive<'_>,
) -> SimMetrics {
    simulate_enforced_full(
        topology,
        schedule,
        deadline,
        config,
        None,
        None,
        None,
        Some(live),
    )
}

/// [`simulate_enforced_topology_perturbed`] publishing live progress
/// (including shed counts) into a metrics registry.
///
/// # Panics
/// Panics if the schedule's length does not match the topology or the
/// perturbation fails [`Perturbation::validate`].
pub fn simulate_enforced_topology_perturbed_live(
    topology: &Topology,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    perturb: &Perturbation,
    policy: &MitigationPolicy,
    live: &SimLive<'_>,
) -> SimMetrics {
    perturb.validate().expect("invalid perturbation");
    simulate_enforced_full(
        topology,
        schedule,
        deadline,
        config,
        None,
        None,
        Some((perturb, policy)),
        Some(live),
    )
}

/// [`simulate_enforced_topology`] with the observability layer enabled
/// (per-node queue-depth / occupancy / sojourn distributions, returned
/// in [`SimMetrics::obs`]).
pub fn simulate_enforced_topology_observed(
    topology: &Topology,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    obs_config: ObsConfig,
) -> SimMetrics {
    let mut sink = ObsSink::new(topology.len(), obs_config);
    let mut metrics =
        simulate_enforced_topology_with(topology, schedule, deadline, config, Some(&mut sink));
    metrics.obs = Some(sink.report());
    metrics
}

/// [`simulate_enforced_topology`] with causal span tracing and
/// deadline-miss forensics enabled (see [`simulate_enforced_traced`]).
/// Spans and blame stay keyed by node: queues and service live at
/// nodes, while the per-edge routing contribution is covered by the
/// analysis layer's per-edge flow accounting.
pub fn simulate_enforced_topology_traced(
    topology: &Topology,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    trace: TraceConfig,
    forensics: &ForensicsConfig,
) -> (SimMetrics, TraceLog) {
    let mut sink = SpanSink::new(trace);
    let mut metrics = simulate_enforced_full(
        topology,
        schedule,
        deadline,
        config,
        None,
        Some(&mut sink),
        None,
        None,
    );
    let log = sink.finish();
    metrics.blame = Some(analyze(&log, deadline, forensics));
    (metrics, log)
}

/// Mutable per-run state of the fault-injection / mitigation layer.
struct StressState {
    faults: FaultState,
    policy: MitigationPolicy,
    /// Real-time parameters for escalation re-solves (`None` disables
    /// escalation, e.g. when the deadline is not a valid `RtParams`).
    params: Option<RtParams>,
    /// Factors the *current* periods were solved for; raised by each
    /// escalation so the trigger re-arms at the new level.
    design_b: Vec<f64>,
    /// Continuous periods of the current schedule (warm-start seed).
    periods_f: Vec<f64>,
    /// Per-origin shed flags (indexed by origin).
    shed: Vec<bool>,
    items_shed: u64,
    resolves: u64,
    /// Set after an infeasible re-solve: keep the current schedule and
    /// stop escalating.
    escalation_dead: bool,
}

/// Full-generality core: aggregate observability (`obs`), causal span
/// tracing (`spans`), fault injection (`stress`), and live metrics
/// (`live`) are independent branch-on-`Option` layers; any `None` costs
/// one untaken branch per hook.
#[allow(clippy::too_many_arguments)]
fn simulate_enforced_full(
    topology: &Topology,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    mut obs: Option<&mut ObsSink>,
    mut spans: Option<&mut SpanSink>,
    stress_spec: Option<(&Perturbation, &MitigationPolicy)>,
    live: Option<&SimLive<'_>>,
) -> SimMetrics {
    let n = topology.len();
    if let Some(sink) = obs.as_deref_mut() {
        assert_eq!(sink.num_stages(), n, "obs sink/topology length mismatch");
    }
    assert_eq!(
        schedule.periods.len(),
        n,
        "schedule/topology length mismatch"
    );
    let v = topology.vector_width();
    let service: Vec<u64> = topology
        .service_times()
        .iter()
        .map(|&t| (t.round() as u64).max(1))
        .collect();
    // Integer firing periods; never below the service time. Mutable
    // because the escalation mitigation may re-solve them mid-run.
    let mut periods: Vec<u64> = schedule
        .periods
        .iter()
        .zip(&service)
        .map(|(&x, &t)| (x.round() as u64).max(t))
        .collect();

    let master = RngStream::new(config.seed);
    let mut arrival_rng = master.substream(0);
    // One gain substream per *edge*, in declaration order. For a chain
    // built by `Topology::chain`, edge `i` is `i → i+1`, so its label
    // `1 + i` is exactly the label the per-stage implementation used —
    // the draw sequence (and therefore every metric) is unchanged.
    let mut gain_rngs: Vec<RngStream> = (0..topology.edges().len())
        .map(|e| master.substream(1 + e as u64))
        .collect();

    // Precompute arrival times, rounded onto the integer clock.
    let mut arrivals_f = config
        .arrivals
        .generate(config.stream_length, &mut arrival_rng);
    // Fault-injection layer: arrival faults are applied to the
    // precomputed times from a dedicated substream (the model's own
    // arrival/gain streams are untouched, so intensity 0 reproduces the
    // unperturbed run bit for bit).
    let mut stress: Option<StressState> = stress_spec.map(|(perturb, policy)| {
        let mut fault_rng = master.substream(FAULT_ARRIVAL_STREAM);
        perturb.perturb_arrivals(
            &mut arrivals_f,
            config.arrivals.mean_interarrival(),
            &mut fault_rng,
        );
        StressState {
            faults: FaultState::new(perturb, &master, n),
            policy: policy.clone(),
            params: RtParams::new(config.arrivals.mean_interarrival(), deadline).ok(),
            design_b: schedule.backlog_factors.clone(),
            periods_f: schedule.periods.clone(),
            shed: vec![false; config.stream_length],
            items_shed: 0,
            resolves: 0,
            escalation_dead: false,
        }
    });
    let arrivals: Vec<SimTime> = {
        let mut last = 0u64;
        arrivals_f
            .iter()
            .map(|&t| {
                let c = (t.round() as u64).max(last);
                last = c;
                SimTime::from_cycles(c)
            })
            .collect()
    };
    let last_arrival = arrivals.last().copied().unwrap_or(SimTime::ZERO);
    let safety_horizon =
        last_arrival.saturating_add(SimTime::from_f64_rounded(config.drain_factor * deadline));

    // Arrivals stay in their sorted vector and are merged into the
    // event loop from a cursor; only firings and deliveries go through
    // the calendar. This keeps the heap a handful of entries deep
    // (instead of `stream_length` pre-scheduled arrivals), which was
    // the dominant cost of the scalar event loop.
    let mut next_arrival = 0usize;
    let mut cal: Calendar<Ev> = Calendar::with_capacity(n * 2 + 64);
    for node in 0..n {
        cal.schedule(SimTime::ZERO, Ev::Fire { node });
    }

    // Gain models hoisted out of the firing loop: one bounds-checked
    // edge lookup up front instead of one per consumed item. Under
    // fault injection the models are replaced by their drifted
    // counterparts (identical parameters — and draws — at intensity 0).
    let drifted_gains: Option<Vec<GainModel>> = stress_spec.map(|(perturb, _)| {
        topology
            .edges()
            .iter()
            .map(|e| perturb.drift_gain(&e.gain))
            .collect()
    });
    let gain_of: Vec<&GainModel> = match &drifted_gains {
        Some(gains) => gains.iter().collect(),
        None => topology.edges().iter().map(|e| &e.gain).collect(),
    };

    // Per-stage input queues in structure-of-arrays form: one flat
    // origin lane per stage (deadlines attach to the ancestral stream
    // input, so origin is the only per-item attribute the hot loop
    // needs — an item's arrival time is `arrivals[origin]`). A firing
    // consumes its `take` oldest items as one contiguous slice.
    let mut queues: Vec<SoaQueue<u64>> = (0..n)
        .map(|_| SoaQueue::with_capacity(v as usize * 2))
        .collect();
    // Free-list of `Deliver` payload buffers: every delivered batch hands
    // its (emptied) Vec back here, and every firing that emits outputs
    // pops one instead of allocating. After warm-up the steady-state hot
    // loop allocates nothing per item.
    let mut vec_pool: Vec<Vec<u64>> = Vec::new();
    // Reusable per-firing gain-draw lane (one entry per consumed item).
    let mut gains_buf: Vec<u32> = Vec::with_capacity(v as usize);
    // Per-item output total across all out-edges of a firing, for the
    // lineage ledger (an item is resolved only when *all* its outputs
    // on every edge are resolved).
    let mut ktot_buf: Vec<u32> = Vec::with_capacity(v as usize);
    // Deliveries staged per out-edge during a firing; drained into the
    // calendar after the lineage pass releases the queue borrow.
    let mut pending_deliver: Vec<(usize, Vec<u64>)> = Vec::new();
    // Parallel per-stage enqueue-timestamp lanes for sojourn
    // measurement, plus a reusable batch buffer for the samples;
    // allocated only when the observability layer is on.
    let mut enq_times: Vec<SoaQueue<SimTime>> = if obs.is_some() {
        (0..n).map(|_| SoaQueue::new()).collect()
    } else {
        Vec::new()
    };
    let mut soj_buf: Vec<f64> = Vec::new();
    // Span-tracing state, allocated only when tracing: per-stage queues
    // of (origin, enqueued, eligible) mirroring `queues`, plus each
    // node's next scheduled firing instant. `eligible` — the first
    // firing opportunity at or after enqueue — is exact because at most
    // one Fire event per node is ever pending: strictly periodic
    // refires are scheduled one at a time, and a dormant node's wake
    // fires at the wake instant itself (its stale `next_fire` is in the
    // past, so `max(now, next_fire)` correctly yields `now`).
    let mut span_queue: Vec<VecDeque<(u64, SimTime, SimTime)>> = if spans.is_some() {
        (0..n).map(|_| VecDeque::new()).collect()
    } else {
        Vec::new()
    };
    let mut next_fire: Vec<SimTime> = if spans.is_some() {
        vec![SimTime::ZERO; n]
    } else {
        Vec::new()
    };
    let mut max_depth = vec![0u64; n];
    // Vacation discipline: a dormant node skipped its firing on an
    // empty queue and is waiting for input to wake it.
    let mut dormant = vec![false; n];
    let mut lineage = LineageTracker::new(config.stream_length);
    let mut ledger = ActiveTimeLedger::new(n);
    let mut occupancy: Vec<OccupancyStats> = (0..n).map(|_| OccupancyStats::new()).collect();
    let mut last_completion = SimTime::ZERO;
    let mut truncated = false;

    // Batch of same-timestamp calendar events, processed deliveries →
    // fires for deterministic intra-instant semantics. Arrivals at the
    // same instant are drained from the cursor first (they were class 0
    // when they lived in the calendar), so an item that arrives exactly
    // when a node fires is visible to that firing.
    let mut batch: Vec<Ev> = Vec::new();
    'outer: loop {
        let cal_next = cal.peek_time();
        let arr_next = arrivals.get(next_arrival).copied();
        let now = match (arr_next, cal_next) {
            (Some(a), Some(c)) => a.min(c),
            (Some(a), None) => a,
            (None, Some(c)) => c,
            (None, None) => break,
        };
        if now > safety_horizon {
            truncated = true;
            break 'outer;
        }
        // Calendar events already scheduled at this instant. Collected
        // *before* the arrival drain, so a dormant-node wake scheduled
        // by one of these arrivals runs in the next iteration of this
        // loop (still at `now`) — exactly the order the all-in-calendar
        // implementation produced.
        batch.clear();
        while cal.peek_time() == Some(now) {
            batch.push(cal.pop().expect("peeked").payload);
        }
        sort_batch_by_class(&mut batch);

        // Class 0: stream arrivals at `now`, in origin (FIFO) order.
        while next_arrival < arrivals.len() && arrivals[next_arrival] == now {
            let origin = next_arrival as u64;
            next_arrival += 1;
            if let Some(sink) = obs.as_deref_mut() {
                sink.on_event();
            }
            if let Some(l) = live {
                if l.on_arrival() {
                    l.tick(&max_depth);
                }
            }
            {
                if let Some(st) = stress.as_mut() {
                    // Escalation: when the backlog high-water mark
                    // exceeds the factors the running periods were
                    // solved for, re-solve the waits at the observed
                    // ceilings (warm-started from the current
                    // schedule) and adopt the new periods.
                    if st.policy.escalate
                        && !st.escalation_dead
                        && st.resolves < u64::from(st.policy.max_resolves)
                    {
                        let headroom = st.policy.escalate_headroom;
                        let overload = max_depth
                            .iter()
                            .zip(&st.design_b)
                            .any(|(&d, &b)| (d as f64 / v as f64).ceil() > b + headroom);
                        if overload {
                            if let Some(params) = st.params {
                                let observed: Vec<f64> = max_depth
                                    .iter()
                                    .map(|&d| (d as f64 / v as f64).ceil())
                                    .collect();
                                match rtsdf_core::dag::escalate_schedule_topology(
                                    topology,
                                    params,
                                    &st.periods_f,
                                    &st.design_b,
                                    &observed,
                                ) {
                                    Ok(new_sched) => {
                                        st.resolves += 1;
                                        for (p, (&x, &t)) in periods
                                            .iter_mut()
                                            .zip(new_sched.periods.iter().zip(&service))
                                        {
                                            *p = (x.round() as u64).max(t);
                                        }
                                        st.periods_f = new_sched.periods;
                                        st.design_b = new_sched.backlog_factors;
                                    }
                                    // No feasible schedule at the
                                    // observed backlog: keep the
                                    // current one and stop trying.
                                    Err(_) => st.escalation_dead = true,
                                }
                            } else {
                                st.escalation_dead = true;
                            }
                        }
                    }
                    // Deadline-aware load shedding: admit only if the
                    // latency predicted from current queue depths
                    // (floored at the design factors) fits the
                    // deadline. The item still resolves in the
                    // lineage tracker — as shed, not completed.
                    if st.policy.shed {
                        let mut overload = false;
                        let mut predicted = 0.0;
                        for i in 0..n {
                            let q = queues[i].len() as u64 + u64::from(i == 0);
                            let obs = (q as f64 / v as f64).ceil();
                            if obs > st.design_b[i] {
                                overload = true;
                            }
                            predicted += periods[i] as f64 * obs.max(st.design_b[i]);
                        }
                        if overload && predicted > deadline {
                            st.items_shed += 1;
                            st.shed[origin as usize] = true;
                            if let Some(l) = live {
                                l.on_shed();
                            }
                            lineage.arrive(origin);
                            lineage.consume(origin, 0, now);
                            continue;
                        }
                    }
                }
                lineage.arrive(origin);
                queues[0].push_back(origin);
                max_depth[0] = max_depth[0].max(queues[0].len() as u64);
                if let Some(sink) = obs.as_deref_mut() {
                    sink.on_enqueue(0, 1, queues[0].len());
                    enq_times[0].push_back(now);
                }
                if spans.is_some() {
                    span_queue[0].push_back((origin, now, now.max(next_fire[0])));
                }
                if dormant[0] {
                    // Wake: the mandatory period already elapsed when
                    // the node went dormant, so firing now is legal.
                    dormant[0] = false;
                    cal.schedule(now, Ev::Fire { node: 0 });
                }
            }
        }

        // Classes 1–2: this instant's deliveries, then fires.
        for ev in batch.drain(..) {
            if let Some(sink) = obs.as_deref_mut() {
                sink.on_event();
            }
            match ev {
                Ev::Deliver { node, mut origins } => {
                    let delivered = origins.len() as u64;
                    if spans.is_some() {
                        let eligible = now.max(next_fire[node]);
                        for &origin in &origins {
                            span_queue[node].push_back((origin, now, eligible));
                        }
                    }
                    queues[node].extend_from_slice(&origins);
                    // Recycle the emptied payload buffer for a later
                    // firing's outputs.
                    origins.clear();
                    vec_pool.push(origins);
                    max_depth[node] = max_depth[node].max(queues[node].len() as u64);
                    if let Some(sink) = obs.as_deref_mut() {
                        sink.on_enqueue(node, delivered, queues[node].len());
                        enq_times[node].push_n(now, delivered as usize);
                    }
                    if dormant[node] {
                        dormant[node] = false;
                        cal.schedule(now, Ev::Fire { node });
                    }
                }
                Ev::Fire { node } => {
                    if config.discipline == FiringDiscipline::Vacation && queues[node].is_empty() {
                        // Vacation: skip the empty firing entirely; the
                        // next arrival/delivery wakes the node.
                        dormant[node] = true;
                        continue;
                    }
                    let take = (v as usize).min(queues[node].len());
                    // Effective service time of this firing: nominal, or
                    // faulted (inflation / tail spike / stall) under
                    // stress — exactly nominal at intensity 0.
                    let svc = match stress.as_mut() {
                        Some(st) => st.faults.service_cycles(node, service[node]),
                        None => service[node],
                    };
                    occupancy[node].record(take as u32, v);
                    ledger.record_firing(node, svc as f64, take as u32);
                    if let Some(sink) = obs.as_deref_mut() {
                        sink.on_fire(node, take, v as usize);
                        // Sojourns of the whole consumed batch in one
                        // pass over the enqueue-time lane.
                        let waited = enq_times[node].take_front(take);
                        soj_buf.clear();
                        soj_buf.extend(waited.iter().map(|&enq| now.since(enq).as_f64()));
                        sink.on_sojourn_batch(node, &soj_buf);
                        if sink.tracing() {
                            sink.trace(now, node as u32, format!("fire n{node} take={take}"));
                        }
                    }
                    let completion = now + SimTime::from_cycles(svc);
                    if let Some(sink) = spans.as_deref_mut() {
                        sink.span_detail(
                            Track::stage(node),
                            "fire",
                            "firing",
                            format!("take={take}"),
                            now.as_f64(),
                            completion.as_f64(),
                        );
                        for (origin, enq, eligible) in span_queue[node].drain(..take) {
                            sink.visit(ItemVisit {
                                origin,
                                stage: node as u32,
                                enqueued: enq.as_f64(),
                                eligible: eligible.as_f64(),
                                consumed: now.as_f64(),
                                done: completion.as_f64(),
                            });
                        }
                    }
                    if take > 0 {
                        let consumed = queues[node].take_front(take);
                        ktot_buf.clear();
                        ktot_buf.resize(take, 0);
                        // Route along out-edges: per edge, draw the
                        // whole firing's gains in one hoisted-dispatch
                        // pass from the edge's own substream (the draw
                        // sequence is identical to one `sample` per
                        // item — the scalar reference pins this), thin
                        // by the routing weight when it is below 1, and
                        // stage one delivery batch. A sink node has no
                        // out-edges, so its outputs exit immediately
                        // (no draw, k = 0) — exactly the old last-stage
                        // special case.
                        for &e in topology.out_edges(node) {
                            gains_buf.clear();
                            gains_buf.resize(take, 0);
                            gain_of[e].sample_batch(&mut gain_rngs[e], &mut gains_buf);
                            let edge = topology.edge(e);
                            let mut outs: Vec<u64> = vec_pool.pop().unwrap_or_default();
                            if edge.weight < 1.0 {
                                // Bernoulli thinning per output, from
                                // the same edge substream. Never taken
                                // on chain topologies (weight == 1), so
                                // the chain draw sequence is unchanged.
                                for (i, &origin) in consumed.iter().enumerate() {
                                    let mut kept = 0u32;
                                    for _ in 0..gains_buf[i] {
                                        if gain_rngs[e].next_f64() < edge.weight {
                                            kept += 1;
                                        }
                                    }
                                    ktot_buf[i] += kept;
                                    for _ in 0..kept {
                                        outs.push(origin);
                                    }
                                }
                            } else {
                                for (i, &origin) in consumed.iter().enumerate() {
                                    let k = gains_buf[i];
                                    ktot_buf[i] += k;
                                    for _ in 0..k {
                                        outs.push(origin);
                                    }
                                }
                            }
                            if !outs.is_empty() {
                                pending_deliver.push((edge.dst, outs));
                            } else {
                                vec_pool.push(outs);
                            }
                        }
                        for (i, &origin) in consumed.iter().enumerate() {
                            if lineage.consume(origin, ktot_buf[i], completion) {
                                last_completion = last_completion.max(completion);
                                if let Some(sink) = obs.as_deref_mut() {
                                    sink.on_completion();
                                }
                                if let Some(l) = live {
                                    l.on_completion();
                                }
                            }
                        }
                        for (dst, outs) in pending_deliver.drain(..) {
                            cal.schedule(
                                completion,
                                Ev::Deliver {
                                    node: dst,
                                    origins: outs,
                                },
                            );
                        }
                    }
                    // Periodic refire, but only while there is still work
                    // in flight (once every input is resolved the run is
                    // over and further firings would only extend the
                    // horizon without processing anything).
                    if !lineage.all_complete() {
                        // A faulted firing can outlast the period; the
                        // node cannot re-fire before it completes. At
                        // intensity 0 (and without stress) the period
                        // already dominates the service time, so the
                        // clamp is exact identity.
                        let refire = (now + SimTime::from_cycles(periods[node])).max(completion);
                        if spans.is_some() {
                            next_fire[node] = refire;
                        }
                        cal.schedule(refire, Ev::Fire { node });
                    }
                }
            }
        }
        if lineage.all_complete() {
            break;
        }
    }

    // Account misses, drops, and latency. Latencies are computed into a
    // flat buffer and folded into the Welford accumulator in one pass —
    // the same push sequence (hence bit-identical moments) as the
    // per-item scalar loop the reference simulator keeps.
    let mut misses = 0u64;
    let mut dropped = 0u64;
    let mut latency = OnlineStats::new();
    let mut lat_buf: Vec<f64> = Vec::with_capacity(arrivals.len());
    if stress.is_none() && spans.is_none() {
        // Hot path: stream straight over the parallel (arrival,
        // completion) cycle lanes.
        for (&c, &a) in lineage.completion_cycles().iter().zip(&arrivals) {
            if c == LineageTracker::INCOMPLETE {
                // Unresolved at the safety horizon: dropped, and counted
                // as a miss.
                misses += 1;
                dropped += 1;
                if let Some(sink) = obs.as_deref_mut() {
                    sink.on_drop();
                }
            } else {
                let lat = (c - a.cycles()) as f64;
                lat_buf.push(lat);
                misses += u64::from(lat > deadline);
            }
        }
    } else {
        for (origin, completion) in lineage.completions() {
            // Shed items never entered the pipeline: they are neither
            // completions, misses, nor latency samples.
            if let Some(st) = stress.as_ref() {
                if st.shed[origin as usize] {
                    continue;
                }
            }
            if let Some(sink) = spans.as_deref_mut() {
                sink.fate(ItemFate {
                    origin,
                    arrival: arrivals[origin as usize].as_f64(),
                    completion: completion.map(|c| c.as_f64()),
                });
            }
            match completion {
                Some(c) => {
                    let lat = c.since(arrivals[origin as usize]).as_f64();
                    lat_buf.push(lat);
                    if lat > deadline {
                        misses += 1;
                    }
                }
                None => {
                    misses += 1;
                    dropped += 1;
                    if let Some(sink) = obs.as_deref_mut() {
                        sink.on_drop();
                    }
                }
            }
        }
    }
    latency.push_slice(&lat_buf);

    // Live metrics run-end flush: drop totals are only known after the
    // accounting pass, and the final tick publishes the run's closing
    // queue high-water marks and throughput.
    if let Some(l) = live {
        l.on_drops(dropped);
        l.tick(&max_depth);
    }

    let horizon = if lineage.all_complete() {
        last_completion.as_f64()
    } else {
        safety_horizon.as_f64()
    }
    .max(1.0);
    ledger.set_horizon(horizon);

    let active_fraction = ledger.active_fraction();
    let active_fraction_nonempty = ledger.active_fraction_nonempty();
    let items_shed = stress.as_ref().map_or(0, |st| st.items_shed);
    SimMetrics {
        items_arrived: arrivals.len() as u64,
        // Shed items resolve in the lineage tracker (so the run
        // terminates) but were never processed.
        items_completed: lineage.completed() - items_shed,
        items_dropped: dropped,
        deadline_misses: misses,
        items_shed,
        resolves: stress.as_ref().map_or(0, |st| st.resolves),
        active_fraction: if config.charge_empty_firings {
            active_fraction
        } else {
            active_fraction_nonempty
        },
        active_fraction_nonempty,
        latency,
        max_backlog_vectors: max_depth.iter().map(|&d| d as f64 / v as f64).collect(),
        max_queue_depth: max_depth,
        occupancy,
        horizon,
        truncated,
        obs: None,
        blame: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{GainModel, PipelineSpecBuilder, RtParams};
    use rtsdf_core::{EnforcedWaitsProblem, SolveMethod};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    fn schedule(pipeline: &PipelineSpec, tau0: f64, d: f64) -> WaitSchedule {
        let params = RtParams::new(tau0, d).unwrap();
        EnforcedWaitsProblem::new(pipeline, params, vec![1.0, 3.0, 9.0, 6.0])
            .solve(SolveMethod::WaterFilling)
            .unwrap()
    }

    #[test]
    fn escalation_fires_on_undersized_design_factors() {
        let p = blast();
        let params = RtParams::new(10.0, 1e5).unwrap();
        // Deliberately undersized factors (calibrated is [1,3,9,6]):
        // real backlog exceeds the design even without faults, which is
        // exactly the model-drift situation escalation exists for.
        let sched = EnforcedWaitsProblem::new(&p, params, vec![1.0, 1.0, 1.0, 1.0])
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let cfg = SimConfig::quick(10.0, 0, 1500);
        let perturb = Perturbation::standard(1.0).at_intensity(0.0);
        let policy = MitigationPolicy {
            shed: false,
            escalate: true,
            escalate_headroom: 0.0,
            max_resolves: 8,
        };
        let m = simulate_enforced_perturbed(&p, &sched, 1e5, &cfg, &perturb, &policy);
        assert!(
            m.resolves >= 1,
            "undersized factors must trigger a re-solve"
        );
        assert!(m.resolves <= u64::from(policy.max_resolves));
        assert_eq!(m.items_shed, 0);
        assert_eq!(m.items_completed + m.items_dropped, m.items_arrived);

        // The re-solve budget is a hard cap.
        let capped = MitigationPolicy {
            max_resolves: 1,
            ..policy.clone()
        };
        let m1 = simulate_enforced_perturbed(&p, &sched, 1e5, &cfg, &perturb, &capped);
        assert_eq!(m1.resolves, 1);

        // Same seed, same escalation trajectory.
        let m2 = simulate_enforced_perturbed(&p, &sched, 1e5, &cfg, &perturb, &policy);
        assert_eq!(m.resolves, m2.resolves);
        assert_eq!(m.deadline_misses, m2.deadline_misses);
    }

    #[test]
    fn observed_run_matches_plain_and_attaches_report() {
        let p = blast();
        let sched = schedule(&p, 20.0, 2e5);
        let cfg = SimConfig::quick(20.0, 1, 500);
        let plain = simulate_enforced(&p, &sched, 2e5, &cfg);
        let observed = simulate_enforced_observed(&p, &sched, 2e5, &cfg, ObsConfig::with_trace(32));
        // Instrumentation must not perturb the simulation.
        assert_eq!(plain.items_completed, observed.items_completed);
        assert_eq!(plain.deadline_misses, observed.deadline_misses);
        assert_eq!(plain.active_fraction, observed.active_fraction);
        assert!(plain.obs.is_none());
        let report = observed.obs.expect("report attached");
        assert_eq!(report.stages.len(), p.len());
        assert_eq!(report.counters.completions, observed.items_completed);
        assert_eq!(report.counters.drops, observed.items_dropped);
        assert!(report.counters.events > 0);
        assert!(report.counters.firings > 0);
        assert!(report.counters.items_enqueued >= observed.items_arrived);
        // Every arrival is eventually consumed at the head stage, and
        // each consumption produced a sojourn sample.
        assert_eq!(report.stages[0].sojourn.count, observed.items_arrived);
        assert!(report.stages[0].queue_depth.count > 0);
        assert!(report.stages[0].occupancy.count > 0);
        assert!(!report.trace.is_empty());
    }

    #[test]
    fn traced_run_matches_plain_and_attaches_blame() {
        let p = blast();
        let sched = schedule(&p, 20.0, 2e5);
        let cfg = SimConfig::quick(20.0, 1, 500);
        let plain = simulate_enforced(&p, &sched, 2e5, &cfg);
        let (traced, log) = simulate_enforced_traced(
            &p,
            &sched,
            2e5,
            &cfg,
            TraceConfig::default(),
            &ForensicsConfig::default(),
        );
        // Tracing must not perturb the simulation.
        assert_eq!(plain.items_completed, traced.items_completed);
        assert_eq!(plain.deadline_misses, traced.deadline_misses);
        assert_eq!(plain.active_fraction, traced.active_fraction);
        assert_eq!(plain.horizon, traced.horizon);
        // One fate per stream input; visits at least one per input
        // (head-stage consumption); spans for every firing.
        assert_eq!(log.fates.len() as u64, traced.items_arrived);
        assert!(log.visits.len() as u64 >= traced.items_arrived);
        assert!(!log.spans.is_empty());
        assert_eq!(log.dropped_spans, 0);
        assert_eq!(log.dropped_visits, 0);
        let blame = traced.blame.expect("blame attached");
        assert_eq!(blame.completed_items, traced.items_completed);
        assert_eq!(blame.dropped_items, traced.items_dropped);
        assert_eq!(
            blame.missed_items + blame.dropped_items,
            traced.deadline_misses
        );
    }

    #[test]
    fn traced_misses_blame_accounts_all_overrun() {
        let p = blast();
        // No waits, deadline below one service time: every item misses.
        let sched = WaitSchedule {
            waits: vec![0.0; 4],
            periods: p.service_times(),
            active_fraction: 1.0,
            backlog_factors: vec![1.0; 4],
            latency_bound: 0.0,
            method: SolveMethod::WaterFilling,
            telemetry: None,
        };
        let cfg = SimConfig::quick(50.0, 3, 200);
        let (m, _log) = simulate_enforced_traced(
            &p,
            &sched,
            100.0,
            &cfg,
            TraceConfig::default(),
            &ForensicsConfig::default(),
        );
        assert_eq!(m.deadline_misses, m.items_arrived);
        let blame = m.blame.expect("blame attached");
        assert_eq!(blame.analyzed_items, m.items_completed);
        assert!(blame.total_overrun > 0.0);
        assert!(!blame.stages.is_empty());
        assert!(!blame.exemplars.is_empty());
        // The per-stage fractions account for 100 % of the overrun.
        assert!(
            (blame.accounted_fraction() - 1.0).abs() < 1e-9,
            "accounted {}",
            blame.accounted_fraction()
        );
    }

    #[test]
    fn deterministic_pipeline_meets_analysis_exactly() {
        // All-deterministic gains: behaviour is fully predictable.
        let p = PipelineSpecBuilder::new(4)
            .stage("a", 10.0, GainModel::Deterministic { k: 1 })
            .stage("b", 20.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap();
        let sched = WaitSchedule {
            waits: vec![30.0, 20.0],
            periods: vec![40.0, 40.0],
            active_fraction: 0.5 * (10.0 / 40.0 + 20.0 / 40.0),
            backlog_factors: vec![1.0, 1.0],
            latency_bound: 80.0,
            method: SolveMethod::WaterFilling,
            telemetry: None,
        };
        let cfg = SimConfig::quick(10.0, 1, 400);
        let m = simulate_enforced(&p, &sched, 1e6, &cfg);
        assert_eq!(m.items_arrived, 400);
        assert_eq!(m.items_completed, 400);
        assert_eq!(m.deadline_misses, 0);
        assert!(!m.truncated);
        // Measured active fraction ≈ predicted (boundary effects only).
        assert!(
            (m.active_fraction - sched.active_fraction).abs() < 0.03,
            "measured {} vs predicted {}",
            m.active_fraction,
            sched.active_fraction
        );
    }

    #[test]
    fn measured_active_fraction_matches_prediction_on_blast() {
        let p = blast();
        let sched = schedule(&p, 10.0, 1e5);
        let cfg = SimConfig::quick(10.0, 42, 5_000);
        let m = simulate_enforced(&p, &sched, 1e5, &cfg);
        assert!(!m.truncated);
        assert_eq!(m.items_completed, 5_000);
        let rel = (m.active_fraction - sched.active_fraction).abs() / sched.active_fraction;
        assert!(
            rel < 0.05,
            "measured {} vs predicted {} (rel {rel})",
            m.active_fraction,
            sched.active_fraction
        );
    }

    #[test]
    fn miss_rate_low_with_calibrated_backlog_factors() {
        let p = blast();
        let sched = schedule(&p, 10.0, 1e5);
        let cfg = SimConfig::quick(10.0, 7, 10_000);
        let m = simulate_enforced(&p, &sched, 1e5, &cfg);
        assert!(
            m.miss_rate() < 0.01,
            "miss rate {} with paper-calibrated b",
            m.miss_rate()
        );
    }

    #[test]
    fn same_seed_is_reproducible() {
        let p = blast();
        let sched = schedule(&p, 10.0, 1e5);
        let cfg = SimConfig::quick(10.0, 123, 2_000);
        let a = simulate_enforced(&p, &sched, 1e5, &cfg);
        let b = simulate_enforced(&p, &sched, 1e5, &cfg);
        assert_eq!(a.deadline_misses, b.deadline_misses);
        assert_eq!(a.items_completed, b.items_completed);
        assert_eq!(a.active_fraction, b.active_fraction);
        assert_eq!(a.horizon, b.horizon);
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let p = blast();
        let sched = schedule(&p, 10.0, 1e5);
        let a = simulate_enforced(&p, &sched, 1e5, &SimConfig::quick(10.0, 1, 2_000));
        let b = simulate_enforced(&p, &sched, 1e5, &SimConfig::quick(10.0, 2, 2_000));
        // Stochastic gains: latency distributions should not be identical.
        assert!(
            (a.latency.mean() - b.latency.mean()).abs() > 1e-9
                || a.deadline_misses != b.deadline_misses
        );
    }

    #[test]
    fn hopeless_deadline_counts_misses() {
        let p = blast();
        // A "schedule" with huge waits and a tiny deadline: everything
        // must miss.
        let sched = WaitSchedule {
            waits: vec![0.0; 4],
            periods: p.service_times(),
            active_fraction: 1.0,
            backlog_factors: vec![1.0; 4],
            latency_bound: 0.0,
            method: SolveMethod::WaterFilling,
            telemetry: None,
        };
        let cfg = SimConfig::quick(50.0, 3, 200);
        // Deadline below even one service time.
        let m = simulate_enforced(&p, &sched, 100.0, &cfg);
        assert_eq!(m.deadline_misses, m.items_arrived);
    }

    #[test]
    fn unstable_schedule_truncates_not_hangs() {
        let p = blast();
        // Periods far too long for the arrival rate: queues grow, the
        // safety horizon kicks in.
        let sched = WaitSchedule {
            waits: vec![100_000.0; 4],
            periods: p.service_times().iter().map(|t| t + 100_000.0).collect(),
            active_fraction: 0.01,
            backlog_factors: vec![1.0; 4],
            latency_bound: 0.0,
            method: SolveMethod::WaterFilling,
            telemetry: None,
        };
        let mut cfg = SimConfig::quick(1.0, 3, 500);
        cfg.drain_factor = 2.0;
        let m = simulate_enforced(&p, &sched, 1000.0, &cfg);
        assert!(m.truncated);
        assert!(m.deadline_misses > 0);
    }

    #[test]
    fn occupancy_improves_with_waits() {
        let p = blast();
        // No waits: head fires every 287 cycles, sees ~29 items at τ0=10.
        let no_waits = WaitSchedule {
            waits: vec![0.0; 4],
            periods: p.service_times(),
            active_fraction: 1.0,
            backlog_factors: vec![1.0; 4],
            latency_bound: 0.0,
            method: SolveMethod::WaterFilling,
            telemetry: None,
        };
        let with_waits = schedule(&p, 10.0, 2e5);
        let cfg = SimConfig::quick(10.0, 9, 3_000);
        let a = simulate_enforced(&p, &no_waits, 1e9, &cfg);
        let b = simulate_enforced(&p, &with_waits, 1e9, &cfg);
        assert!(
            b.occupancy[0].mean_occupancy() > a.occupancy[0].mean_occupancy() * 2.0,
            "waits should raise head occupancy: {} vs {}",
            b.occupancy[0].mean_occupancy(),
            a.occupancy[0].mean_occupancy()
        );
    }

    #[test]
    fn zero_length_stream_is_a_clean_noop() {
        let p = blast();
        let sched = schedule(&p, 10.0, 1e5);
        let cfg = SimConfig::quick(10.0, 1, 0);
        let m = simulate_enforced(&p, &sched, 1e5, &cfg);
        assert_eq!(m.items_arrived, 0);
        assert_eq!(m.items_completed, 0);
        assert_eq!(m.deadline_misses, 0);
        assert!(!m.truncated);
        assert!(m.active_fraction >= 0.0);
    }

    #[test]
    fn single_item_stream() {
        let p = blast();
        let sched = schedule(&p, 10.0, 1e5);
        let cfg = SimConfig::quick(10.0, 1, 1);
        let m = simulate_enforced(&p, &sched, 1e5, &cfg);
        assert_eq!(m.items_arrived, 1);
        assert_eq!(m.items_completed, 1);
        assert_eq!(m.latency.count(), 1);
    }

    #[test]
    fn vacation_discipline_never_fires_empty_and_helps_latency() {
        use crate::config::FiringDiscipline;
        let p = blast();
        // Slow arrivals so strict-periodic firing is mostly empty.
        let sched = schedule(&p, 50.0, 2e5);
        let mut strict_cfg = SimConfig::quick(50.0, 4, 2_000);
        let mut vac_cfg = strict_cfg.clone();
        vac_cfg.discipline = FiringDiscipline::Vacation;
        let strict = simulate_enforced(&p, &sched, 2e5, &strict_cfg);
        let vac = simulate_enforced(&p, &sched, 2e5, &vac_cfg);
        // No empty firings at all under vacations.
        for o in &vac.occupancy {
            assert_eq!(o.empty_firings(), 0);
        }
        // Charged activity drops to the nonempty level.
        assert!(
            vac.active_fraction <= strict.active_fraction + 1e-9,
            "vacation {} vs strict {}",
            vac.active_fraction,
            strict.active_fraction
        );
        // Eager wake-up fires cannot worsen latency.
        assert!(
            vac.latency.mean() <= strict.latency.mean() + 1e-9,
            "vacation latency {} vs strict {}",
            vac.latency.mean(),
            strict.latency.mean()
        );
        assert_eq!(vac.items_completed, vac.items_arrived);
        assert!(vac.miss_free());
        // Inter-fire gaps still respect the enforced period: the number
        // of (nonempty) firings cannot exceed horizon/period + slack.
        for node in 0..p.len() {
            let max_fires = (vac.horizon / sched.periods[node]).ceil() + 2.0;
            assert!(
                (vac.occupancy[node].firings() as f64) <= max_fires,
                "node {node}: {} firings over {} cycles at period {}",
                vac.occupancy[node].firings(),
                vac.horizon,
                sched.periods[node]
            );
        }
        // Both disciplines deliver the same items.
        assert_eq!(strict.items_completed, vac.items_completed);

        strict_cfg.seed = 5;
        vac_cfg.seed = 5;
        let strict2 = simulate_enforced(&p, &sched, 2e5, &strict_cfg);
        let vac2 = simulate_enforced(&p, &sched, 2e5, &vac_cfg);
        assert_eq!(strict2.items_completed, vac2.items_completed);
    }

    #[test]
    fn backlog_vectors_reported() {
        let p = blast();
        let sched = schedule(&p, 10.0, 1e5);
        let cfg = SimConfig::quick(10.0, 5, 3_000);
        let m = simulate_enforced(&p, &sched, 1e5, &cfg);
        assert_eq!(m.max_backlog_vectors.len(), 4);
        // The head queue must have held something.
        assert!(m.max_queue_depth[0] > 0);
        assert!((m.max_backlog_vectors[0] - m.max_queue_depth[0] as f64 / 128.0).abs() < 1e-12);
    }
}
