//! Fault application and graceful-degradation policies.
//!
//! [`FaultState`] realizes a [`Perturbation`]'s service-side effects
//! (sustained inflation, tail spikes, transient preemption stalls) with
//! dedicated RNG substreams, so the unperturbed arrival/gain draws are
//! untouched and a zero-intensity perturbation is bit-identical to an
//! unperturbed run.
//!
//! [`MitigationPolicy`] selects the runtime's graceful-degradation
//! responses for the enforced-waits simulator:
//!
//! * **deadline-aware load shedding** — an arrival predicted to miss
//!   its deadline (given current queue depths against the design
//!   backlog factors) is dropped at admission and accounted in
//!   [`crate::metrics::SimMetrics::items_shed`], keeping the *admitted*
//!   stream's miss rate low;
//! * **online escalation** — when observed backlog exceeds the design
//!   `b_i`, the waits are re-solved at the observed ceilings through
//!   the solver's warm-start path
//!   ([`rtsdf_core::policy::escalate_schedule`]).

use dataflow_model::Perturbation;
use des::rng::RngStream;
use serde::{Deserialize, Serialize};

/// RNG substream labels reserved for fault injection. The plain
/// simulators use label 0 (arrivals) and `1 + i` per stage (gains);
/// fault streams start far above so the two families never collide.
pub(crate) const FAULT_ARRIVAL_STREAM: u64 = 999;
pub(crate) const FAULT_STAGE_STREAM_BASE: u64 = 1_000;

/// Which graceful-degradation responses the enforced-waits runtime
/// applies while simulating under faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigationPolicy {
    /// Shed arrivals predicted to miss their deadline at admission.
    pub shed: bool,
    /// Re-solve the waits when observed backlog exceeds the design
    /// factors.
    pub escalate: bool,
    /// Extra vectors of observed backlog tolerated beyond the design
    /// factor before an escalation triggers.
    pub escalate_headroom: f64,
    /// Upper bound on online re-solves per run (escalation is disabled
    /// after the budget is spent or after an infeasible re-solve).
    pub max_resolves: u32,
}

impl MitigationPolicy {
    /// No mitigation: faults land unmitigated (the baseline the
    /// robustness report compares against).
    pub fn none() -> Self {
        MitigationPolicy {
            shed: false,
            escalate: false,
            escalate_headroom: 0.0,
            max_resolves: 0,
        }
    }

    /// Both responses enabled with default tuning.
    pub fn full() -> Self {
        MitigationPolicy {
            shed: true,
            escalate: true,
            escalate_headroom: 0.0,
            max_resolves: 8,
        }
    }

    /// Load shedding only.
    pub fn shed_only() -> Self {
        MitigationPolicy {
            shed: true,
            ..MitigationPolicy::none()
        }
    }
}

/// Realized service-side faults for one run: per-stage substreams plus
/// the effective (intensity-scaled) parameters.
pub(crate) struct FaultState {
    multiplier: f64,
    spike_p: f64,
    spike_factor: f64,
    stall_p: f64,
    stall_cycles: f64,
    rngs: Vec<RngStream>,
}

impl FaultState {
    /// Build from a perturbation and the run's master stream. Substream
    /// derivation is pure, so this never advances the master.
    pub(crate) fn new(perturb: &Perturbation, master: &RngStream, stages: usize) -> Self {
        FaultState {
            multiplier: perturb.service_multiplier(),
            spike_p: perturb.spike_p(),
            spike_factor: perturb.spike_factor,
            stall_p: perturb.stall_p(),
            stall_cycles: perturb.stall_cycles,
            rngs: (0..stages)
                .map(|i| master.substream(FAULT_STAGE_STREAM_BASE + i as u64))
                .collect(),
        }
    }

    /// Effective service time of one firing of `node` whose nominal
    /// service is `base` cycles, on the integer clock. Exactly two
    /// draws are consumed per call (spike, stall) at every intensity,
    /// and at intensity 0 the result is exactly `base`.
    pub(crate) fn service_cycles(&mut self, node: usize, base: u64) -> u64 {
        let rng = &mut self.rngs[node];
        let spike = rng.next_f64() < self.spike_p;
        let stall = rng.next_f64() < self.stall_p;
        let mut s = base as f64 * self.multiplier;
        if spike {
            s *= self.spike_factor;
        }
        if stall {
            s += self.stall_cycles;
        }
        (s.round() as u64).max(1)
    }

    /// Effective busy time of one stage of a monolithic block
    /// (`firings` firings of nominal service `service`), on the
    /// continuous clock. Two draws per call; exactly
    /// `firings · service` at intensity 0.
    pub(crate) fn block_busy(&mut self, node: usize, firings: u64, service: f64) -> f64 {
        let rng = &mut self.rngs[node];
        let spike = rng.next_f64() < self.spike_p;
        let stall = rng.next_f64() < self.stall_p;
        let mut s = firings as f64 * service * self.multiplier;
        if spike {
            s *= self.spike_factor;
        }
        if stall {
            s += self.stall_cycles;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_faults_are_exact_identity() {
        let p = Perturbation::standard(0.0);
        let master = RngStream::new(7);
        let mut f = FaultState::new(&p, &master, 3);
        for node in 0..3 {
            for base in [1u64, 287, 2753] {
                assert_eq!(f.service_cycles(node, base), base);
            }
            assert_eq!(f.block_busy(node, 5, 287.0), 5.0 * 287.0);
        }
    }

    #[test]
    fn inflation_scales_service() {
        let mut p = Perturbation::standard(1.0);
        p.spike_prob = 0.0;
        p.stall_prob = 0.0;
        p.service_inflation = 0.5;
        let master = RngStream::new(7);
        let mut f = FaultState::new(&p, &master, 1);
        assert_eq!(f.service_cycles(0, 1000), 1500);
        assert!((f.block_busy(0, 2, 1000.0) - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn spikes_and_stalls_occur_at_high_probability() {
        let mut p = Perturbation::standard(1.0);
        p.service_inflation = 0.0;
        p.spike_prob = 1.0;
        p.spike_factor = 3.0;
        p.stall_prob = 1.0;
        p.stall_cycles = 100.0;
        let master = RngStream::new(7);
        let mut f = FaultState::new(&p, &master, 1);
        assert_eq!(f.service_cycles(0, 10), 130); // 10*3 + 100
    }

    #[test]
    fn fault_draws_are_deterministic_per_seed() {
        let p = Perturbation::standard(0.8);
        let mk = || {
            let master = RngStream::new(42);
            let mut f = FaultState::new(&p, &master, 2);
            (0..50)
                .map(|k| f.service_cycles(k % 2, 500))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn policy_constructors() {
        assert!(!MitigationPolicy::none().shed);
        assert!(!MitigationPolicy::none().escalate);
        assert!(MitigationPolicy::full().shed);
        assert!(MitigationPolicy::full().escalate);
        assert!(MitigationPolicy::shed_only().shed);
        assert!(!MitigationPolicy::shed_only().escalate);
    }
}
