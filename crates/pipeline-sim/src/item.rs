//! Work items flowing through the simulated pipeline.

use des::clock::SimTime;

/// A work item inside the pipeline. Every item carries the identity and
/// arrival time of its *ancestral stream input*, because deadlines
/// attach to stream inputs (paper §2.3): an input's deadline is met only
/// when every item derived from it has left the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Item {
    /// Index of the original stream input this item derives from.
    pub origin: u64,
    /// Arrival time of that original input.
    pub arrival: SimTime,
}

/// Tracks, per stream input, how many derived items are still alive in
/// the pipeline, and when the last one left.
///
/// An input starts with one live item (itself). When a node consumes an
/// item and emits `k` outputs, the live count changes by `k − 1`; when
/// it reaches zero the input is *complete* — either its outputs all
/// exited the final stage or its lineage died at a filter stage
/// (producing zero outputs means there is nothing left to wait for).
#[derive(Debug)]
pub struct LineageTracker {
    live: Vec<u32>,
    /// Completion cycle per input, [`LineageTracker::INCOMPLETE`] while
    /// unresolved. A plain `u64` lane (rather than `Option<SimTime>`)
    /// halves the footprint and lets the end-of-run latency accounting
    /// stream over it as a flat slice.
    completion: Vec<u64>,
    completed: u64,
}

impl LineageTracker {
    /// Sentinel in [`LineageTracker::completion_cycles`] for an input
    /// that has not completed. (A real completion at `u64::MAX` cycles
    /// is unrepresentable: simulations truncate long before the clock
    /// saturates.)
    pub const INCOMPLETE: u64 = u64::MAX;

    /// Tracker for a stream of `n` inputs.
    pub fn new(n: usize) -> Self {
        LineageTracker {
            live: vec![0; n],
            completion: vec![Self::INCOMPLETE; n],
            completed: 0,
        }
    }

    /// Register the arrival of input `origin` (live count 0 → 1).
    pub fn arrive(&mut self, origin: u64) {
        let o = origin as usize;
        debug_assert_eq!(self.live[o], 0, "input {origin} arrived twice");
        self.live[o] = 1;
    }

    /// Record that one item of `origin`'s lineage was consumed and
    /// produced `outputs` new items, at firing-completion time `at`.
    /// Returns `true` if this completed the input.
    pub fn consume(&mut self, origin: u64, outputs: u32, at: SimTime) -> bool {
        let o = origin as usize;
        debug_assert!(self.live[o] > 0, "consuming dead lineage of input {origin}");
        self.live[o] = self.live[o] - 1 + outputs;
        if self.live[o] == 0 && self.completion[o] == Self::INCOMPLETE {
            self.completion[o] = at.cycles();
            self.completed += 1;
            true
        } else {
            false
        }
    }

    /// Number of inputs fully resolved.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Completion time of input `origin`, if complete.
    pub fn completion(&self, origin: u64) -> Option<SimTime> {
        let c = self.completion[origin as usize];
        (c != Self::INCOMPLETE).then(|| SimTime::from_cycles(c))
    }

    /// True if every input in the stream is complete.
    pub fn all_complete(&self) -> bool {
        self.completed as usize == self.completion.len()
    }

    /// Iterate completion times with input indices.
    pub fn completions(&self) -> impl Iterator<Item = (u64, Option<SimTime>)> + '_ {
        self.completion.iter().enumerate().map(|(i, &c)| {
            (
                i as u64,
                (c != Self::INCOMPLETE).then(|| SimTime::from_cycles(c)),
            )
        })
    }

    /// Raw completion-cycle lane: one entry per input, in origin order,
    /// [`LineageTracker::INCOMPLETE`] for unresolved inputs. The batch
    /// latency-accounting pass streams over this slice directly.
    pub fn completion_cycles(&self) -> &[u64] {
        &self.completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> SimTime {
        SimTime::from_cycles(c)
    }

    #[test]
    fn single_item_passthrough() {
        let mut lt = LineageTracker::new(1);
        lt.arrive(0);
        // One node consumes it, emits 1 output.
        assert!(!lt.consume(0, 1, t(10)));
        // Final node consumes, emits nothing further (exits).
        assert!(lt.consume(0, 0, t(20)));
        assert_eq!(lt.completion(0), Some(t(20)));
        assert!(lt.all_complete());
    }

    #[test]
    fn filtered_item_completes_at_filter() {
        let mut lt = LineageTracker::new(1);
        lt.arrive(0);
        assert!(
            lt.consume(0, 0, t(5)),
            "zero outputs → lineage dies → complete"
        );
        assert_eq!(lt.completion(0), Some(t(5)));
    }

    #[test]
    fn expansion_requires_all_descendants() {
        let mut lt = LineageTracker::new(1);
        lt.arrive(0);
        // Expand ×3.
        assert!(!lt.consume(0, 3, t(10)));
        // Two of the three die, one at a time.
        assert!(!lt.consume(0, 0, t(20)));
        assert!(!lt.consume(0, 0, t(30)));
        // The last one exits: now complete.
        assert!(lt.consume(0, 0, t(40)));
        assert_eq!(lt.completion(0), Some(t(40)));
    }

    #[test]
    fn independent_origins() {
        let mut lt = LineageTracker::new(2);
        lt.arrive(0);
        lt.arrive(1);
        lt.consume(1, 0, t(5));
        assert_eq!(lt.completed(), 1);
        assert!(lt.completion(0).is_none());
        assert!(!lt.all_complete());
        lt.consume(0, 0, t(9));
        assert!(lt.all_complete());
        let comps: Vec<_> = lt.completions().collect();
        assert_eq!(comps[0], (0, Some(t(9))));
        assert_eq!(comps[1], (1, Some(t(5))));
    }
}
