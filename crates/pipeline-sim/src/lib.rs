//! # pipeline-sim — discrete-event simulation of irregular SIMD pipelines
//!
//! This crate is the simulator of the paper's §6.2: it executes a
//! pipeline on the §2.2 system model (one processor, 1/N share per node,
//! SIMD vector width `v`) under either scheduling strategy, processes a
//! long stream of inputs, and reports
//!
//! * how many inputs missed their deadline (the schedulability check),
//! * the **measured** active fraction (validated against the optimizer's
//!   prediction — §6.2 notes they match closely),
//! * per-node lane occupancy and queue high-water marks (the empirical
//!   counterpart of the backlog factors `b_i`).
//!
//! Modules:
//!
//! * [`enforced`] — the enforced-waits runtime: every node fires
//!   periodically with its optimized period `t_i + w_i`.
//! * [`monolithic`] — the block-batching runtime: accumulate `M` items,
//!   push the whole block through the pipeline at once.
//! * [`runner`] — multi-seed experiment execution (parallel across
//!   seeds), mirroring the paper's 100-runs-per-point methodology.
//! * [`calibration`] — the §6.2 empirical search for backlog factors:
//!   start from the optimistic `b_i = ⌈g_i⌉`, simulate, escalate the
//!   factors of nodes whose queues overflow the design assumption, and
//!   repeat until a target fraction of seeds is miss-free.
//! * [`faults`] — fault injection (realizing a
//!   [`dataflow_model::Perturbation`]) and the graceful-degradation
//!   [`MitigationPolicy`] (deadline-aware load shedding, online wait
//!   escalation).
//! * [`robustness`] — perturbation-intensity sweeps: degradation curves
//!   and the robustness margin of each strategy.
//! * [`validate`] — optimizer-vs-simulator agreement checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod calibration;
pub mod config;
pub mod enforced;
pub mod faults;
pub mod item;
pub mod live;
pub mod metrics;
pub mod monolithic;
pub mod reference;
pub mod robustness;
pub mod runner;
pub mod soa;
pub mod timeline;
pub mod validate;

pub use backend::DesBackend;
pub use config::SimConfig;
pub use enforced::{
    simulate_enforced, simulate_enforced_observed, simulate_enforced_perturbed,
    simulate_enforced_topology, simulate_enforced_topology_observed,
    simulate_enforced_topology_perturbed, simulate_enforced_topology_traced,
    simulate_enforced_traced,
};
pub use enforced::{
    simulate_enforced_live, simulate_enforced_perturbed_live, simulate_enforced_topology_live,
    simulate_enforced_topology_perturbed_live,
};
pub use faults::MitigationPolicy;
pub use live::{SimLive, SimLiveMetrics};
pub use metrics::SimMetrics;
pub use monolithic::{
    simulate_monolithic, simulate_monolithic_live, simulate_monolithic_observed,
    simulate_monolithic_perturbed, simulate_monolithic_perturbed_live,
    simulate_monolithic_topology, simulate_monolithic_topology_live,
    simulate_monolithic_topology_observed, simulate_monolithic_topology_perturbed,
    simulate_monolithic_topology_perturbed_live, simulate_monolithic_topology_traced,
    simulate_monolithic_traced,
};
pub use robustness::{
    robustness_report, robustness_report_live, robustness_report_topology_live, RobustnessPoint,
    RobustnessReport, StressSummary,
};
pub use runner::{
    run_seeds_enforced, run_seeds_enforced_perturbed, run_seeds_enforced_perturbed_live,
    run_seeds_enforced_topology, run_seeds_enforced_topology_perturbed_live, run_seeds_monolithic,
    run_seeds_monolithic_perturbed, run_seeds_monolithic_perturbed_live,
    run_seeds_monolithic_topology, run_seeds_monolithic_topology_perturbed_live, MultiSeedReport,
};
