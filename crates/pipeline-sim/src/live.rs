//! Live simulator telemetry: a sharded registry both simulators can
//! publish into while they run.
//!
//! [`SimLiveMetrics`] owns the registry (one shard per worker thread);
//! each simulated run gets a cheap per-thread [`SimLive`] handle via
//! [`SimLiveMetrics::handle`]. The simulators accept the handle as
//! `Option<&SimLive>` — the same branch-on-`Option` discipline as
//! `ObsSink`, so a `None` costs one untaken branch per hook and the
//! `metrics_overhead` bench gates that the disabled path stays within
//! 1% of plain throughput.
//!
//! Queue-depth high-water marks and wall-clock throughput are published
//! on a periodic tick (every [`TICK_EVERY`] arrivals plus once at run
//! end) rather than per event, so the enabled path stays cheap too.

use ::metrics::{CounterHandle, GaugeHandle, Registry};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

/// How many arrivals between periodic gauge ticks.
pub const TICK_EVERY: u32 = 1024;

/// Registry + handles for everything the simulators publish.
#[derive(Debug)]
pub struct SimLiveMetrics {
    registry: Arc<Registry>,
    arrived: CounterHandle,
    completed: CounterHandle,
    dropped: CounterHandle,
    shed: CounterHandle,
    queue_hwm: Vec<GaugeHandle>,
    items_per_sec: GaugeHandle,
    runs_total: GaugeHandle,
    runs_completed: CounterHandle,
}

impl SimLiveMetrics {
    /// Live metrics for a pipeline of `num_stages` stages, sharded over
    /// `workers` threads.
    pub fn new(num_stages: usize, workers: usize) -> Self {
        let mut r = Registry::new(workers);
        let arrived = r.counter("rtsdf_sim_items_arrived", "stream items arrived");
        let completed = r.counter("rtsdf_sim_items_completed", "stream items completed");
        let dropped = r.counter(
            "rtsdf_sim_items_dropped",
            "items unresolved at the safety horizon",
        );
        let shed = r.counter("rtsdf_sim_items_shed", "items rejected at admission");
        let stage_labels: Vec<String> = (0..num_stages).map(|k| k.to_string()).collect();
        let queue_hwm = stage_labels
            .iter()
            .map(|k| {
                r.gauge_full(
                    "rtsdf_sim_queue_depth_hwm",
                    "per-stage queue depth high-water mark",
                    &[("stage", k)],
                    false,
                )
            })
            .collect();
        let items_per_sec = r.gauge_full(
            "rtsdf_sim_items_per_sec",
            "wall-clock completion throughput, per worker",
            &[],
            true,
        );
        let runs_total = r.gauge("rtsdf_sim_runs_total", "seeds scheduled in this batch");
        let runs_completed = r.counter("rtsdf_sim_runs_completed", "seeds finished so far");
        SimLiveMetrics {
            registry: Arc::new(r),
            arrived,
            completed,
            dropped,
            shed,
            queue_hwm,
            items_per_sec,
            runs_total,
            runs_completed,
        }
    }

    /// The underlying registry, for `/metrics` serving and snapshots.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Record how many seeded runs the current batch will execute.
    pub fn set_runs_total(&self, n: u64) {
        self.registry.gauge_set(self.runs_total, 0, n as f64);
    }

    /// Seeds finished so far, summed across workers.
    pub fn runs_completed(&self) -> u64 {
        self.registry.counter_value(self.runs_completed)
    }

    /// Seeds scheduled, as last recorded by
    /// [`set_runs_total`](Self::set_runs_total).
    pub fn runs_total(&self) -> u64 {
        self.registry.gauge_value(self.runs_total) as u64
    }

    /// Items arrived / completed / shed so far (for progress lines).
    pub fn item_counts(&self) -> (u64, u64, u64) {
        (
            self.registry.counter_value(self.arrived),
            self.registry.counter_value(self.completed),
            self.registry.counter_value(self.shed),
        )
    }

    /// Mark one seeded run finished on `worker`'s shard.
    pub fn on_run_complete(&self, worker: usize) {
        self.registry.inc(self.runs_completed, worker, 1);
    }

    /// A per-run publishing handle for `worker`'s shard. Create one per
    /// simulated run, on the thread that runs it.
    pub fn handle(&self, worker: usize) -> SimLive<'_> {
        SimLive {
            m: self,
            worker,
            started: Instant::now(),
            local_completed: Cell::new(0),
            until_tick: Cell::new(TICK_EVERY),
        }
    }
}

/// Per-run, single-threaded publishing handle (see [`SimLiveMetrics`]).
#[derive(Debug)]
pub struct SimLive<'a> {
    m: &'a SimLiveMetrics,
    worker: usize,
    started: Instant,
    local_completed: Cell<u64>,
    until_tick: Cell<u32>,
}

impl SimLive<'_> {
    /// One stream item arrived. Returns `true` when a periodic tick is
    /// due; the simulator then calls [`tick`](Self::tick) with its
    /// current per-stage depth high-water marks.
    pub fn on_arrival(&self) -> bool {
        self.m.registry.inc(self.m.arrived, self.worker, 1);
        let left = self.until_tick.get();
        if left <= 1 {
            self.until_tick.set(TICK_EVERY);
            true
        } else {
            self.until_tick.set(left - 1);
            false
        }
    }

    /// `n` stream items arrived at once (block accumulation). Returns
    /// `true` when a periodic tick is due, like
    /// [`on_arrival`](Self::on_arrival).
    pub fn on_arrivals(&self, n: u64) -> bool {
        self.m.registry.inc(self.m.arrived, self.worker, n);
        let left = u64::from(self.until_tick.get());
        if n >= left {
            self.until_tick.set(TICK_EVERY);
            true
        } else {
            self.until_tick.set((left - n) as u32);
            false
        }
    }

    /// One item completed end to end.
    pub fn on_completion(&self) {
        self.m.registry.inc(self.m.completed, self.worker, 1);
        self.local_completed.set(self.local_completed.get() + 1);
    }

    /// `n` items completed at once (block completion).
    pub fn on_completions(&self, n: u64) {
        self.m.registry.inc(self.m.completed, self.worker, n);
        self.local_completed.set(self.local_completed.get() + n);
    }

    /// `n` items were unresolved at the safety horizon.
    pub fn on_drops(&self, n: u64) {
        self.m.registry.inc(self.m.dropped, self.worker, n);
    }

    /// One item rejected at admission by the shedding mitigation.
    pub fn on_shed(&self) {
        self.m.registry.inc(self.m.shed, self.worker, 1);
    }

    /// Publish per-stage queue-depth high-water marks and this run's
    /// wall-clock throughput. Called by the simulator when
    /// [`on_arrival`](Self::on_arrival) signals a due tick, and once at
    /// run end.
    pub fn tick(&self, max_depth: &[u64]) {
        for (handle, &depth) in self.m.queue_hwm.iter().zip(max_depth) {
            self.m
                .registry
                .gauge_max(*handle, self.worker, depth as f64);
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            self.m.registry.gauge_set(
                self.m.items_per_sec,
                self.worker,
                self.local_completed.get() as f64 / elapsed,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_accumulate_into_the_registry() {
        let m = SimLiveMetrics::new(3, 2);
        m.set_runs_total(2);
        {
            let h = m.handle(0);
            for _ in 0..5 {
                h.on_arrival();
            }
            for _ in 0..4 {
                h.on_completion();
            }
            h.on_shed();
            h.on_drops(2);
            h.tick(&[7, 3, 0]);
            m.on_run_complete(0);
        }
        {
            let h = m.handle(1);
            h.on_arrival();
            h.on_completion();
            h.tick(&[1, 9, 2]);
            m.on_run_complete(1);
        }
        let snap = m.registry().snapshot();
        assert_eq!(snap.total("rtsdf_sim_items_arrived"), 6.0);
        assert_eq!(snap.total("rtsdf_sim_items_completed"), 5.0);
        assert_eq!(snap.total("rtsdf_sim_items_shed"), 1.0);
        assert_eq!(snap.total("rtsdf_sim_items_dropped"), 2.0);
        assert_eq!(m.runs_completed(), 2);
        assert_eq!(m.runs_total(), 2);
        assert_eq!(m.item_counts(), (6, 5, 1));
        // Stage HWMs merge by max across shards.
        let hwm = snap.family("rtsdf_sim_queue_depth_hwm").unwrap();
        let values: Vec<f64> = hwm.samples.iter().map(|s| s.value).collect();
        assert_eq!(values, vec![7.0, 9.0, 2.0]);
    }

    #[test]
    fn arrival_signals_tick_every_interval() {
        let m = SimLiveMetrics::new(1, 1);
        let h = m.handle(0);
        let mut ticks = 0;
        for _ in 0..(TICK_EVERY * 2) {
            if h.on_arrival() {
                ticks += 1;
            }
        }
        assert_eq!(ticks, 2);
    }
}
