//! Measurements from one simulation run.

use des::obs::ObsReport;
use des::stats::OnlineStats;
use obs_trace::BlameReport;
use serde::{Deserialize, Serialize};
use simd_device::OccupancyStats;

/// Everything one simulation run measures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Stream inputs that arrived.
    pub items_arrived: u64,
    /// Stream inputs fully resolved (all derived outputs exited).
    pub items_completed: u64,
    /// Stream inputs still unresolved when the run hit its safety
    /// horizon (these also count as deadline misses).
    pub items_dropped: u64,
    /// Stream inputs whose completion exceeded `arrival + D` (including
    /// any still unresolved when the run hit its safety horizon).
    pub deadline_misses: u64,
    /// Measured active fraction under the paper's convention (empty
    /// firings charged).
    pub active_fraction: f64,
    /// Measured active fraction with empty firings treated as vacations.
    pub active_fraction_nonempty: f64,
    /// Per-input end-to-end latency statistics (cycles).
    pub latency: OnlineStats,
    /// Per-node lane occupancy.
    pub occupancy: Vec<OccupancyStats>,
    /// Per-node maximum input-queue depth observed (items).
    pub max_queue_depth: Vec<u64>,
    /// `max_queue_depth / v`: the empirical counterpart of the paper's
    /// backlog factors `b_i`.
    pub max_backlog_vectors: Vec<f64>,
    /// Simulated horizon (cycles) the run covered.
    pub horizon: f64,
    /// True if the run hit its safety horizon before completing all
    /// inputs (a sign of an unstable or badly mis-calibrated schedule).
    pub truncated: bool,
    /// Structured observability report (`None` unless the run was
    /// started through an `*_observed` entry point).
    pub obs: Option<ObsReport>,
    /// Deadline-miss forensics (`None` unless the run was started
    /// through a `*_traced` entry point).
    pub blame: Option<BlameReport>,
}

impl SimMetrics {
    /// True if no input missed its deadline.
    pub fn miss_free(&self) -> bool {
        self.deadline_misses == 0
    }

    /// Misses as a fraction of arrived inputs.
    pub fn miss_rate(&self) -> f64 {
        if self.items_arrived == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.items_arrived as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> SimMetrics {
        SimMetrics {
            items_arrived: 100,
            items_completed: 100,
            items_dropped: 0,
            deadline_misses: 0,
            active_fraction: 0.5,
            active_fraction_nonempty: 0.4,
            latency: OnlineStats::new(),
            occupancy: vec![],
            max_queue_depth: vec![],
            max_backlog_vectors: vec![],
            horizon: 1000.0,
            truncated: false,
            obs: None,
            blame: None,
        }
    }

    #[test]
    fn miss_accessors() {
        let mut m = blank();
        assert!(m.miss_free());
        assert_eq!(m.miss_rate(), 0.0);
        m.deadline_misses = 5;
        assert!(!m.miss_free());
        assert!((m.miss_rate() - 0.05).abs() < 1e-12);
        m.items_arrived = 0;
        assert_eq!(m.miss_rate(), 0.0);
    }
}
