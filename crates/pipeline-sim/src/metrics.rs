//! Measurements from one simulation run.

use des::obs::ObsReport;
use des::stats::OnlineStats;
use obs_trace::BlameReport;
use serde::{Deserialize, Serialize};
use simd_device::OccupancyStats;

/// Everything one simulation run measures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Stream inputs that arrived.
    pub items_arrived: u64,
    /// Stream inputs fully resolved (all derived outputs exited).
    pub items_completed: u64,
    /// Stream inputs still unresolved when the run hit its safety
    /// horizon (these also count as deadline misses).
    pub items_dropped: u64,
    /// Stream inputs whose completion exceeded `arrival + D` (including
    /// any still unresolved when the run hit its safety horizon).
    pub deadline_misses: u64,
    /// Stream inputs rejected at admission by the load-shedding
    /// mitigation (distinct from [`SimMetrics::items_dropped`]: shed
    /// items never enter the pipeline and are not deadline misses).
    pub items_shed: u64,
    /// Online wait re-solves performed by the escalation mitigation.
    pub resolves: u64,
    /// Measured active fraction under the paper's convention (empty
    /// firings charged).
    pub active_fraction: f64,
    /// Measured active fraction with empty firings treated as vacations.
    pub active_fraction_nonempty: f64,
    /// Per-input end-to-end latency statistics (cycles).
    pub latency: OnlineStats,
    /// Per-node lane occupancy.
    pub occupancy: Vec<OccupancyStats>,
    /// Per-node maximum input-queue depth observed (items).
    pub max_queue_depth: Vec<u64>,
    /// `max_queue_depth / v`: the empirical counterpart of the paper's
    /// backlog factors `b_i`.
    pub max_backlog_vectors: Vec<f64>,
    /// Simulated horizon (cycles) the run covered.
    pub horizon: f64,
    /// True if the run hit its safety horizon before completing all
    /// inputs (a sign of an unstable or badly mis-calibrated schedule).
    pub truncated: bool,
    /// Structured observability report (`None` unless the run was
    /// started through an `*_observed` entry point).
    pub obs: Option<ObsReport>,
    /// Deadline-miss forensics (`None` unless the run was started
    /// through a `*_traced` entry point).
    pub blame: Option<BlameReport>,
}

impl SimMetrics {
    /// True if no input missed its deadline.
    pub fn miss_free(&self) -> bool {
        self.deadline_misses == 0
    }

    /// Misses as a fraction of arrived inputs.
    pub fn miss_rate(&self) -> f64 {
        if self.items_arrived == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.items_arrived as f64
        }
    }

    /// Inputs actually admitted to the pipeline (arrived minus shed).
    pub fn items_admitted(&self) -> u64 {
        self.items_arrived.saturating_sub(self.items_shed)
    }

    /// Misses as a fraction of *admitted* inputs — the quality metric
    /// the shedding mitigation protects: items it lets in should still
    /// meet their deadlines.
    pub fn admitted_miss_rate(&self) -> f64 {
        let admitted = self.items_admitted();
        if admitted == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / admitted as f64
        }
    }

    /// Shed inputs as a fraction of arrived inputs.
    pub fn shed_rate(&self) -> f64 {
        if self.items_arrived == 0 {
            0.0
        } else {
            self.items_shed as f64 / self.items_arrived as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> SimMetrics {
        SimMetrics {
            items_arrived: 100,
            items_completed: 100,
            items_dropped: 0,
            deadline_misses: 0,
            items_shed: 0,
            resolves: 0,
            active_fraction: 0.5,
            active_fraction_nonempty: 0.4,
            latency: OnlineStats::new(),
            occupancy: vec![],
            max_queue_depth: vec![],
            max_backlog_vectors: vec![],
            horizon: 1000.0,
            truncated: false,
            obs: None,
            blame: None,
        }
    }

    #[test]
    fn miss_accessors() {
        let mut m = blank();
        assert!(m.miss_free());
        assert_eq!(m.miss_rate(), 0.0);
        m.deadline_misses = 5;
        assert!(!m.miss_free());
        assert!((m.miss_rate() - 0.05).abs() < 1e-12);
        m.items_arrived = 0;
        assert_eq!(m.miss_rate(), 0.0);
    }

    #[test]
    fn shed_accessors() {
        let mut m = blank();
        assert_eq!(m.items_admitted(), 100);
        assert_eq!(m.shed_rate(), 0.0);
        assert_eq!(m.admitted_miss_rate(), 0.0);
        m.items_shed = 20;
        m.deadline_misses = 8;
        assert_eq!(m.items_admitted(), 80);
        assert!((m.shed_rate() - 0.2).abs() < 1e-12);
        assert!((m.admitted_miss_rate() - 0.1).abs() < 1e-12);
        // Degenerate: everything shed.
        m.items_shed = 100;
        assert_eq!(m.items_admitted(), 0);
        assert_eq!(m.admitted_miss_rate(), 0.0);
    }

    #[test]
    fn serde_roundtrip_keeps_shed_counters() {
        let mut m = blank();
        m.items_shed = 7;
        m.resolves = 2;
        let json = serde_json::to_string(&m).unwrap();
        let back: SimMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.items_shed, 7);
        assert_eq!(back.resolves, 2);
    }
}
