//! Simulation of the monolithic batching strategy.
//!
//! Items accumulate into blocks of `M`; when a block is full (and the
//! pipeline is free) the whole block runs through all stages back to
//! back. Within a block, stage `i` needs `⌈n_i / v⌉` firings of `t_i`
//! cycles each, where `n_i` is the *actual* (sampled) number of items
//! reaching stage `i` — the simulation realizes the stochastic gains the
//! analysis only averages. Every item in a block completes when the
//! block finishes; the stream's final partial block is flushed at the
//! end.

use crate::config::SimConfig;
use crate::faults::{FaultState, FAULT_ARRIVAL_STREAM};
use crate::live::SimLive;
use crate::metrics::SimMetrics;
use dataflow_model::{GainModel, Perturbation, PipelineSpec, Topology};
use des::clock::SimTime;
use des::obs::{ObsConfig, ObsSink};
use des::rng::RngStream;
use des::stats::OnlineStats;
use obs_trace::{
    analyze, ForensicsConfig, ItemFate, ItemVisit, SpanSink, TraceConfig, TraceLog, Track,
};
use rtsdf_core::MonolithicSchedule;
use simd_device::OccupancyStats;

/// Simulate one run of the monolithic `schedule` on `pipeline`.
pub fn simulate_monolithic(
    pipeline: &PipelineSpec,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
) -> SimMetrics {
    simulate_monolithic_with(pipeline, schedule, deadline, config, None)
}

/// [`simulate_monolithic`] under fault injection: arrival jitter and
/// bursts, per-block service inflation / tail spikes / stalls, and
/// gain drift, all from dedicated RNG substreams so a zero-intensity
/// perturbation is bit-identical to the unperturbed run at the same
/// seed.
///
/// The monolithic strategy has no admission or wait-re-solve hooks, so
/// no mitigation policy applies — this is the unmanaged baseline the
/// robustness report compares the enforced-waits mitigations against.
///
/// # Panics
/// Panics if the perturbation fails [`Perturbation::validate`].
pub fn simulate_monolithic_perturbed(
    pipeline: &PipelineSpec,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    perturb: &Perturbation,
) -> SimMetrics {
    simulate_monolithic_topology_perturbed(
        &Topology::chain(pipeline),
        schedule,
        deadline,
        config,
        perturb,
    )
}

/// [`simulate_monolithic`] publishing live progress into a metrics
/// registry (see [`crate::live::SimLiveMetrics`]): items
/// arrived/completed/dropped, the head-stage queue-depth high-water
/// mark, and wall-clock throughput.
pub fn simulate_monolithic_live(
    pipeline: &PipelineSpec,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    live: &SimLive<'_>,
) -> SimMetrics {
    simulate_monolithic_topology_live(&Topology::chain(pipeline), schedule, deadline, config, live)
}

/// [`simulate_monolithic_perturbed`] publishing live progress into a
/// metrics registry.
///
/// # Panics
/// Panics if the perturbation fails [`Perturbation::validate`].
pub fn simulate_monolithic_perturbed_live(
    pipeline: &PipelineSpec,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    perturb: &Perturbation,
    live: &SimLive<'_>,
) -> SimMetrics {
    simulate_monolithic_topology_perturbed_live(
        &Topology::chain(pipeline),
        schedule,
        deadline,
        config,
        perturb,
        live,
    )
}

/// [`simulate_monolithic`] with the observability layer enabled;
/// summaries land in [`SimMetrics::obs`].
pub fn simulate_monolithic_observed(
    pipeline: &PipelineSpec,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    obs_config: ObsConfig,
) -> SimMetrics {
    simulate_monolithic_topology_observed(
        &Topology::chain(pipeline),
        schedule,
        deadline,
        config,
        obs_config,
    )
}

/// [`simulate_monolithic`] with causal span tracing enabled: per-stage
/// block spans, per-item visits (block-fill wait as enforced wait,
/// pipeline-busy wait as queue wait, block execution as service), and
/// per-input fates, plus deadline-miss forensics over the finished
/// trace. Returns the metrics (with [`SimMetrics::blame`] attached)
/// and the raw [`TraceLog`] for export.
pub fn simulate_monolithic_traced(
    pipeline: &PipelineSpec,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    trace: TraceConfig,
    forensics: &ForensicsConfig,
) -> (SimMetrics, TraceLog) {
    simulate_monolithic_topology_traced(
        &Topology::chain(pipeline),
        schedule,
        deadline,
        config,
        trace,
        forensics,
    )
}

/// Core simulator; `obs` hooks are branch-on-`Option` (see the enforced
/// simulator for the convention).
pub fn simulate_monolithic_with(
    pipeline: &PipelineSpec,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    obs: Option<&mut ObsSink>,
) -> SimMetrics {
    simulate_monolithic_topology_with(&Topology::chain(pipeline), schedule, deadline, config, obs)
}

/// Simulate one run of the monolithic `schedule` on an arbitrary DAG
/// `topology`.
///
/// Within a block, nodes execute in topological order; each node's item
/// count is the sum over its in-edges of the upstream counts after the
/// edge's sampled gain and routing-weight thinning. For a chain
/// topology this is bit-identical to [`simulate_monolithic`] on the
/// underlying [`PipelineSpec`].
pub fn simulate_monolithic_topology(
    topology: &Topology,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
) -> SimMetrics {
    simulate_monolithic_topology_with(topology, schedule, deadline, config, None)
}

/// [`simulate_monolithic_topology`] with an optional observability sink
/// (the topology-general core behind [`simulate_monolithic_with`]).
pub fn simulate_monolithic_topology_with(
    topology: &Topology,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    obs: Option<&mut ObsSink>,
) -> SimMetrics {
    simulate_monolithic_full(topology, schedule, deadline, config, obs, None, None, None)
}

/// [`simulate_monolithic_topology`] under fault injection (see
/// [`simulate_monolithic_perturbed`]).
///
/// # Panics
/// Panics if the perturbation fails [`Perturbation::validate`].
pub fn simulate_monolithic_topology_perturbed(
    topology: &Topology,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    perturb: &Perturbation,
) -> SimMetrics {
    perturb.validate().expect("invalid perturbation");
    simulate_monolithic_full(
        topology,
        schedule,
        deadline,
        config,
        None,
        None,
        Some(perturb),
        None,
    )
}

/// [`simulate_monolithic_topology`] publishing live progress into a
/// metrics registry.
pub fn simulate_monolithic_topology_live(
    topology: &Topology,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    live: &SimLive<'_>,
) -> SimMetrics {
    simulate_monolithic_full(
        topology,
        schedule,
        deadline,
        config,
        None,
        None,
        None,
        Some(live),
    )
}

/// [`simulate_monolithic_topology_perturbed`] publishing live progress
/// into a metrics registry.
///
/// # Panics
/// Panics if the perturbation fails [`Perturbation::validate`].
pub fn simulate_monolithic_topology_perturbed_live(
    topology: &Topology,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    perturb: &Perturbation,
    live: &SimLive<'_>,
) -> SimMetrics {
    perturb.validate().expect("invalid perturbation");
    simulate_monolithic_full(
        topology,
        schedule,
        deadline,
        config,
        None,
        None,
        Some(perturb),
        Some(live),
    )
}

/// [`simulate_monolithic_topology`] with the observability layer
/// enabled; summaries land in [`SimMetrics::obs`].
pub fn simulate_monolithic_topology_observed(
    topology: &Topology,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    obs_config: ObsConfig,
) -> SimMetrics {
    let mut sink = ObsSink::new(topology.len(), obs_config);
    let mut metrics =
        simulate_monolithic_topology_with(topology, schedule, deadline, config, Some(&mut sink));
    metrics.obs = Some(sink.report());
    metrics
}

/// [`simulate_monolithic_topology`] with causal span tracing and
/// deadline-miss forensics enabled (see [`simulate_monolithic_traced`]).
pub fn simulate_monolithic_topology_traced(
    topology: &Topology,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    trace: TraceConfig,
    forensics: &ForensicsConfig,
) -> (SimMetrics, TraceLog) {
    let mut sink = SpanSink::new(trace);
    let mut metrics = simulate_monolithic_full(
        topology,
        schedule,
        deadline,
        config,
        None,
        Some(&mut sink),
        None,
        None,
    );
    let log = sink.finish();
    metrics.blame = Some(analyze(&log, deadline, forensics));
    (metrics, log)
}

/// Full-generality core: aggregate observability (`obs`), causal span
/// tracing (`spans`), fault injection (`stress_spec`), and live metrics
/// (`live`) are independent branch-on-`Option` layers.
#[allow(clippy::too_many_arguments)]
fn simulate_monolithic_full(
    topology: &Topology,
    schedule: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    mut obs: Option<&mut ObsSink>,
    mut spans: Option<&mut SpanSink>,
    stress_spec: Option<&Perturbation>,
    live: Option<&SimLive<'_>>,
) -> SimMetrics {
    let n = topology.len();
    if let Some(sink) = obs.as_deref_mut() {
        assert_eq!(sink.num_stages(), n, "obs sink/topology length mismatch");
    }
    let v = topology.vector_width();
    let m = schedule.block_size.max(1) as usize;
    let service: Vec<f64> = topology.service_times();
    let src = topology.source();

    let master = RngStream::new(config.seed);
    let mut arrival_rng = master.substream(0);
    // One gain substream per edge (chain edge `i` keeps the per-stage
    // label `1 + i` — see the enforced simulator).
    let mut gain_rngs: Vec<RngStream> = (0..topology.edges().len())
        .map(|e| master.substream(1 + e as u64))
        .collect();

    let mut arrivals = config
        .arrivals
        .generate(config.stream_length, &mut arrival_rng);
    // Fault-injection layer: arrival faults perturb the precomputed
    // times, gain drift swaps in drifted models, and service faults are
    // drawn per block-stage — all from dedicated substreams, so
    // intensity 0 reproduces the unperturbed run bit for bit.
    let mut faults: Option<FaultState> = stress_spec.map(|perturb| {
        let mut fault_rng = master.substream(FAULT_ARRIVAL_STREAM);
        perturb.perturb_arrivals(
            &mut arrivals,
            config.arrivals.mean_interarrival(),
            &mut fault_rng,
        );
        FaultState::new(perturb, &master, n)
    });
    let drifted_gains: Option<Vec<GainModel>> = stress_spec.map(|perturb| {
        topology
            .edges()
            .iter()
            .map(|e| perturb.drift_gain(&e.gain))
            .collect()
    });
    let last_arrival = arrivals.last().copied().unwrap_or(0.0);
    let safety_horizon = last_arrival + config.drain_factor * deadline;

    let mut occupancy: Vec<OccupancyStats> = (0..n).map(|_| OccupancyStats::new()).collect();
    let mut latency = OnlineStats::new();
    let mut misses = 0u64;
    let mut completed = 0u64;
    let mut busy_total = 0.0;
    let mut pipeline_free_at = 0.0_f64;
    let mut horizon = 0.0_f64;
    let mut truncated = false;
    let mut max_waiting = 0u64;
    let mut processed_before = 0usize;
    // Reused batch buffers: one sojourn/latency sample per block item.
    let mut soj_buf: Vec<f64> = Vec::with_capacity(m);
    let mut lat_buf: Vec<f64> = Vec::with_capacity(m);
    // Per-node item counts within the current block, reset per block.
    let mut counts: Vec<u64> = vec![0; n];

    for block in arrivals.chunks(m) {
        let ready = *block.last().expect("chunks are nonempty");
        let start = ready.max(pipeline_free_at);
        if start > safety_horizon {
            truncated = true;
            break;
        }
        // Queue depth just before this block starts: arrived but not yet
        // processed items (this block's own plus any backlog behind a
        // busy pipeline).
        let arrived = arrivals.partition_point(|&t| t <= start);
        max_waiting = max_waiting.max((arrived - processed_before) as u64);
        if let Some(l) = live {
            // Block granularity: the whole block "arrives" when it is
            // ready to run; only the head stage has a queue.
            if l.on_arrivals(block.len() as u64) {
                l.tick(&[max_waiting]);
            }
        }
        if let Some(sink) = obs.as_deref_mut() {
            sink.on_event();
            sink.on_enqueue(src, block.len() as u64, arrived - processed_before);
            // Sojourn at the source node: wait from arrival to block start.
            soj_buf.clear();
            soj_buf.extend(block.iter().map(|&arr| start - arr));
            sink.on_sojourn_batch(src, &soj_buf);
            if sink.tracing() {
                sink.trace(
                    SimTime::from_f64_rounded(start),
                    src as u32,
                    format!("block of {} starts", block.len()),
                );
            }
        }

        // Push the block through all nodes in topological order, sampling
        // actual per-edge gains. A node nothing reached does not fire
        // (and draws nothing) — for a chain this reproduces the old
        // early-exit on a zeroed stage exactly.
        counts.iter_mut().for_each(|c| *c = 0);
        counts[src] = block.len() as u64;
        let mut busy = 0.0;
        for &i in topology.topo_order() {
            let count = counts[i];
            if count == 0 {
                continue;
            }
            let firings = count.div_ceil(v as u64);
            let stage_busy = match faults.as_mut() {
                Some(f) => f.block_busy(i, firings, service[i]),
                None => firings as f64 * service[i],
            };
            if let Some(sink) = spans.as_deref_mut() {
                sink.span_detail(
                    Track::stage(i),
                    "block",
                    "firing",
                    format!("items={count} firings={firings}"),
                    start + busy,
                    start + busy + stage_busy,
                );
            }
            busy += stage_busy;
            let full = count / v as u64;
            for _ in 0..full {
                occupancy[i].record(v, v);
            }
            let rem = (count % v as u64) as u32;
            if rem > 0 {
                occupancy[i].record(rem, v);
            }
            if let Some(sink) = obs.as_deref_mut() {
                for _ in 0..full {
                    sink.on_fire(i, v as usize, v as usize);
                }
                if rem > 0 {
                    sink.on_fire(i, rem as usize, v as usize);
                }
            }
            for &e in topology.out_edges(i) {
                // One edge lookup per stage, not one per item.
                let gain = match &drifted_gains {
                    Some(gains) => &gains[e],
                    None => &topology.edge(e).gain,
                };
                // Draw-identical to the per-item loop (see
                // `GainModel::sample_sum`), but deterministic models pay
                // zero RNG draws and the distribution parameters are
                // hoisted out of the loop.
                let out = gain.sample_sum(&mut gain_rngs[e], count);
                let edge = topology.edge(e);
                // Routing weight below 1: Bernoulli-thin each output
                // from the same edge substream (never taken on chains).
                let kept = if edge.weight < 1.0 {
                    let mut kept = 0u64;
                    for _ in 0..out {
                        if gain_rngs[e].next_f64() < edge.weight {
                            kept += 1;
                        }
                    }
                    kept
                } else {
                    out
                };
                counts[edge.dst] += kept;
            }
        }
        let finish = start + busy;
        if let Some(sink) = spans.as_deref_mut() {
            // One visit per item at the head stage: block-fill wait is
            // the structural (enforced) delay, waiting for a busy
            // pipeline is queueing, and the block's execution is
            // service. The three partition `finish − arrival` exactly.
            for (j, &arr) in block.iter().enumerate() {
                let origin = (processed_before + j) as u64;
                sink.visit(ItemVisit {
                    origin,
                    stage: src as u32,
                    enqueued: arr,
                    eligible: ready,
                    consumed: start,
                    done: finish,
                });
                sink.fate(ItemFate {
                    origin,
                    arrival: arr,
                    completion: Some(finish),
                });
            }
        }
        busy_total += busy;
        pipeline_free_at = finish;
        horizon = horizon.max(finish);
        processed_before += block.len();

        // Latency accounting for the whole block in one pass; the
        // Welford fold visits samples in the same order as the per-item
        // loop, so moments stay bit-identical.
        lat_buf.clear();
        lat_buf.extend(block.iter().map(|&arr| finish - arr));
        latency.push_slice(&lat_buf);
        completed += block.len() as u64;
        misses += lat_buf
            .iter()
            .map(|&lat| u64::from(lat > deadline))
            .sum::<u64>();
        if let Some(sink) = obs.as_deref_mut() {
            sink.on_completions(block.len() as u64);
        }
        if let Some(l) = live {
            l.on_completions(block.len() as u64);
        }
    }
    let mut dropped = 0u64;
    if truncated {
        dropped = (arrivals.len() - processed_before) as u64;
        misses += dropped;
        horizon = safety_horizon;
        if let Some(sink) = obs {
            for _ in 0..dropped {
                sink.on_drop();
            }
        }
        if let Some(sink) = spans {
            for (j, &arr) in arrivals[processed_before..].iter().enumerate() {
                sink.fate(ItemFate {
                    origin: (processed_before + j) as u64,
                    arrival: arr,
                    completion: None,
                });
            }
        }
    }
    // Live metrics run-end flush: drops and the closing tick.
    if let Some(l) = live {
        l.on_drops(dropped);
        l.tick(&[max_waiting]);
    }
    let horizon = horizon.max(1.0);

    // The monolithic application is a single schedulable unit: its
    // active fraction is total busy time over the horizon.
    let active_fraction = busy_total / horizon;
    SimMetrics {
        items_arrived: arrivals.len() as u64,
        items_completed: completed,
        items_dropped: dropped,
        deadline_misses: misses,
        items_shed: 0,
        resolves: 0,
        active_fraction,
        // No empty firings exist in this strategy: a stage with zero
        // items simply does not fire.
        active_fraction_nonempty: active_fraction,
        latency,
        max_queue_depth: {
            let mut d = vec![0u64; n];
            d[src] = max_waiting;
            d
        },
        max_backlog_vectors: {
            let mut b = vec![0.0; n];
            b[src] = max_waiting as f64 / v as f64;
            b
        },
        occupancy,
        horizon,
        truncated,
        obs: None,
        blame: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{GainModel, PipelineSpecBuilder, RtParams};
    use rtsdf_core::MonolithicProblem;

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    fn schedule(p: &PipelineSpec, tau0: f64, d: f64) -> MonolithicSchedule {
        MonolithicProblem::new(p, RtParams::new(tau0, d).unwrap(), 1.0, 1.0)
            .solve()
            .unwrap()
    }

    #[test]
    fn observed_run_matches_plain_and_attaches_report() {
        let p = blast();
        let sched = schedule(&p, 50.0, 1e5);
        let cfg = SimConfig::quick(50.0, 3, 2_000);
        let plain = simulate_monolithic(&p, &sched, 1e5, &cfg);
        let observed = simulate_monolithic_observed(&p, &sched, 1e5, &cfg, ObsConfig::default());
        assert_eq!(plain.items_completed, observed.items_completed);
        assert_eq!(plain.deadline_misses, observed.deadline_misses);
        assert_eq!(plain.active_fraction, observed.active_fraction);
        let report = observed.obs.expect("report attached");
        assert_eq!(report.stages.len(), p.len());
        assert_eq!(report.counters.completions, observed.items_completed);
        assert_eq!(report.counters.items_enqueued, observed.items_arrived);
        assert!(report.counters.firings > 0);
        // No empty firings exist in this strategy.
        assert_eq!(report.counters.empty_firings, 0);
        assert_eq!(report.stages[0].sojourn.count, observed.items_completed);
    }

    #[test]
    fn traced_run_matches_plain_and_explains_latency() {
        let p = blast();
        let sched = schedule(&p, 50.0, 1e5);
        let cfg = SimConfig::quick(50.0, 3, 2_000);
        let plain = simulate_monolithic(&p, &sched, 1e5, &cfg);
        let (traced, log) = simulate_monolithic_traced(
            &p,
            &sched,
            1e5,
            &cfg,
            TraceConfig::default(),
            &ForensicsConfig::default(),
        );
        assert_eq!(plain.items_completed, traced.items_completed);
        assert_eq!(plain.deadline_misses, traced.deadline_misses);
        assert_eq!(plain.active_fraction, traced.active_fraction);
        assert_eq!(log.fates.len() as u64, traced.items_arrived);
        // Exactly one head-stage visit per completed item, and its
        // sojourn equals the item's end-to-end latency.
        assert_eq!(log.visits.len() as u64, traced.items_completed);
        for v in &log.visits {
            let fate = &log.fates[v.origin as usize];
            assert_eq!(fate.origin, v.origin);
            assert_eq!(v.enqueued, fate.arrival);
            assert_eq!(Some(v.done), fate.completion);
        }
        assert!(traced.blame.is_some());
    }

    #[test]
    fn traced_unstable_run_blames_queueing() {
        let p = blast();
        // Same setup as `unstable_block_size_truncates`: backlog grows,
        // items miss, and the forensics must attribute the overrun.
        let sched = MonolithicSchedule {
            block_size: 8,
            block_time: 0.0,
            active_fraction: 0.0,
            latency_bound: 0.0,
            b: 1.0,
            s: 1.0,
            telemetry: None,
        };
        let mut cfg = SimConfig::quick(1.0, 1, 20_000);
        cfg.drain_factor = 3.0;
        let (m, log) = simulate_monolithic_traced(
            &p,
            &sched,
            1e4,
            &cfg,
            TraceConfig::default(),
            &ForensicsConfig::default(),
        );
        assert!(m.truncated);
        let blame = m.blame.expect("blame attached");
        assert_eq!(blame.dropped_items, m.items_dropped);
        assert!(blame.analyzed_items > 0);
        assert!((blame.accounted_fraction() - 1.0).abs() < 1e-9);
        // A backlogged pipeline: queueing (waiting for the pipeline to
        // free up) must dominate the blame over block-fill waiting.
        let queue: f64 = blame.stages.iter().map(|s| s.queue_wait).sum();
        let enforced: f64 = blame.stages.iter().map(|s| s.enforced_wait).sum();
        assert!(
            queue > enforced,
            "queueing {queue} should dominate block-fill {enforced}"
        );
        assert_eq!(
            log.fates.iter().filter(|f| f.completion.is_none()).count() as u64,
            m.items_dropped
        );
    }

    #[test]
    fn paper_observation_no_misses_with_b1_s1() {
        // §6.2: "For the monolithic strategy, we observed no deadline
        // misses in simulation even with b = 1, S = 1."
        let p = blast();
        for seed in 0..5 {
            let sched = schedule(&p, 50.0, 1e5);
            let cfg = SimConfig::quick(50.0, seed, 10_000);
            let m = simulate_monolithic(&p, &sched, 1e5, &cfg);
            assert!(!m.truncated);
            assert_eq!(m.items_completed, 10_000);
            assert!(
                m.miss_free(),
                "seed {seed}: {} misses at M={}",
                m.deadline_misses,
                sched.block_size
            );
        }
    }

    #[test]
    fn measured_active_fraction_matches_prediction() {
        let p = blast();
        let sched = schedule(&p, 50.0, 1e5);
        let cfg = SimConfig::quick(50.0, 11, 20_000);
        let m = simulate_monolithic(&p, &sched, 1e5, &cfg);
        let rel = (m.active_fraction - sched.active_fraction).abs() / sched.active_fraction;
        assert!(
            rel < 0.08,
            "measured {} vs predicted {} (rel {rel}, M={})",
            m.active_fraction,
            sched.active_fraction,
            sched.block_size
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = blast();
        let sched = schedule(&p, 50.0, 1e5);
        let cfg = SimConfig::quick(50.0, 4, 5_000);
        let a = simulate_monolithic(&p, &sched, 1e5, &cfg);
        let b = simulate_monolithic(&p, &sched, 1e5, &cfg);
        assert_eq!(a.active_fraction, b.active_fraction);
        assert_eq!(a.deadline_misses, b.deadline_misses);
    }

    #[test]
    fn partial_final_block_is_flushed() {
        let p = blast();
        let sched = MonolithicSchedule {
            block_size: 64,
            block_time: 0.0,
            active_fraction: 0.0,
            latency_bound: 0.0,
            b: 1.0,
            s: 1.0,
            telemetry: None,
        };
        let cfg = SimConfig::quick(50.0, 1, 130); // 2 full blocks + 2 items
        let m = simulate_monolithic(&p, &sched, 1e9, &cfg);
        assert_eq!(m.items_completed, 130);
    }

    #[test]
    fn block_smaller_than_stream() {
        let p = blast();
        let sched = MonolithicSchedule {
            block_size: 1_000_000,
            block_time: 0.0,
            active_fraction: 0.0,
            latency_bound: 0.0,
            b: 1.0,
            s: 1.0,
            telemetry: None,
        };
        let cfg = SimConfig::quick(50.0, 1, 100);
        let m = simulate_monolithic(&p, &sched, 1e9, &cfg);
        assert_eq!(m.items_completed, 100);
        assert!(m.miss_free());
    }

    #[test]
    fn unstable_block_size_truncates() {
        let p = blast();
        // M = 8 at τ0 = 1: each block takes ≥ 4397 cycles but accumulates
        // in 8 → backlog grows without bound.
        let sched = MonolithicSchedule {
            block_size: 8,
            block_time: 0.0,
            active_fraction: 0.0,
            latency_bound: 0.0,
            b: 1.0,
            s: 1.0,
            telemetry: None,
        };
        let mut cfg = SimConfig::quick(1.0, 1, 20_000);
        cfg.drain_factor = 3.0;
        let m = simulate_monolithic(&p, &sched, 1e4, &cfg);
        assert!(m.truncated);
        assert!(m.deadline_misses > 0);
    }

    #[test]
    fn zero_length_stream_is_a_clean_noop() {
        let p = blast();
        let sched = schedule(&p, 50.0, 1e5);
        let cfg = SimConfig::quick(50.0, 1, 0);
        let m = simulate_monolithic(&p, &sched, 1e5, &cfg);
        assert_eq!(m.items_arrived, 0);
        assert_eq!(m.items_completed, 0);
        assert!(m.miss_free());
    }

    #[test]
    fn occupancy_full_for_aligned_blocks() {
        let p = PipelineSpecBuilder::new(16)
            .stage("only", 10.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap();
        let sched = MonolithicSchedule {
            block_size: 32,
            block_time: 20.0,
            active_fraction: 0.0,
            latency_bound: 0.0,
            b: 1.0,
            s: 1.0,
            telemetry: None,
        };
        let cfg = SimConfig::quick(100.0, 1, 64);
        let m = simulate_monolithic(&p, &sched, 1e9, &cfg);
        // 64 items in 2 blocks of 32 = 4 firings, all full.
        assert_eq!(m.occupancy[0].firings(), 4);
        assert_eq!(m.occupancy[0].full_fraction(), 1.0);
    }
}
