//! Frozen scalar reference simulators — the bit-identity oracle.
//!
//! These are the pre-SoA, one-item-at-a-time implementations of both
//! simulators, kept verbatim (minus the span-tracing layer) as the
//! ground truth the vectorized hot paths in [`crate::enforced`] and
//! [`crate::monolithic`] are property-tested against: same pipeline,
//! schedule, seed, and perturbation must produce bit-identical
//! [`SimMetrics`] and [`des::obs::ObsReport`].
//!
//! **Do not optimize this module.** Its entire value is that it stays
//! the slow, obviously-correct scalar semantics: events popped one at a
//! time from a fully scheduled calendar, per-item `VecDeque` queues,
//! one gain draw per consumed item, one sojourn sample per hook call.

use crate::config::{FiringDiscipline, SimConfig};
use crate::faults::{FaultState, MitigationPolicy, FAULT_ARRIVAL_STREAM};
use crate::item::{Item, LineageTracker};
use crate::metrics::SimMetrics;
use dataflow_model::{GainModel, Perturbation, PipelineSpec, RtParams};
use des::calendar::Calendar;
use des::clock::SimTime;
use des::obs::ObsSink;
use des::rng::RngStream;
use des::stats::OnlineStats;
use simd_device::{ActiveTimeLedger, OccupancyStats};
use std::collections::VecDeque;

/// Event classes, in intra-timestamp processing order.
#[derive(Debug, Clone)]
enum Ev {
    Arrival { origin: u64 },
    Deliver { node: usize, items: Vec<Item> },
    Fire { node: usize },
}

impl Ev {
    fn class(&self) -> u8 {
        match self {
            Ev::Arrival { .. } => 0,
            Ev::Deliver { .. } => 1,
            Ev::Fire { .. } => 2,
        }
    }
}

fn sort_batch_by_class(batch: &mut [Ev]) {
    for i in 1..batch.len() {
        let mut j = i;
        while j > 0 && batch[j - 1].class() > batch[j].class() {
            batch.swap(j - 1, j);
            j -= 1;
        }
    }
}

struct StressState {
    faults: FaultState,
    policy: MitigationPolicy,
    params: Option<RtParams>,
    design_b: Vec<f64>,
    periods_f: Vec<f64>,
    shed: Vec<bool>,
    items_shed: u64,
    resolves: u64,
    escalation_dead: bool,
}

/// Scalar reference of the enforced-waits simulator. Semantically (and
/// bit-for-bit) what `simulate_enforced_with` / `_perturbed` computed
/// before the SoA restructuring.
pub fn simulate_enforced_reference(
    pipeline: &PipelineSpec,
    schedule: &rtsdf_core::WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    mut obs: Option<&mut ObsSink>,
    stress_spec: Option<(&Perturbation, &MitigationPolicy)>,
) -> SimMetrics {
    let n = pipeline.len();
    if let Some(sink) = obs.as_deref_mut() {
        assert_eq!(sink.num_stages(), n, "obs sink/pipeline length mismatch");
    }
    assert_eq!(
        schedule.periods.len(),
        n,
        "schedule/pipeline length mismatch"
    );
    let v = pipeline.vector_width();
    let service: Vec<u64> = pipeline
        .service_times()
        .iter()
        .map(|&t| (t.round() as u64).max(1))
        .collect();
    let mut periods: Vec<u64> = schedule
        .periods
        .iter()
        .zip(&service)
        .map(|(&x, &t)| (x.round() as u64).max(t))
        .collect();

    let master = RngStream::new(config.seed);
    let mut arrival_rng = master.substream(0);
    let mut gain_rngs: Vec<RngStream> = (0..n).map(|i| master.substream(1 + i as u64)).collect();

    let mut arrivals_f = config
        .arrivals
        .generate(config.stream_length, &mut arrival_rng);
    let mut stress: Option<StressState> = stress_spec.map(|(perturb, policy)| {
        let mut fault_rng = master.substream(FAULT_ARRIVAL_STREAM);
        perturb.perturb_arrivals(
            &mut arrivals_f,
            config.arrivals.mean_interarrival(),
            &mut fault_rng,
        );
        StressState {
            faults: FaultState::new(perturb, &master, n),
            policy: policy.clone(),
            params: RtParams::new(config.arrivals.mean_interarrival(), deadline).ok(),
            design_b: schedule.backlog_factors.clone(),
            periods_f: schedule.periods.clone(),
            shed: vec![false; config.stream_length],
            items_shed: 0,
            resolves: 0,
            escalation_dead: false,
        }
    });
    let arrivals: Vec<SimTime> = {
        let mut last = 0u64;
        arrivals_f
            .iter()
            .map(|&t| {
                let c = (t.round() as u64).max(last);
                last = c;
                SimTime::from_cycles(c)
            })
            .collect()
    };
    let last_arrival = arrivals.last().copied().unwrap_or(SimTime::ZERO);
    let safety_horizon =
        last_arrival.saturating_add(SimTime::from_f64_rounded(config.drain_factor * deadline));

    let mut cal: Calendar<Ev> = Calendar::with_capacity(config.stream_length * 2 + 64);
    for (origin, &t) in arrivals.iter().enumerate() {
        cal.schedule(
            t,
            Ev::Arrival {
                origin: origin as u64,
            },
        );
    }
    for node in 0..n {
        cal.schedule(SimTime::ZERO, Ev::Fire { node });
    }

    let drifted_gains: Option<Vec<GainModel>> = stress_spec.map(|(perturb, _)| {
        (0..n)
            .map(|i| perturb.drift_gain(&pipeline.node(i).gain))
            .collect()
    });
    let gain_of: Vec<&GainModel> = match &drifted_gains {
        Some(gains) => gains.iter().collect(),
        None => (0..n).map(|i| &pipeline.node(i).gain).collect(),
    };

    let mut queues: Vec<VecDeque<Item>> = (0..n)
        .map(|_| VecDeque::with_capacity(v as usize * 2))
        .collect();
    let mut vec_pool: Vec<Vec<Item>> = Vec::new();
    let mut enq_times: Vec<VecDeque<SimTime>> = if obs.is_some() {
        (0..n).map(|_| VecDeque::new()).collect()
    } else {
        Vec::new()
    };
    let mut max_depth = vec![0u64; n];
    let mut dormant = vec![false; n];
    let mut lineage = LineageTracker::new(config.stream_length);
    let mut ledger = ActiveTimeLedger::new(n);
    let mut occupancy: Vec<OccupancyStats> = (0..n).map(|_| OccupancyStats::new()).collect();
    let mut last_completion = SimTime::ZERO;
    let mut truncated = false;

    let mut batch: Vec<Ev> = Vec::new();
    'outer: while let Some(first) = cal.pop() {
        let now = first.time;
        if now > safety_horizon {
            truncated = true;
            break 'outer;
        }
        batch.clear();
        batch.push(first.payload);
        while cal.peek_time() == Some(now) {
            batch.push(cal.pop().expect("peeked").payload);
        }
        sort_batch_by_class(&mut batch);

        for ev in batch.drain(..) {
            if let Some(sink) = obs.as_deref_mut() {
                sink.on_event();
            }
            match ev {
                Ev::Arrival { origin } => {
                    if let Some(st) = stress.as_mut() {
                        if st.policy.escalate
                            && !st.escalation_dead
                            && st.resolves < u64::from(st.policy.max_resolves)
                        {
                            let headroom = st.policy.escalate_headroom;
                            let overload = max_depth
                                .iter()
                                .zip(&st.design_b)
                                .any(|(&d, &b)| (d as f64 / v as f64).ceil() > b + headroom);
                            if overload {
                                if let Some(params) = st.params {
                                    let observed: Vec<f64> = max_depth
                                        .iter()
                                        .map(|&d| (d as f64 / v as f64).ceil())
                                        .collect();
                                    match rtsdf_core::policy::escalate_schedule(
                                        pipeline,
                                        params,
                                        &st.periods_f,
                                        &st.design_b,
                                        &observed,
                                    ) {
                                        Ok(new_sched) => {
                                            st.resolves += 1;
                                            for (p, (&x, &t)) in periods
                                                .iter_mut()
                                                .zip(new_sched.periods.iter().zip(&service))
                                            {
                                                *p = (x.round() as u64).max(t);
                                            }
                                            st.periods_f = new_sched.periods;
                                            st.design_b = new_sched.backlog_factors;
                                        }
                                        Err(_) => st.escalation_dead = true,
                                    }
                                } else {
                                    st.escalation_dead = true;
                                }
                            }
                        }
                        if st.policy.shed {
                            let mut overload = false;
                            let mut predicted = 0.0;
                            for i in 0..n {
                                let q = queues[i].len() as u64 + u64::from(i == 0);
                                let obs = (q as f64 / v as f64).ceil();
                                if obs > st.design_b[i] {
                                    overload = true;
                                }
                                predicted += periods[i] as f64 * obs.max(st.design_b[i]);
                            }
                            if overload && predicted > deadline {
                                st.items_shed += 1;
                                st.shed[origin as usize] = true;
                                lineage.arrive(origin);
                                lineage.consume(origin, 0, now);
                                continue;
                            }
                        }
                    }
                    lineage.arrive(origin);
                    queues[0].push_back(Item {
                        origin,
                        arrival: now,
                    });
                    max_depth[0] = max_depth[0].max(queues[0].len() as u64);
                    if let Some(sink) = obs.as_deref_mut() {
                        sink.on_enqueue(0, 1, queues[0].len());
                        enq_times[0].push_back(now);
                    }
                    if dormant[0] {
                        dormant[0] = false;
                        cal.schedule(now, Ev::Fire { node: 0 });
                    }
                }
                Ev::Deliver { node, mut items } => {
                    let delivered = items.len() as u64;
                    queues[node].extend(items.drain(..));
                    vec_pool.push(items);
                    max_depth[node] = max_depth[node].max(queues[node].len() as u64);
                    if let Some(sink) = obs.as_deref_mut() {
                        sink.on_enqueue(node, delivered, queues[node].len());
                        for _ in 0..delivered {
                            enq_times[node].push_back(now);
                        }
                    }
                    if dormant[node] {
                        dormant[node] = false;
                        cal.schedule(now, Ev::Fire { node });
                    }
                }
                Ev::Fire { node } => {
                    if config.discipline == FiringDiscipline::Vacation && queues[node].is_empty() {
                        dormant[node] = true;
                        continue;
                    }
                    let take = (v as usize).min(queues[node].len());
                    let svc = match stress.as_mut() {
                        Some(st) => st.faults.service_cycles(node, service[node]),
                        None => service[node],
                    };
                    occupancy[node].record(take as u32, v);
                    ledger.record_firing(node, svc as f64, take as u32);
                    if let Some(sink) = obs.as_deref_mut() {
                        sink.on_fire(node, take, v as usize);
                        for enq in enq_times[node].drain(..take) {
                            sink.on_sojourn(node, now.since(enq).as_f64());
                        }
                        if sink.tracing() {
                            sink.trace(now, node as u32, format!("fire n{node} take={take}"));
                        }
                    }
                    let completion = now + SimTime::from_cycles(svc);
                    let is_last = node + 1 == n;
                    if take > 0 {
                        let mut outs: Vec<Item> = vec_pool.pop().unwrap_or_default();
                        for _ in 0..take {
                            let item = queues[node].pop_front().expect("take <= queue len");
                            let k = if is_last {
                                0
                            } else {
                                gain_of[node].sample(&mut gain_rngs[node])
                            };
                            if lineage.consume(item.origin, k, completion) {
                                last_completion = last_completion.max(completion);
                                if let Some(sink) = obs.as_deref_mut() {
                                    sink.on_completion();
                                }
                            }
                            for _ in 0..k {
                                outs.push(Item {
                                    origin: item.origin,
                                    arrival: item.arrival,
                                });
                            }
                        }
                        if !outs.is_empty() {
                            cal.schedule(
                                completion,
                                Ev::Deliver {
                                    node: node + 1,
                                    items: outs,
                                },
                            );
                        } else {
                            vec_pool.push(outs);
                        }
                    }
                    if !lineage.all_complete() {
                        let refire = (now + SimTime::from_cycles(periods[node])).max(completion);
                        cal.schedule(refire, Ev::Fire { node });
                    }
                }
            }
        }
        if lineage.all_complete() {
            break;
        }
    }

    let mut misses = 0u64;
    let mut dropped = 0u64;
    let mut latency = OnlineStats::new();
    for (origin, completion) in lineage.completions() {
        if let Some(st) = stress.as_ref() {
            if st.shed[origin as usize] {
                continue;
            }
        }
        match completion {
            Some(c) => {
                let lat = c.since(arrivals[origin as usize]).as_f64();
                latency.push(lat);
                if lat > deadline {
                    misses += 1;
                }
            }
            None => {
                misses += 1;
                dropped += 1;
                if let Some(sink) = obs.as_deref_mut() {
                    sink.on_drop();
                }
            }
        }
    }

    let horizon = if lineage.all_complete() {
        last_completion.as_f64()
    } else {
        safety_horizon.as_f64()
    }
    .max(1.0);
    ledger.set_horizon(horizon);

    let active_fraction = ledger.active_fraction();
    let active_fraction_nonempty = ledger.active_fraction_nonempty();
    let items_shed = stress.as_ref().map_or(0, |st| st.items_shed);
    SimMetrics {
        items_arrived: arrivals.len() as u64,
        items_completed: lineage.completed() - items_shed,
        items_dropped: dropped,
        deadline_misses: misses,
        items_shed,
        resolves: stress.as_ref().map_or(0, |st| st.resolves),
        active_fraction: if config.charge_empty_firings {
            active_fraction
        } else {
            active_fraction_nonempty
        },
        active_fraction_nonempty,
        latency,
        max_backlog_vectors: max_depth.iter().map(|&d| d as f64 / v as f64).collect(),
        max_queue_depth: max_depth,
        occupancy,
        horizon,
        truncated,
        obs: None,
        blame: None,
    }
}

/// Scalar reference of the monolithic simulator: one gain draw and one
/// sojourn/latency sample per item.
pub fn simulate_monolithic_reference(
    pipeline: &PipelineSpec,
    schedule: &rtsdf_core::MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    mut obs: Option<&mut ObsSink>,
    stress_spec: Option<&Perturbation>,
) -> SimMetrics {
    let n = pipeline.len();
    if let Some(sink) = obs.as_deref_mut() {
        assert_eq!(sink.num_stages(), n, "obs sink/pipeline length mismatch");
    }
    let v = pipeline.vector_width();
    let m = schedule.block_size.max(1) as usize;
    let service: Vec<f64> = pipeline.service_times();

    let master = RngStream::new(config.seed);
    let mut arrival_rng = master.substream(0);
    let mut gain_rngs: Vec<RngStream> = (0..n).map(|i| master.substream(1 + i as u64)).collect();

    let mut arrivals = config
        .arrivals
        .generate(config.stream_length, &mut arrival_rng);
    let mut faults: Option<FaultState> = stress_spec.map(|perturb| {
        let mut fault_rng = master.substream(FAULT_ARRIVAL_STREAM);
        perturb.perturb_arrivals(
            &mut arrivals,
            config.arrivals.mean_interarrival(),
            &mut fault_rng,
        );
        FaultState::new(perturb, &master, n)
    });
    let drifted_gains: Option<Vec<GainModel>> = stress_spec.map(|perturb| {
        (0..n)
            .map(|i| perturb.drift_gain(&pipeline.node(i).gain))
            .collect()
    });
    let last_arrival = arrivals.last().copied().unwrap_or(0.0);
    let safety_horizon = last_arrival + config.drain_factor * deadline;

    let mut occupancy: Vec<OccupancyStats> = (0..n).map(|_| OccupancyStats::new()).collect();
    let mut latency = OnlineStats::new();
    let mut misses = 0u64;
    let mut completed = 0u64;
    let mut busy_total = 0.0;
    let mut pipeline_free_at = 0.0_f64;
    let mut horizon = 0.0_f64;
    let mut truncated = false;
    let mut max_waiting = 0u64;
    let mut processed_before = 0usize;

    for block in arrivals.chunks(m) {
        let ready = *block.last().expect("chunks are nonempty");
        let start = ready.max(pipeline_free_at);
        if start > safety_horizon {
            truncated = true;
            break;
        }
        let arrived = arrivals.partition_point(|&t| t <= start);
        max_waiting = max_waiting.max((arrived - processed_before) as u64);
        if let Some(sink) = obs.as_deref_mut() {
            sink.on_event();
            sink.on_enqueue(0, block.len() as u64, arrived - processed_before);
            for &arr in block {
                sink.on_sojourn(0, start - arr);
            }
            if sink.tracing() {
                sink.trace(
                    SimTime::from_f64_rounded(start),
                    0,
                    format!("block of {} starts", block.len()),
                );
            }
        }

        let mut count = block.len() as u64;
        let mut busy = 0.0;
        for i in 0..n {
            if count == 0 {
                break;
            }
            let firings = count.div_ceil(v as u64);
            let stage_busy = match faults.as_mut() {
                Some(f) => f.block_busy(i, firings, service[i]),
                None => firings as f64 * service[i],
            };
            busy += stage_busy;
            let full = count / v as u64;
            for _ in 0..full {
                occupancy[i].record(v, v);
            }
            let rem = (count % v as u64) as u32;
            if rem > 0 {
                occupancy[i].record(rem, v);
            }
            if let Some(sink) = obs.as_deref_mut() {
                for _ in 0..full {
                    sink.on_fire(i, v as usize, v as usize);
                }
                if rem > 0 {
                    sink.on_fire(i, rem as usize, v as usize);
                }
            }
            if i + 1 < n {
                let gain = match &drifted_gains {
                    Some(gains) => &gains[i],
                    None => &pipeline.node(i).gain,
                };
                let rng = &mut gain_rngs[i];
                let mut next = 0u64;
                for _ in 0..count {
                    next += gain.sample(rng) as u64;
                }
                count = next;
            }
        }
        let finish = start + busy;
        busy_total += busy;
        pipeline_free_at = finish;
        horizon = horizon.max(finish);
        processed_before += block.len();

        for &arr in block {
            let lat = finish - arr;
            latency.push(lat);
            completed += 1;
            if let Some(sink) = obs.as_deref_mut() {
                sink.on_completion();
            }
            if lat > deadline {
                misses += 1;
            }
        }
    }
    let mut dropped = 0u64;
    if truncated {
        dropped = (arrivals.len() - processed_before) as u64;
        misses += dropped;
        horizon = safety_horizon;
        if let Some(sink) = obs {
            for _ in 0..dropped {
                sink.on_drop();
            }
        }
    }
    let horizon = horizon.max(1.0);

    let active_fraction = busy_total / horizon;
    SimMetrics {
        items_arrived: arrivals.len() as u64,
        items_completed: completed,
        items_dropped: dropped,
        deadline_misses: misses,
        items_shed: 0,
        resolves: 0,
        active_fraction,
        active_fraction_nonempty: active_fraction,
        latency,
        max_queue_depth: {
            let mut d = vec![0u64; n];
            d[0] = max_waiting;
            d
        },
        max_backlog_vectors: {
            let mut b = vec![0.0; n];
            b[0] = max_waiting as f64 / v as f64;
            b
        },
        occupancy,
        horizon,
        truncated,
        obs: None,
        blame: None,
    }
}
