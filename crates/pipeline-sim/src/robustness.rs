//! Robustness sweeps: how gracefully each strategy degrades as a
//! perturbation's intensity grows, and the **robustness margin** — the
//! largest sustained intensity at which the miss-free fraction still
//! meets a target.
//!
//! Each sweep point simulates three configurations over the same seeds:
//!
//! * **enforced, mitigated** — the enforced-waits runtime with the full
//!   [`MitigationPolicy`] (load shedding + online escalation);
//! * **enforced, unmitigated** — same runtime, faults land unmanaged;
//! * **monolithic** — the block-batching baseline (no mitigation hooks
//!   exist for it).
//!
//! Comparing the first two isolates what the mitigations buy; comparing
//! against the third reproduces the paper's enforced-vs-monolithic
//! framing under model drift.

use crate::config::SimConfig;
use crate::faults::MitigationPolicy;
use crate::live::SimLiveMetrics;
use crate::runner::{
    run_seeds_enforced_topology_perturbed_live, run_seeds_monolithic_topology_perturbed_live,
    MultiSeedReport,
};
use dataflow_model::{Perturbation, PipelineSpec, Topology};
use rtsdf_core::{MonolithicSchedule, WaitSchedule};
use serde::{Deserialize, Serialize};

/// Aggregate statistics of one (strategy, intensity) cell of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StressSummary {
    /// Fraction of seeds with zero deadline misses.
    pub miss_free_fraction: f64,
    /// Worst per-seed miss rate (misses / arrived).
    pub worst_miss_rate: f64,
    /// Worst per-seed miss rate over admitted items (misses /
    /// (arrived − shed)).
    pub worst_admitted_miss_rate: f64,
    /// Items shed at admission, summed over seeds.
    pub total_shed: u64,
    /// Deadline misses, summed over seeds.
    pub total_misses: u64,
    /// Items dropped at the safety horizon, summed over seeds.
    pub total_dropped: u64,
    /// Online wait re-solves, summed over seeds.
    pub total_resolves: u64,
    /// True if any seed hit its safety horizon.
    pub any_truncated: bool,
}

impl StressSummary {
    /// Summarize a multi-seed report.
    pub fn from_report(report: &MultiSeedReport) -> Self {
        StressSummary {
            miss_free_fraction: report.miss_free_fraction(),
            worst_miss_rate: report.worst_miss_rate(),
            worst_admitted_miss_rate: report.worst_admitted_miss_rate(),
            total_shed: report.total_shed(),
            total_misses: report.total_misses(),
            total_dropped: report.runs.iter().map(|r| r.items_dropped).sum(),
            total_resolves: report.total_resolves(),
            any_truncated: report.any_truncated(),
        }
    }
}

/// One intensity of the sweep: the three strategy cells side by side.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessPoint {
    /// Perturbation intensity this point was simulated at.
    pub intensity: f64,
    /// Enforced waits with the full mitigation policy.
    pub enforced_mitigated: StressSummary,
    /// Enforced waits with faults unmanaged.
    pub enforced_unmitigated: StressSummary,
    /// Monolithic batching (no mitigation exists).
    pub monolithic: StressSummary,
}

/// The full sweep: degradation curves plus the per-strategy margins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Miss-free-fraction target the margins are measured against.
    pub target: f64,
    /// Seeds simulated per cell.
    pub num_seeds: u64,
    /// Sweep points in ascending intensity.
    pub points: Vec<RobustnessPoint>,
    /// Robustness margin of the mitigated enforced-waits runtime:
    /// the largest swept intensity such that it and every lower swept
    /// intensity meet the target (`None` if even the lowest fails).
    pub enforced_margin: Option<f64>,
    /// Margin of the unmitigated enforced-waits runtime.
    pub unmitigated_margin: Option<f64>,
    /// Margin of the monolithic baseline.
    pub monolithic_margin: Option<f64>,
}

/// Largest intensity of the passing *prefix*: a dip below target at a
/// lower intensity caps the margin even if a higher point passes again.
fn sustained_margin<'a, I>(points: I, target: f64) -> Option<f64>
where
    I: Iterator<Item = (f64, &'a StressSummary)>,
{
    let mut margin = None;
    for (intensity, cell) in points {
        if cell.miss_free_fraction + 1e-12 < target {
            break;
        }
        margin = Some(intensity);
    }
    margin
}

/// Sweep perturbation intensity over both strategies.
///
/// `perturb` supplies the component mix; each point re-scales it with
/// [`Perturbation::at_intensity`]. Intensities are swept in ascending
/// order regardless of input order (the margin is a prefix property).
/// Every cell runs the same `num_seeds` seeds, so the three curves are
/// paired sample-by-sample.
#[allow(clippy::too_many_arguments)] // one experiment = one call; a config struct would just rename the arguments
pub fn robustness_report(
    pipeline: &PipelineSpec,
    enforced: &WaitSchedule,
    monolithic: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    num_seeds: u64,
    perturb: &Perturbation,
    intensities: &[f64],
    target: f64,
) -> RobustnessReport {
    robustness_report_live(
        pipeline,
        enforced,
        monolithic,
        deadline,
        config,
        num_seeds,
        perturb,
        intensities,
        target,
        None,
    )
}

/// [`robustness_report`] publishing live progress into a metrics
/// registry: `rtsdf_sim_runs_total` is set to the whole sweep's run
/// count (levels × 3 strategies × seeds) up front, every finished seed
/// bumps `rtsdf_sim_runs_completed`, and the per-run item counters
/// accumulate across all cells. `live: None` is exactly
/// [`robustness_report`].
#[allow(clippy::too_many_arguments)]
pub fn robustness_report_live(
    pipeline: &PipelineSpec,
    enforced: &WaitSchedule,
    monolithic: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    num_seeds: u64,
    perturb: &Perturbation,
    intensities: &[f64],
    target: f64,
    live: Option<&SimLiveMetrics>,
) -> RobustnessReport {
    robustness_report_topology_live(
        &Topology::chain(pipeline),
        enforced,
        monolithic,
        deadline,
        config,
        num_seeds,
        perturb,
        intensities,
        target,
        live,
    )
}

/// [`robustness_report_live`] on an arbitrary DAG topology. For a chain
/// topology this is bit-identical to the chain entry point.
#[allow(clippy::too_many_arguments)]
pub fn robustness_report_topology_live(
    topology: &Topology,
    enforced: &WaitSchedule,
    monolithic: &MonolithicSchedule,
    deadline: f64,
    config: &SimConfig,
    num_seeds: u64,
    perturb: &Perturbation,
    intensities: &[f64],
    target: f64,
    live: Option<&SimLiveMetrics>,
) -> RobustnessReport {
    // Non-finite intensities cannot parameterize a perturbation; drop
    // them instead of panicking, and sort NaN-safely via `total_cmp`.
    let mut levels: Vec<f64> = intensities
        .iter()
        .copied()
        .filter(|x| x.is_finite())
        .collect();
    levels.sort_by(f64::total_cmp);
    levels.dedup();
    if let Some(m) = live {
        m.set_runs_total(levels.len() as u64 * 3 * num_seeds);
    }
    let mitigated = MitigationPolicy::full();
    let unmitigated = MitigationPolicy::none();
    let points: Vec<RobustnessPoint> = levels
        .iter()
        .map(|&intensity| {
            let p = perturb.at_intensity(intensity);
            RobustnessPoint {
                intensity,
                enforced_mitigated: StressSummary::from_report(
                    &run_seeds_enforced_topology_perturbed_live(
                        topology, enforced, deadline, config, num_seeds, &p, &mitigated, live,
                    ),
                ),
                enforced_unmitigated: StressSummary::from_report(
                    &run_seeds_enforced_topology_perturbed_live(
                        topology,
                        enforced,
                        deadline,
                        config,
                        num_seeds,
                        &p,
                        &unmitigated,
                        live,
                    ),
                ),
                monolithic: StressSummary::from_report(
                    &run_seeds_monolithic_topology_perturbed_live(
                        topology, monolithic, deadline, config, num_seeds, &p, live,
                    ),
                ),
            }
        })
        .collect();
    RobustnessReport {
        target,
        num_seeds,
        enforced_margin: sustained_margin(
            points.iter().map(|p| (p.intensity, &p.enforced_mitigated)),
            target,
        ),
        unmitigated_margin: sustained_margin(
            points
                .iter()
                .map(|p| (p.intensity, &p.enforced_unmitigated)),
            target,
        ),
        monolithic_margin: sustained_margin(
            points.iter().map(|p| (p.intensity, &p.monolithic)),
            target,
        ),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{GainModel, PipelineSpecBuilder, RtParams};
    use rtsdf_core::{EnforcedWaitsProblem, MonolithicProblem, SolveMethod};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    fn cell(f: f64) -> StressSummary {
        StressSummary {
            miss_free_fraction: f,
            worst_miss_rate: 0.0,
            worst_admitted_miss_rate: 0.0,
            total_shed: 0,
            total_misses: 0,
            total_dropped: 0,
            total_resolves: 0,
            any_truncated: false,
        }
    }

    #[test]
    fn sustained_margin_is_a_prefix_property() {
        let cells = [cell(1.0), cell(1.0), cell(0.5), cell(1.0)];
        let pts: Vec<(f64, &StressSummary)> = [0.0, 0.5, 1.0, 1.5]
            .iter()
            .copied()
            .zip(cells.iter())
            .collect();
        // The dip at 1.0 caps the margin at 0.5 even though 1.5 passes.
        assert_eq!(sustained_margin(pts.iter().copied(), 0.95), Some(0.5));
        assert_eq!(sustained_margin(pts.iter().copied(), 0.4), Some(1.5));
        // Even the first point failing means no margin at all.
        assert_eq!(
            sustained_margin([(0.0, &cell(0.2))].iter().copied(), 0.95),
            None
        );
        // Exact equality with the target passes (no float-noise flake).
        assert_eq!(
            sustained_margin([(0.0, &cell(0.95))].iter().copied(), 0.95),
            Some(0.0)
        );
    }

    /// Regression: a NaN intensity used to abort the whole sweep at the
    /// level sort (`expect("finite intensities")`). Non-finite levels
    /// are now dropped up front and the finite ones still run.
    #[test]
    fn non_finite_intensities_are_dropped_not_fatal() {
        let p = blast();
        let params = RtParams::new(10.0, 1e5).unwrap();
        let enforced = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0])
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let mono = MonolithicProblem::new(&p, params, 1.0, 1.0)
            .solve()
            .unwrap();
        let cfg = SimConfig::quick(10.0, 0, 200);
        let report = robustness_report(
            &p,
            &enforced,
            &mono,
            1e5,
            &cfg,
            1,
            &Perturbation::standard(1.0),
            &[f64::NAN, 0.0, f64::INFINITY],
            0.95,
        );
        assert_eq!(report.points.len(), 1);
        assert_eq!(report.points[0].intensity, 0.0);
    }

    #[test]
    fn sweep_on_blast_degrades_gracefully() {
        let p = blast();
        let params = RtParams::new(10.0, 1e5).unwrap();
        let enforced = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0])
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let mono = MonolithicProblem::new(&p, params, 1.0, 1.0)
            .solve()
            .unwrap();
        let cfg = SimConfig::quick(10.0, 0, 800);
        let report = robustness_report(
            &p,
            &enforced,
            &mono,
            1e5,
            &cfg,
            2,
            &Perturbation::standard(1.0),
            &[1.5, 0.0, 1.5], // unsorted + duplicate on purpose
            0.95,
        );
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.points[0].intensity, 0.0);
        assert_eq!(report.points[1].intensity, 1.5);
        // Unperturbed at the calibrated factors: miss-free, nothing
        // shed, nothing escalated.
        let base = &report.points[0];
        assert_eq!(base.enforced_mitigated.miss_free_fraction, 1.0);
        assert_eq!(base.enforced_unmitigated.miss_free_fraction, 1.0);
        assert_eq!(base.enforced_mitigated.total_shed, 0);
        assert_eq!(base.enforced_mitigated.total_resolves, 0);
        // Margins cover at least the unperturbed point.
        assert!(report.enforced_margin.is_some());
        assert!(report.unmitigated_margin.is_some());
        // Under heavy faults, mitigation keeps the admitted miss rate
        // at or below the unmitigated miss rate.
        let hot = &report.points[1];
        assert!(
            hot.enforced_mitigated.worst_admitted_miss_rate
                <= hot.enforced_unmitigated.worst_miss_rate + 1e-12,
            "mitigated admitted {} vs unmitigated {}",
            hot.enforced_mitigated.worst_admitted_miss_rate,
            hot.enforced_unmitigated.worst_miss_rate
        );
    }

    #[test]
    fn report_serde_roundtrip() {
        let report = RobustnessReport {
            target: 0.95,
            num_seeds: 4,
            points: vec![RobustnessPoint {
                intensity: 0.5,
                enforced_mitigated: cell(1.0),
                enforced_unmitigated: cell(0.75),
                monolithic: cell(0.5),
            }],
            enforced_margin: Some(0.5),
            unmitigated_margin: None,
            monolithic_margin: None,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: RobustnessReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.points.len(), 1);
        assert_eq!(back.enforced_margin, Some(0.5));
        assert_eq!(back.unmitigated_margin, None);
        assert_eq!(back.points[0].enforced_unmitigated.miss_free_fraction, 0.75);
    }
}
