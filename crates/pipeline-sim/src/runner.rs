//! Multi-seed experiment execution.
//!
//! The paper's methodology (§6.2) runs each configuration under 100
//! different random seeds and reports the fraction of runs that were
//! miss-free. Seeds are independent, so runs execute in parallel across
//! a scoped thread pool.

use crate::config::SimConfig;
use crate::enforced::{
    simulate_enforced, simulate_enforced_perturbed, simulate_enforced_perturbed_live,
    simulate_enforced_topology, simulate_enforced_topology_perturbed,
    simulate_enforced_topology_perturbed_live,
};
use crate::faults::MitigationPolicy;
use crate::live::{SimLive, SimLiveMetrics};
use crate::metrics::SimMetrics;
use crate::monolithic::{
    simulate_monolithic, simulate_monolithic_perturbed, simulate_monolithic_perturbed_live,
    simulate_monolithic_topology, simulate_monolithic_topology_perturbed,
    simulate_monolithic_topology_perturbed_live,
};
use dataflow_model::{Perturbation, PipelineSpec, Topology};
use rtsdf_core::{MonolithicSchedule, WaitSchedule};
use serde::{Deserialize, Serialize};

/// Aggregate of a batch of runs differing only in seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiSeedReport {
    /// Per-seed results, in seed order.
    pub runs: Vec<SimMetrics>,
}

impl MultiSeedReport {
    /// Fraction of runs with zero deadline misses (the paper's primary
    /// schedulability statistic).
    pub fn miss_free_fraction(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().filter(|r| r.miss_free()).count() as f64 / self.runs.len() as f64
    }

    /// Worst per-run miss rate observed.
    pub fn worst_miss_rate(&self) -> f64 {
        self.runs.iter().map(|r| r.miss_rate()).fold(0.0, f64::max)
    }

    /// Mean measured active fraction across runs.
    pub fn mean_active_fraction(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(|r| r.active_fraction).sum::<f64>() / self.runs.len() as f64
    }

    /// Componentwise maximum of the empirical backlog (in vectors) over
    /// all runs — the data the §6.2 calibration raises `b_i` from.
    ///
    /// Runs with differing stage counts are combined over the longest
    /// length (missing stages contribute nothing), so no run's data is
    /// silently truncated.
    pub fn max_backlog_vectors(&self) -> Vec<f64> {
        let mut out: Vec<f64> = Vec::new();
        for r in &self.runs {
            if r.max_backlog_vectors.len() > out.len() {
                out.resize(r.max_backlog_vectors.len(), 0.0);
            }
            for (o, &b) in out.iter_mut().zip(&r.max_backlog_vectors) {
                *o = o.max(b);
            }
        }
        out
    }

    /// True if any run hit its safety horizon.
    pub fn any_truncated(&self) -> bool {
        self.runs.iter().any(|r| r.truncated)
    }

    /// Worst per-run miss rate over *admitted* items (misses divided by
    /// arrived − shed) — the quality statistic the shedding mitigation
    /// protects.
    pub fn worst_admitted_miss_rate(&self) -> f64 {
        self.runs
            .iter()
            .map(|r| r.admitted_miss_rate())
            .fold(0.0, f64::max)
    }

    /// Total items shed at admission across all runs.
    pub fn total_shed(&self) -> u64 {
        self.runs.iter().map(|r| r.items_shed).sum()
    }

    /// Total online wait re-solves across all runs.
    pub fn total_resolves(&self) -> u64 {
        self.runs.iter().map(|r| r.resolves).sum()
    }

    /// Total deadline misses across all runs.
    pub fn total_misses(&self) -> u64 {
        self.runs.iter().map(|r| r.deadline_misses).sum()
    }
}

/// Run a closure-per-seed experiment in parallel and collect results in
/// seed order.
fn run_parallel<F>(seeds: std::ops::Range<u64>, threads: usize, f: F) -> Vec<SimMetrics>
where
    F: Fn(u64) -> SimMetrics + Sync,
{
    run_parallel_live(seeds, threads, None, |seed, _| f(seed))
}

/// [`run_parallel`] with an optional live-metrics registry: each worker
/// thread publishes through its own shard (one [`SimLive`] handle per
/// run), and every finished seed bumps `rtsdf_sim_runs_completed`.
fn run_parallel_live<F>(
    seeds: std::ops::Range<u64>,
    threads: usize,
    live: Option<&SimLiveMetrics>,
    f: F,
) -> Vec<SimMetrics>
where
    F: Fn(u64, Option<&SimLive<'_>>) -> SimMetrics + Sync,
{
    let seeds: Vec<u64> = seeds.collect();
    if seeds.is_empty() {
        // `chunks(0)` below would panic; zero seeds is a valid request
        // with an empty answer.
        return Vec::new();
    }
    let threads = threads.max(1).min(seeds.len());
    let chunk = seeds.len().div_ceil(threads).max(1);
    let mut results: Vec<Option<SimMetrics>> = vec![None; seeds.len()];
    std::thread::scope(|scope| {
        for (worker, (seed_chunk, result_chunk)) in seeds
            .chunks(chunk)
            .zip(results.chunks_mut(chunk))
            .enumerate()
        {
            let f = &f;
            scope.spawn(move || {
                for (s, out) in seed_chunk.iter().zip(result_chunk.iter_mut()) {
                    match live {
                        Some(m) => {
                            let h = m.handle(worker);
                            *out = Some(f(*s, Some(&h)));
                            m.on_run_complete(worker);
                        }
                        None => *out = Some(f(*s, None)),
                    }
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all seeds ran"))
        .collect()
}

/// Simulate an enforced-waits schedule under `num_seeds` seeds
/// (numbered `0..num_seeds`), in parallel.
pub fn run_seeds_enforced(
    pipeline: &PipelineSpec,
    schedule: &WaitSchedule,
    deadline: f64,
    base_config: &SimConfig,
    num_seeds: u64,
) -> MultiSeedReport {
    let threads = rtsdf_core::worker_threads();
    let runs = run_parallel(0..num_seeds, threads, |seed| {
        let mut cfg = base_config.clone();
        cfg.seed = seed;
        simulate_enforced(pipeline, schedule, deadline, &cfg)
    });
    MultiSeedReport { runs }
}

/// Simulate an enforced-waits schedule under fault injection with
/// graceful degradation, across `num_seeds` seeds in parallel. See
/// [`simulate_enforced_perturbed`] for the fault and mitigation
/// semantics; a zero-intensity perturbation reproduces
/// [`run_seeds_enforced`] bit for bit (modulo the mitigation-only
/// counters, which stay zero).
pub fn run_seeds_enforced_perturbed(
    pipeline: &PipelineSpec,
    schedule: &WaitSchedule,
    deadline: f64,
    base_config: &SimConfig,
    num_seeds: u64,
    perturb: &Perturbation,
    policy: &MitigationPolicy,
) -> MultiSeedReport {
    let threads = rtsdf_core::worker_threads();
    let runs = run_parallel(0..num_seeds, threads, |seed| {
        let mut cfg = base_config.clone();
        cfg.seed = seed;
        simulate_enforced_perturbed(pipeline, schedule, deadline, &cfg, perturb, policy)
    });
    MultiSeedReport { runs }
}

/// [`run_seeds_enforced_perturbed`] publishing live progress into a
/// metrics registry: per-run item counters, queue high-water marks,
/// throughput, and a `rtsdf_sim_runs_completed` bump per finished seed.
/// `live: None` is exactly [`run_seeds_enforced_perturbed`].
#[allow(clippy::too_many_arguments)]
pub fn run_seeds_enforced_perturbed_live(
    pipeline: &PipelineSpec,
    schedule: &WaitSchedule,
    deadline: f64,
    base_config: &SimConfig,
    num_seeds: u64,
    perturb: &Perturbation,
    policy: &MitigationPolicy,
    live: Option<&SimLiveMetrics>,
) -> MultiSeedReport {
    let threads = rtsdf_core::worker_threads();
    let runs = run_parallel_live(0..num_seeds, threads, live, |seed, l| {
        let mut cfg = base_config.clone();
        cfg.seed = seed;
        match l {
            Some(h) => simulate_enforced_perturbed_live(
                pipeline, schedule, deadline, &cfg, perturb, policy, h,
            ),
            None => {
                simulate_enforced_perturbed(pipeline, schedule, deadline, &cfg, perturb, policy)
            }
        }
    });
    MultiSeedReport { runs }
}

/// Simulate a monolithic schedule under fault injection across
/// `num_seeds` seeds in parallel (no mitigation exists for this
/// strategy; see [`simulate_monolithic_perturbed`]).
pub fn run_seeds_monolithic_perturbed(
    pipeline: &PipelineSpec,
    schedule: &MonolithicSchedule,
    deadline: f64,
    base_config: &SimConfig,
    num_seeds: u64,
    perturb: &Perturbation,
) -> MultiSeedReport {
    let threads = rtsdf_core::worker_threads();
    let runs = run_parallel(0..num_seeds, threads, |seed| {
        let mut cfg = base_config.clone();
        cfg.seed = seed;
        simulate_monolithic_perturbed(pipeline, schedule, deadline, &cfg, perturb)
    });
    MultiSeedReport { runs }
}

/// [`run_seeds_monolithic_perturbed`] publishing live progress into a
/// metrics registry; `live: None` is exactly
/// [`run_seeds_monolithic_perturbed`].
pub fn run_seeds_monolithic_perturbed_live(
    pipeline: &PipelineSpec,
    schedule: &MonolithicSchedule,
    deadline: f64,
    base_config: &SimConfig,
    num_seeds: u64,
    perturb: &Perturbation,
    live: Option<&SimLiveMetrics>,
) -> MultiSeedReport {
    let threads = rtsdf_core::worker_threads();
    let runs = run_parallel_live(0..num_seeds, threads, live, |seed, l| {
        let mut cfg = base_config.clone();
        cfg.seed = seed;
        match l {
            Some(h) => {
                simulate_monolithic_perturbed_live(pipeline, schedule, deadline, &cfg, perturb, h)
            }
            None => simulate_monolithic_perturbed(pipeline, schedule, deadline, &cfg, perturb),
        }
    });
    MultiSeedReport { runs }
}

/// Simulate an enforced-waits schedule on an arbitrary DAG topology
/// under `num_seeds` seeds, in parallel. For a chain topology this is
/// bit-identical to [`run_seeds_enforced`].
pub fn run_seeds_enforced_topology(
    topology: &Topology,
    schedule: &WaitSchedule,
    deadline: f64,
    base_config: &SimConfig,
    num_seeds: u64,
) -> MultiSeedReport {
    let threads = rtsdf_core::worker_threads();
    let runs = run_parallel(0..num_seeds, threads, |seed| {
        let mut cfg = base_config.clone();
        cfg.seed = seed;
        simulate_enforced_topology(topology, schedule, deadline, &cfg)
    });
    MultiSeedReport { runs }
}

/// [`run_seeds_enforced_perturbed_live`] on an arbitrary DAG topology.
#[allow(clippy::too_many_arguments)]
pub fn run_seeds_enforced_topology_perturbed_live(
    topology: &Topology,
    schedule: &WaitSchedule,
    deadline: f64,
    base_config: &SimConfig,
    num_seeds: u64,
    perturb: &Perturbation,
    policy: &MitigationPolicy,
    live: Option<&SimLiveMetrics>,
) -> MultiSeedReport {
    let threads = rtsdf_core::worker_threads();
    let runs = run_parallel_live(0..num_seeds, threads, live, |seed, l| {
        let mut cfg = base_config.clone();
        cfg.seed = seed;
        match l {
            Some(h) => simulate_enforced_topology_perturbed_live(
                topology, schedule, deadline, &cfg, perturb, policy, h,
            ),
            None => simulate_enforced_topology_perturbed(
                topology, schedule, deadline, &cfg, perturb, policy,
            ),
        }
    });
    MultiSeedReport { runs }
}

/// Simulate a monolithic schedule on an arbitrary DAG topology under
/// `num_seeds` seeds, in parallel. For a chain topology this is
/// bit-identical to [`run_seeds_monolithic`].
pub fn run_seeds_monolithic_topology(
    topology: &Topology,
    schedule: &MonolithicSchedule,
    deadline: f64,
    base_config: &SimConfig,
    num_seeds: u64,
) -> MultiSeedReport {
    let threads = rtsdf_core::worker_threads();
    let runs = run_parallel(0..num_seeds, threads, |seed| {
        let mut cfg = base_config.clone();
        cfg.seed = seed;
        simulate_monolithic_topology(topology, schedule, deadline, &cfg)
    });
    MultiSeedReport { runs }
}

/// [`run_seeds_monolithic_perturbed_live`] on an arbitrary DAG topology.
pub fn run_seeds_monolithic_topology_perturbed_live(
    topology: &Topology,
    schedule: &MonolithicSchedule,
    deadline: f64,
    base_config: &SimConfig,
    num_seeds: u64,
    perturb: &Perturbation,
    live: Option<&SimLiveMetrics>,
) -> MultiSeedReport {
    let threads = rtsdf_core::worker_threads();
    let runs = run_parallel_live(0..num_seeds, threads, live, |seed, l| {
        let mut cfg = base_config.clone();
        cfg.seed = seed;
        match l {
            Some(h) => simulate_monolithic_topology_perturbed_live(
                topology, schedule, deadline, &cfg, perturb, h,
            ),
            None => {
                simulate_monolithic_topology_perturbed(topology, schedule, deadline, &cfg, perturb)
            }
        }
    });
    MultiSeedReport { runs }
}

/// Simulate a monolithic schedule under `num_seeds` seeds, in parallel.
pub fn run_seeds_monolithic(
    pipeline: &PipelineSpec,
    schedule: &MonolithicSchedule,
    deadline: f64,
    base_config: &SimConfig,
    num_seeds: u64,
) -> MultiSeedReport {
    let threads = rtsdf_core::worker_threads();
    let runs = run_parallel(0..num_seeds, threads, |seed| {
        let mut cfg = base_config.clone();
        cfg.seed = seed;
        simulate_monolithic(pipeline, schedule, deadline, &cfg)
    });
    MultiSeedReport { runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{GainModel, PipelineSpecBuilder, RtParams};
    use rtsdf_core::{EnforcedWaitsProblem, MonolithicProblem, SolveMethod};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_results_are_in_seed_order_and_deterministic() {
        let p = blast();
        let params = RtParams::new(10.0, 1e5).unwrap();
        let sched = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0])
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let cfg = SimConfig::quick(10.0, 0, 1_000);
        let a = run_seeds_enforced(&p, &sched, 1e5, &cfg, 6);
        let b = run_seeds_enforced(&p, &sched, 1e5, &cfg, 6);
        assert_eq!(a.runs.len(), 6);
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.active_fraction, y.active_fraction);
            assert_eq!(x.deadline_misses, y.deadline_misses);
        }
        // Sequential reference for seed 3.
        let mut c3 = cfg.clone();
        c3.seed = 3;
        let seq = crate::enforced::simulate_enforced(&p, &sched, 1e5, &c3);
        assert_eq!(a.runs[3].active_fraction, seq.active_fraction);
    }

    #[test]
    fn report_statistics() {
        let p = blast();
        let params = RtParams::new(50.0, 1e5).unwrap();
        let sched = MonolithicProblem::new(&p, params, 1.0, 1.0)
            .solve()
            .unwrap();
        let cfg = SimConfig::quick(50.0, 0, 2_000);
        let r = run_seeds_monolithic(&p, &sched, 1e5, &cfg, 4);
        assert_eq!(r.runs.len(), 4);
        assert!((0.0..=1.0).contains(&r.miss_free_fraction()));
        assert!(r.mean_active_fraction() > 0.0);
        assert_eq!(r.max_backlog_vectors().len(), 4);
        assert!(!r.any_truncated());
        assert!(r.worst_miss_rate() >= 0.0);
    }

    #[test]
    fn empty_report_statistics() {
        let r = MultiSeedReport { runs: vec![] };
        assert_eq!(r.miss_free_fraction(), 0.0);
        assert_eq!(r.mean_active_fraction(), 0.0);
        assert!(r.max_backlog_vectors().is_empty());
    }

    #[test]
    fn zero_seeds_returns_empty_report() {
        // Regression: `run_parallel` used to call `chunks(0)` (a panic)
        // when asked for an empty seed range.
        let p = blast();
        let params = RtParams::new(10.0, 1e5).unwrap();
        let sched = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0])
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let cfg = SimConfig::quick(10.0, 0, 100);
        let r = run_seeds_enforced(&p, &sched, 1e5, &cfg, 0);
        assert!(r.runs.is_empty());
        assert_eq!(r.miss_free_fraction(), 0.0);
    }

    #[test]
    fn max_backlog_vectors_spans_longest_run() {
        // Reports mixing runs with different stage counts must not
        // silently truncate to the first run's length.
        let mk = |backlog: Vec<f64>| SimMetrics {
            items_arrived: 1,
            items_completed: 1,
            items_dropped: 0,
            deadline_misses: 0,
            items_shed: 0,
            resolves: 0,
            active_fraction: 0.5,
            active_fraction_nonempty: 0.5,
            latency: des::stats::OnlineStats::new(),
            occupancy: vec![],
            max_queue_depth: vec![],
            max_backlog_vectors: backlog,
            horizon: 1.0,
            truncated: false,
            obs: None,
            blame: None,
        };
        let r = MultiSeedReport {
            runs: vec![mk(vec![2.0]), mk(vec![1.0, 5.0, 3.0]), mk(vec![4.0, 0.5])],
        };
        assert_eq!(r.max_backlog_vectors(), vec![4.0, 5.0, 3.0]);
    }
}
