//! Structure-of-arrays queues for the simulators' hot state.
//!
//! The scalar simulators kept per-item structs (`Item { origin,
//! arrival }`) in `VecDeque`s and popped them one at a time. The
//! vectorized paths instead keep each per-item attribute in its own
//! flat lane ([`SoaQueue`]), so a firing that consumes `take` items
//! operates on a contiguous `&[u64]` slice: gain draws fill a batch
//! buffer, lineage updates stream over the slice, and sojourn samples
//! are computed chunk-wise — all autovectorization-friendly, with no
//! per-item pointer chasing.
//!
//! A [`SoaQueue`] is a FIFO over a flat `Vec` with a consumed-prefix
//! cursor: `take_front(n)` returns the oldest `n` elements as one
//! slice and advances the cursor, and the consumed prefix is compacted
//! away (one `memmove` of the live region) only when it dominates the
//! buffer, so amortized cost per item stays O(1) without `VecDeque`'s
//! wrap-around split.

/// A flat FIFO lane: contiguous storage, slice-based batch dequeue.
#[derive(Debug, Clone)]
pub struct SoaQueue<T> {
    buf: Vec<T>,
    /// Index of the oldest live element; everything before it has been
    /// consumed and awaits compaction.
    head: usize,
}

/// Consumed prefix beyond which a push triggers compaction (when the
/// prefix also outweighs the live region). Small enough to bound waste,
/// large enough that compaction cost amortizes over many items.
const COMPACT_THRESHOLD: usize = 1024;

impl<T: Copy> SoaQueue<T> {
    /// New empty queue.
    pub fn new() -> Self {
        SoaQueue {
            buf: Vec::new(),
            head: 0,
        }
    }

    /// New empty queue with room for `cap` live elements.
    pub fn with_capacity(cap: usize) -> Self {
        SoaQueue {
            buf: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Number of live (unconsumed) elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// True if no live element remains.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }

    /// The live elements, oldest first, as one contiguous slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.buf[self.head..]
    }

    /// Drop the consumed prefix when it is worth the `memmove`: always
    /// when nothing is live (free), otherwise only once the prefix is
    /// both large and at least as long as the live region.
    #[inline]
    fn maybe_compact(&mut self) {
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head >= COMPACT_THRESHOLD && self.head >= self.len() {
            let live = self.len();
            self.buf.copy_within(self.head.., 0);
            self.buf.truncate(live);
            self.head = 0;
        }
    }

    /// Append one element.
    #[inline]
    pub fn push_back(&mut self, x: T) {
        self.maybe_compact();
        self.buf.push(x);
    }

    /// Append a batch of elements, oldest first.
    #[inline]
    pub fn extend_from_slice(&mut self, xs: &[T]) {
        self.maybe_compact();
        self.buf.extend_from_slice(xs);
    }

    /// Append `n` copies of `x`.
    #[inline]
    pub fn push_n(&mut self, x: T, n: usize) {
        self.maybe_compact();
        self.buf.resize(self.buf.len() + n, x);
    }

    /// Consume the oldest `n` elements, returned as one slice (valid
    /// until the next mutation; the borrow checker enforces that).
    ///
    /// # Panics
    /// Panics if fewer than `n` elements are live.
    #[inline]
    pub fn take_front(&mut self, n: usize) -> &[T] {
        assert!(n <= self.len(), "take_front past queue end");
        let start = self.head;
        self.head += n;
        &self.buf[start..self.head]
    }
}

impl<T: Copy> Default for SoaQueue<T> {
    fn default() -> Self {
        SoaQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn fifo_order_across_batches() {
        let mut q = SoaQueue::new();
        q.extend_from_slice(&[1u64, 2, 3]);
        q.push_back(4);
        assert_eq!(q.len(), 4);
        assert_eq!(q.take_front(2), &[1, 2]);
        q.push_n(9, 2);
        assert_eq!(q.as_slice(), &[3, 4, 9, 9]);
        assert_eq!(q.take_front(4), &[3, 4, 9, 9]);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "past queue end")]
    fn overdrain_panics() {
        let mut q: SoaQueue<u64> = SoaQueue::new();
        q.push_back(1);
        q.take_front(2);
    }

    #[test]
    fn matches_vecdeque_model_through_compaction() {
        // Drive the queue far past the compaction threshold with a
        // deterministic push/pop pattern and check it against VecDeque.
        let mut q: SoaQueue<u64> = SoaQueue::with_capacity(8);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for round in 0..5000 {
            let push = (round * 7) % 5;
            for _ in 0..push {
                q.push_back(next);
                model.push_back(next);
                next += 1;
            }
            let pop = ((round * 3) % 6).min(model.len());
            let got: Vec<u64> = q.take_front(pop).to_vec();
            let want: Vec<u64> = (0..pop).map(|_| model.pop_front().unwrap()).collect();
            assert_eq!(got, want, "round {round}");
            assert_eq!(q.len(), model.len());
        }
        assert_eq!(q.as_slice(), model.make_contiguous());
    }
}
