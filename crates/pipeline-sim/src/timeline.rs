//! Firing timelines: a bounded record of *when each node fired and how
//! full its vector was*, for inspection and visualization.
//!
//! The enforced-waits strategy is fundamentally about the temporal
//! texture of firings — evenly spaced, well-filled vectors — so being
//! able to *look* at a schedule's execution is worth a dedicated
//! artifact. [`record_timeline`] runs a bounded-horizon enforced-waits
//! simulation capturing every firing; [`render_ascii`] draws the
//! classic Gantt strip per node.

use crate::config::SimConfig;
use crate::enforced::simulate_enforced;
use dataflow_model::PipelineSpec;
use rtsdf_core::WaitSchedule;
use serde::{Deserialize, Serialize};

/// One recorded firing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Firing {
    /// Node index.
    pub node: usize,
    /// Firing start time (cycles).
    pub start: f64,
    /// Busy duration (the node's service time).
    pub duration: f64,
    /// Lanes filled.
    pub items: u32,
}

/// A bounded firing record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timeline {
    /// Number of pipeline nodes.
    pub nodes: usize,
    /// SIMD width (for occupancy rendering).
    pub vector_width: u32,
    /// The firings, in chronological order.
    pub firings: Vec<Firing>,
    /// The horizon the record covers (cycles).
    pub horizon: f64,
}

impl Timeline {
    /// Firings of one node.
    pub fn node_firings(&self, node: usize) -> impl Iterator<Item = &Firing> {
        self.firings.iter().filter(move |f| f.node == node)
    }

    /// Mean inter-firing gap of a node (cycles), `None` with fewer than
    /// two firings.
    pub fn mean_period(&self, node: usize) -> Option<f64> {
        let starts: Vec<f64> = self.node_firings(node).map(|f| f.start).collect();
        if starts.len() < 2 {
            return None;
        }
        Some((starts.last().unwrap() - starts[0]) / (starts.len() - 1) as f64)
    }
}

/// Run the enforced-waits schedule and capture every firing inside
/// `horizon_cycles` (items keep flowing; only the record is bounded).
pub fn record_timeline(
    pipeline: &PipelineSpec,
    schedule: &WaitSchedule,
    deadline: f64,
    config: &SimConfig,
    horizon_cycles: f64,
) -> Timeline {
    // The simulator itself does not expose per-firing hooks (hot path);
    // reconstruct the firing schedule deterministically instead: firings
    // are strictly periodic with known phases, and the occupancy of each
    // is recovered by re-running the simulation with the items counted
    // per firing index. For the visualization use-case, periodicity +
    // per-node occupancy *distribution* is the meaningful content, so we
    // replay the deterministic firing grid and attach measured mean
    // occupancy per node.
    let metrics = simulate_enforced(pipeline, schedule, deadline, config);
    let service = pipeline.service_times();
    let mut firings = Vec::new();
    for (node, &svc) in service.iter().enumerate() {
        let period = schedule.periods[node].round().max(svc.round());
        let mean_items =
            (metrics.occupancy[node].mean_occupancy() * pipeline.vector_width() as f64).round();
        let mut t = 0.0;
        while t < horizon_cycles {
            firings.push(Firing {
                node,
                start: t,
                duration: svc,
                items: mean_items as u32,
            });
            t += period;
        }
    }
    firings.sort_by(|a, b| a.start.total_cmp(&b.start));
    Timeline {
        nodes: pipeline.len(),
        vector_width: pipeline.vector_width(),
        firings,
        horizon: horizon_cycles,
    }
}

/// Render the timeline as an ASCII Gantt strip, `width` characters wide.
/// Busy spans print `#`, waits print `.`.
pub fn render_ascii(timeline: &Timeline, width: usize) -> String {
    let mut out = String::new();
    let scale = timeline.horizon / width as f64;
    for node in 0..timeline.nodes {
        let mut row = vec!['.'; width];
        for f in timeline.node_firings(node) {
            let a = (f.start / scale) as usize;
            let b = (((f.start + f.duration) / scale).ceil() as usize).min(width);
            for cell in row.iter_mut().take(b).skip(a.min(width)) {
                *cell = '#';
            }
        }
        out.push_str(&format!("node {node} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "          {} cycles, one column = {:.0} cycles\n",
        timeline.horizon, scale
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{GainModel, PipelineSpecBuilder, RtParams};
    use rtsdf_core::{EnforcedWaitsProblem, SolveMethod};

    fn setup() -> (PipelineSpec, WaitSchedule) {
        let p = PipelineSpecBuilder::new(16)
            .stage("a", 100.0, GainModel::Deterministic { k: 1 })
            .stage("b", 200.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap();
        let params = RtParams::new(20.0, 5e4).unwrap();
        let s = EnforcedWaitsProblem::new(&p, params, vec![1.0, 1.0])
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        (p, s)
    }

    #[test]
    fn timeline_respects_periods() {
        let (p, s) = setup();
        let cfg = SimConfig::quick(20.0, 1, 500);
        let tl = record_timeline(&p, &s, 5e4, &cfg, 10_000.0);
        for node in 0..2 {
            let mean = tl.mean_period(node).unwrap();
            let expect = s.periods[node].round();
            assert!(
                (mean - expect).abs() < 1.0,
                "node {node}: mean period {mean} vs schedule {expect}"
            );
        }
    }

    #[test]
    fn firings_are_chronological_and_bounded() {
        let (p, s) = setup();
        let cfg = SimConfig::quick(20.0, 1, 500);
        let tl = record_timeline(&p, &s, 5e4, &cfg, 5_000.0);
        assert!(!tl.firings.is_empty());
        for w in tl.firings.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert!(tl.firings.iter().all(|f| f.start < 5_000.0));
        assert!(tl.firings.iter().all(|f| f.items <= 16));
    }

    #[test]
    fn ascii_render_has_one_row_per_node() {
        let (p, s) = setup();
        let cfg = SimConfig::quick(20.0, 1, 200);
        let tl = record_timeline(&p, &s, 5e4, &cfg, 4_000.0);
        let art = render_ascii(&tl, 60);
        let rows: Vec<&str> = art.lines().collect();
        assert_eq!(rows.len(), 3); // two nodes + scale line
        assert!(rows[0].contains('#'), "{art}");
        assert!(rows[0].contains('.'), "busy and idle both visible: {art}");
    }

    #[test]
    fn mean_period_none_for_missing_node_firings() {
        let tl = Timeline {
            nodes: 1,
            vector_width: 4,
            firings: vec![],
            horizon: 100.0,
        };
        assert!(tl.mean_period(0).is_none());
    }
}
