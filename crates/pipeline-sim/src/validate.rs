//! Optimizer-vs-simulator agreement (paper §6.2: "the active fractions
//! measured in the simulator closely matched those predicted by the
//! optimizer for each approach and set of parameters tested").

use crate::config::SimConfig;
use crate::enforced::simulate_enforced;
use crate::monolithic::simulate_monolithic;
use dataflow_model::{PipelineSpec, RtParams};
use rtsdf_core::{EnforcedWaitsProblem, MonolithicProblem, SolveMethod};
use serde::{Deserialize, Serialize};

/// One operating point's prediction-vs-measurement comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgreementCell {
    /// Inter-arrival time.
    pub tau0: f64,
    /// Deadline.
    pub deadline: f64,
    /// Optimizer-predicted active fraction.
    pub predicted: f64,
    /// Simulator-measured active fraction.
    pub measured: f64,
}

impl AgreementCell {
    /// Relative disagreement `|measured − predicted| / predicted`.
    pub fn rel_error(&self) -> f64 {
        (self.measured - self.predicted).abs() / self.predicted.max(1e-12)
    }
}

/// A batch of agreement measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgreementReport {
    /// Strategy name for reporting.
    pub strategy: String,
    /// Per-point comparisons (points that were infeasible are absent).
    pub cells: Vec<AgreementCell>,
}

impl AgreementReport {
    /// Largest relative error across cells (0 if empty).
    pub fn worst_rel_error(&self) -> f64 {
        self.cells.iter().map(|c| c.rel_error()).fold(0.0, f64::max)
    }
}

/// Compare predicted and measured active fractions for the
/// enforced-waits strategy over `points`.
pub fn enforced_agreement(
    pipeline: &PipelineSpec,
    points: &[RtParams],
    b: &[f64],
    stream_length: usize,
    seed: u64,
) -> AgreementReport {
    let mut cells = Vec::new();
    for params in points {
        let prob = EnforcedWaitsProblem::new(pipeline, *params, b.to_vec());
        let Ok(sched) = prob.solve(SolveMethod::WaterFilling) else {
            continue;
        };
        let cfg = SimConfig::quick(params.tau0, seed, stream_length);
        let m = simulate_enforced(pipeline, &sched, params.deadline, &cfg);
        cells.push(AgreementCell {
            tau0: params.tau0,
            deadline: params.deadline,
            predicted: sched.active_fraction,
            measured: m.active_fraction,
        });
    }
    AgreementReport {
        strategy: "enforced-waits".into(),
        cells,
    }
}

/// Compare predicted and measured active fractions for the monolithic
/// strategy over `points`.
pub fn monolithic_agreement(
    pipeline: &PipelineSpec,
    points: &[RtParams],
    b: f64,
    s: f64,
    stream_length: usize,
    seed: u64,
) -> AgreementReport {
    let mut cells = Vec::new();
    for params in points {
        let Ok(sched) = MonolithicProblem::new(pipeline, *params, b, s).solve_fast() else {
            continue;
        };
        let cfg = SimConfig::quick(params.tau0, seed, stream_length);
        let m = simulate_monolithic(pipeline, &sched, params.deadline, &cfg);
        cells.push(AgreementCell {
            tau0: params.tau0,
            deadline: params.deadline,
            predicted: sched.active_fraction,
            measured: m.active_fraction,
        });
    }
    AgreementReport {
        strategy: "monolithic".into(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{GainModel, PipelineSpecBuilder};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    #[test]
    fn enforced_agreement_is_close() {
        let p = blast();
        let points = [
            RtParams::new(10.0, 1e5).unwrap(),
            RtParams::new(30.0, 2e5).unwrap(),
        ];
        let r = enforced_agreement(&p, &points, &[1.0, 3.0, 9.0, 6.0], 5_000, 1);
        assert_eq!(r.cells.len(), 2);
        assert!(
            r.worst_rel_error() < 0.05,
            "enforced agreement: {:#?}",
            r.cells
        );
    }

    #[test]
    fn monolithic_agreement_is_close() {
        let p = blast();
        let points = [
            RtParams::new(30.0, 1e5).unwrap(),
            RtParams::new(80.0, 2e5).unwrap(),
        ];
        let r = monolithic_agreement(&p, &points, 1.0, 1.0, 10_000, 1);
        assert_eq!(r.cells.len(), 2);
        assert!(
            r.worst_rel_error() < 0.08,
            "monolithic agreement: {:#?}",
            r.cells
        );
    }

    #[test]
    fn infeasible_points_are_skipped() {
        let p = blast();
        let points = [RtParams::new(1.0, 3.5e5).unwrap()]; // mono-infeasible
        let r = monolithic_agreement(&p, &points, 1.0, 1.0, 1_000, 1);
        assert!(r.cells.is_empty());
        assert_eq!(r.worst_rel_error(), 0.0);
    }

    #[test]
    fn rel_error_formula() {
        let c = AgreementCell {
            tau0: 1.0,
            deadline: 1.0,
            predicted: 0.5,
            measured: 0.55,
        };
        assert!((c.rel_error() - 0.1).abs() < 1e-12);
    }
}
