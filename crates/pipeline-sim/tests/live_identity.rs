//! Live-metrics layer invariants: publishing into a registry must not
//! change a single simulated bit, and the registry's totals must agree
//! with the returned [`pipeline_sim::SimMetrics`].

use dataflow_model::{GainModel, Perturbation, PipelineSpec, PipelineSpecBuilder, RtParams};
use pipeline_sim::{
    robustness_report, robustness_report_live, run_seeds_enforced_perturbed,
    run_seeds_enforced_perturbed_live, simulate_enforced, simulate_enforced_live,
    simulate_enforced_perturbed, simulate_enforced_perturbed_live, simulate_monolithic,
    simulate_monolithic_live, MitigationPolicy, SimConfig, SimLiveMetrics, SimMetrics,
};
use rtsdf_core::{EnforcedWaitsProblem, MonolithicProblem, SolveMethod};

fn blast() -> PipelineSpec {
    PipelineSpecBuilder::new(128)
        .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
        .stage(
            "s1",
            955.0,
            GainModel::CensoredPoisson {
                mean: 1.920,
                cap: 16,
            },
        )
        .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
        .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
        .build()
        .unwrap()
}

fn assert_bit_identical(a: &SimMetrics, b: &SimMetrics) {
    assert_eq!(a.items_arrived, b.items_arrived);
    assert_eq!(a.items_completed, b.items_completed);
    assert_eq!(a.items_dropped, b.items_dropped);
    assert_eq!(a.deadline_misses, b.deadline_misses);
    assert_eq!(a.items_shed, b.items_shed);
    assert_eq!(a.resolves, b.resolves);
    assert_eq!(a.active_fraction, b.active_fraction);
    assert_eq!(a.latency.mean(), b.latency.mean());
    assert_eq!(a.latency.variance(), b.latency.variance());
    assert_eq!(a.max_queue_depth, b.max_queue_depth);
    assert_eq!(a.horizon, b.horizon);
}

#[test]
fn enforced_live_is_bit_identical_and_registry_matches_metrics() {
    let p = blast();
    let params = RtParams::new(10.0, 1e5).unwrap();
    let sched = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0])
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let cfg = SimConfig::quick(10.0, 7, 3_000);
    let plain = simulate_enforced(&p, &sched, 1e5, &cfg);

    let live = SimLiveMetrics::new(p.len(), 1);
    let h = live.handle(0);
    let traced = simulate_enforced_live(&p, &sched, 1e5, &cfg, &h);
    assert_bit_identical(&plain, &traced);

    let snap = live.registry().snapshot();
    assert_eq!(
        snap.total("rtsdf_sim_items_arrived") as u64,
        traced.items_arrived
    );
    assert_eq!(
        snap.total("rtsdf_sim_items_completed") as u64,
        traced.items_completed
    );
    assert_eq!(
        snap.total("rtsdf_sim_items_dropped") as u64,
        traced.items_dropped
    );
    assert_eq!(snap.total("rtsdf_sim_items_shed") as u64, 0);
    // The final tick published the run's queue high-water marks; they
    // must match the metric struct exactly, stage by stage.
    let hwm = snap.family("rtsdf_sim_queue_depth_hwm").unwrap();
    let depths: Vec<u64> = hwm.samples.iter().map(|s| s.value as u64).collect();
    assert_eq!(depths, traced.max_queue_depth);
}

#[test]
fn enforced_stress_live_matches_shed_and_drop_counters() {
    let p = blast();
    let params = RtParams::new(10.0, 1e5).unwrap();
    let sched = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0])
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let cfg = SimConfig::quick(10.0, 3, 3_000);
    let perturb = Perturbation::standard(1.5);
    let policy = MitigationPolicy::full();
    let plain = simulate_enforced_perturbed(&p, &sched, 1e5, &cfg, &perturb, &policy);

    let live = SimLiveMetrics::new(p.len(), 1);
    let h = live.handle(0);
    let traced = simulate_enforced_perturbed_live(&p, &sched, 1e5, &cfg, &perturb, &policy, &h);
    assert_bit_identical(&plain, &traced);

    let snap = live.registry().snapshot();
    assert_eq!(snap.total("rtsdf_sim_items_shed") as u64, traced.items_shed);
    assert_eq!(
        snap.total("rtsdf_sim_items_dropped") as u64,
        traced.items_dropped
    );
    // Arrivals include shed items: they arrived, then were rejected.
    assert_eq!(
        snap.total("rtsdf_sim_items_arrived") as u64,
        traced.items_arrived
    );
}

#[test]
fn monolithic_live_is_bit_identical_and_registry_matches_metrics() {
    let p = blast();
    let params = RtParams::new(50.0, 1e5).unwrap();
    let sched = MonolithicProblem::new(&p, params, 1.0, 1.0)
        .solve()
        .unwrap();
    let cfg = SimConfig::quick(50.0, 5, 4_000);
    let plain = simulate_monolithic(&p, &sched, 1e5, &cfg);

    let live = SimLiveMetrics::new(p.len(), 1);
    let h = live.handle(0);
    let traced = simulate_monolithic_live(&p, &sched, 1e5, &cfg, &h);
    assert_bit_identical(&plain, &traced);

    let snap = live.registry().snapshot();
    assert_eq!(
        snap.total("rtsdf_sim_items_arrived") as u64,
        traced.items_arrived
    );
    assert_eq!(
        snap.total("rtsdf_sim_items_completed") as u64,
        traced.items_completed
    );
    // Only the head stage queues in the monolithic strategy.
    let hwm = snap.family("rtsdf_sim_queue_depth_hwm").unwrap();
    assert_eq!(hwm.samples[0].value as u64, traced.max_queue_depth[0]);
    assert!(hwm.samples[1..].iter().all(|s| s.value == 0.0));
}

#[test]
fn multi_seed_live_counts_runs_and_preserves_results() {
    let p = blast();
    let params = RtParams::new(10.0, 1e5).unwrap();
    let sched = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0])
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let cfg = SimConfig::quick(10.0, 0, 800);
    let perturb = Perturbation::standard(0.5);
    let policy = MitigationPolicy::full();
    let plain = run_seeds_enforced_perturbed(&p, &sched, 1e5, &cfg, 4, &perturb, &policy);

    let live = SimLiveMetrics::new(p.len(), rtsdf_core::worker_threads());
    live.set_runs_total(4);
    let traced =
        run_seeds_enforced_perturbed_live(&p, &sched, 1e5, &cfg, 4, &perturb, &policy, Some(&live));
    assert_eq!(plain.runs.len(), traced.runs.len());
    for (a, b) in plain.runs.iter().zip(&traced.runs) {
        assert_bit_identical(a, b);
    }
    assert_eq!(live.runs_completed(), 4);
    assert_eq!(live.runs_total(), 4);
    let total_arrived: u64 = traced.runs.iter().map(|r| r.items_arrived).sum();
    let (arrived, _, _) = live.item_counts();
    assert_eq!(arrived, total_arrived);
}

#[test]
fn robustness_live_schedules_every_cell_and_matches_plain() {
    let p = blast();
    let params = RtParams::new(10.0, 1e5).unwrap();
    let enforced = EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0])
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let mono = MonolithicProblem::new(&p, params, 1.0, 1.0)
        .solve()
        .unwrap();
    let cfg = SimConfig::quick(10.0, 0, 500);
    let perturb = Perturbation::standard(1.0);
    let plain = robustness_report(
        &p,
        &enforced,
        &mono,
        1e5,
        &cfg,
        2,
        &perturb,
        &[0.0, 1.0],
        0.95,
    );

    let live = SimLiveMetrics::new(p.len(), rtsdf_core::worker_threads());
    let traced = robustness_report_live(
        &p,
        &enforced,
        &mono,
        1e5,
        &cfg,
        2,
        &perturb,
        &[0.0, 1.0],
        0.95,
        Some(&live),
    );
    // 2 levels × 3 strategies × 2 seeds.
    assert_eq!(live.runs_total(), 12);
    assert_eq!(live.runs_completed(), 12);
    assert_eq!(plain.enforced_margin, traced.enforced_margin);
    for (a, b) in plain.points.iter().zip(&traced.points) {
        assert_eq!(
            a.enforced_mitigated.total_misses,
            b.enforced_mitigated.total_misses
        );
        assert_eq!(a.monolithic.total_misses, b.monolithic.total_misses);
    }
}
