//! Property-based tests for the pipeline simulator: conservation laws
//! and metric sanity on randomized pipelines and schedules.

use dataflow_model::{GainModel, Perturbation, PipelineSpec, PipelineSpecBuilder, RtParams};
use des::obs::ObsConfig;
use obs_trace::{ForensicsConfig, TraceConfig, TraceLog};
use pipeline_sim::{
    simulate_enforced, simulate_enforced_observed, simulate_enforced_perturbed,
    simulate_enforced_traced, simulate_monolithic, simulate_monolithic_observed,
    simulate_monolithic_perturbed, simulate_monolithic_traced, MitigationPolicy, SimConfig,
};
use proptest::prelude::*;
use rtsdf_core::{EnforcedWaitsProblem, MonolithicSchedule, SolveMethod};

/// Shared invariant for both simulators: every recorded visit's
/// enforced-wait, queue-wait, and service components are non-negative,
/// back-to-back, and exactly partition its sojourn (no gaps, no
/// overlaps). `tol` covers float accumulation in the monolithic
/// simulator's continuous clock; the enforced simulator runs on an
/// integer cycle clock and must be exact.
fn assert_visits_partition(log: &TraceLog, tol: f64) -> Result<(), TestCaseError> {
    for v in &log.visits {
        prop_assert!(
            v.enqueued <= v.eligible && v.eligible <= v.consumed && v.consumed <= v.done,
            "visit timestamps out of order: {v:?}"
        );
        let parts = v.enforced_wait() + v.queue_wait() + v.service();
        prop_assert!(
            (parts - v.sojourn()).abs() <= tol,
            "components {parts} != sojourn {} for {v:?}",
            v.sojourn()
        );
        // Back-to-back: each component starts where the previous ended,
        // by construction of the four timestamps — re-derive the
        // boundaries to make the no-gap/no-overlap claim explicit.
        prop_assert!((v.enqueued + v.enforced_wait() - v.eligible).abs() <= tol);
        prop_assert!((v.eligible + v.queue_wait() - v.consumed).abs() <= tol);
        prop_assert!((v.consumed + v.service() - v.done).abs() <= tol);
    }
    Ok(())
}

/// Bounded two-point gain with the requested mean: `k` with probability
/// `gain / k`, else `0`, for `k = ceil(gain)`.
fn two_point(gain: f64) -> GainModel {
    let k = gain.ceil().max(1.0) as u32;
    let p_hi = gain / k as f64;
    GainModel::Empirical {
        pmf: vec![(0, 1.0 - p_hi), (k, p_hi)],
    }
}

fn pipeline() -> impl Strategy<Value = PipelineSpec> {
    prop::collection::vec((20.0..500.0f64, 0.2..2.0f64), 2..=4).prop_map(|stages| {
        let mut b = PipelineSpecBuilder::new(32);
        for (i, (t, gain)) in stages.into_iter().enumerate() {
            b = b.stage(format!("s{i}"), t, two_point(gain));
        }
        b.build().expect("valid")
    })
}

/// Random fan-out/fan-in DAG: a diamond `0 -> {1, 2} -> 3` with random
/// service times, per-edge gains, and routing weights, followed by an
/// optional linear tail. Every topology is acyclic and single-source by
/// construction but exercises both split and merge paths.
fn topology() -> impl Strategy<Value = dataflow_model::Topology> {
    (
        prop::collection::vec((20.0..300.0f64, 0.2..1.5f64), 4..=6),
        prop::collection::vec(0.2..1.0f64, 2),
    )
        .prop_map(|(nodes, weights)| {
            let n = nodes.len();
            let mut b = dataflow_model::TopologyBuilder::new(32);
            for (i, (t, _)) in nodes.iter().enumerate() {
                b = b.node(format!("n{i}"), *t);
            }
            // Diamond core: split at the source, merge at node 3.
            b = b
                .edge(0, 1, two_point(nodes[0].1), weights[0])
                .edge(0, 2, two_point(nodes[1].1), weights[1])
                .edge(1, 3, two_point(nodes[1].1), 1.0)
                .edge(2, 3, two_point(nodes[2].1), 1.0);
            // Linear tail after the merge, if any nodes remain.
            for (i, (_, gain)) in nodes.iter().enumerate().take(n - 1).skip(3) {
                b = b.edge(i, i + 1, two_point(*gain), 1.0);
            }
            b.build().expect("valid diamond")
        })
}

/// A stable, generously-deadlined operating point for an arbitrary
/// topology, mirroring the chain recipe: the arrival interval dominates
/// every node's minimal period weighted by its total gain.
fn topology_operating_point(t: &dataflow_model::Topology, slack: f64) -> RtParams {
    let xmin = rtsdf_core::topology_minimal_periods(t);
    let gains = t.total_gains();
    let v = t.vector_width() as f64;
    let tau0 = xmin
        .iter()
        .zip(&gains)
        .map(|(x, g)| x * g / v)
        .fold(0.0f64, f64::max)
        * slack;
    let min_d: f64 = xmin.iter().sum();
    RtParams::new(tau0, min_d * 20.0).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn enforced_simulation_conserves_items(
        p in pipeline(),
        seed in 0u64..1000,
        tau_scale in 1.5..10.0f64,
    ) {
        // A stable, generously-deadlined operating point.
        let xmin = rtsdf_core::minimal_periods(&p);
        let tau0 = xmin[0] / p.vector_width() as f64 * tau_scale;
        let b: Vec<f64> = p.mean_gains().iter().map(|g| (g.ceil() + 2.0).max(3.0)).collect();
        let min_d: f64 = xmin.iter().zip(&b).map(|(x, bi)| x * bi).sum();
        let d = min_d * 20.0;
        let params = RtParams::new(tau0, d).unwrap();
        let sched = EnforcedWaitsProblem::new(&p, params, b)
            .solve(SolveMethod::WaterFilling)
            .expect("constructed feasible");
        let cfg = SimConfig::quick(tau0, seed, 500);
        let m = simulate_enforced(&p, &sched, d, &cfg);
        // Conservation: every arrived input resolves (the schedule is
        // stable and the deadline generous), and the arrived count is
        // always the sum of completions and drops.
        prop_assert!(!m.truncated);
        prop_assert_eq!(m.items_completed, m.items_arrived);
        prop_assert_eq!(m.items_completed + m.items_dropped, m.items_arrived);
        prop_assert!(m.active_fraction > 0.0 && m.active_fraction <= 1.0 + 1e-9);
        prop_assert!(m.active_fraction_nonempty <= m.active_fraction + 1e-12);
        prop_assert!(m.latency.count() == m.items_arrived);
        // Occupancy is a valid fraction everywhere.
        for o in &m.occupancy {
            prop_assert!((0.0..=1.0).contains(&o.mean_occupancy()));
        }
        // Queue depth in items implies backlog in vectors.
        for (dep, vecs) in m.max_queue_depth.iter().zip(&m.max_backlog_vectors) {
            prop_assert!((vecs - *dep as f64 / p.vector_width() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn monolithic_simulation_conserves_items(
        p in pipeline(),
        seed in 0u64..1000,
        m_block in 8u64..200,
    ) {
        let tau0 = p.total_service_time(); // slow arrivals: always stable
        let sched = MonolithicSchedule {
            block_size: m_block,
            block_time: 0.0,
            active_fraction: 0.0,
            latency_bound: 0.0,
            b: 1.0,
            s: 1.0,
            telemetry: None,
        };
        let cfg = SimConfig::quick(tau0, seed, 700);
        let m = simulate_monolithic(&p, &sched, 1e18, &cfg);
        prop_assert!(!m.truncated);
        prop_assert_eq!(m.items_completed, 700);
        prop_assert_eq!(m.items_completed + m.items_dropped, m.items_arrived);
        prop_assert_eq!(m.deadline_misses, 0);
        prop_assert!(m.active_fraction > 0.0 && m.active_fraction <= 1.0 + 1e-9);
    }

    #[test]
    fn observability_never_perturbs_the_run(
        p in pipeline(),
        seed in 0u64..200,
    ) {
        // The obs layer is measurement only: an observed run must report
        // bit-identical metrics to a plain run, and its counters must
        // obey the same conservation law as the metrics.
        let xmin = rtsdf_core::minimal_periods(&p);
        let tau0 = xmin[0] / p.vector_width() as f64 * 3.0;
        let b: Vec<f64> = p.mean_gains().iter().map(|g| (g.ceil() + 2.0).max(3.0)).collect();
        let min_d: f64 = xmin.iter().zip(&b).map(|(x, bi)| x * bi).sum();
        let params = RtParams::new(tau0, min_d * 10.0).unwrap();
        let sched = EnforcedWaitsProblem::new(&p, params, b)
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let cfg = SimConfig::quick(tau0, seed, 300);
        let plain = simulate_enforced(&p, &sched, params.deadline, &cfg);
        let observed =
            simulate_enforced_observed(&p, &sched, params.deadline, &cfg, ObsConfig::default());
        prop_assert_eq!(plain.active_fraction, observed.active_fraction);
        prop_assert_eq!(plain.deadline_misses, observed.deadline_misses);
        prop_assert_eq!(plain.horizon, observed.horizon);
        prop_assert_eq!(&plain.max_queue_depth, &observed.max_queue_depth);
        let report = observed.obs.expect("report attached");
        prop_assert_eq!(report.counters.completions, observed.items_completed);
        prop_assert_eq!(report.counters.drops, observed.items_dropped);
        // Everything enqueued is either consumed or still in a queue at
        // the end of the run; with a stable schedule and generous
        // deadline the queues drain completely.
        prop_assert_eq!(report.counters.items_enqueued, report.counters.items_consumed);
    }

    #[test]
    fn simulation_is_deterministic_per_seed(
        p in pipeline(),
        seed in 0u64..100,
    ) {
        let xmin = rtsdf_core::minimal_periods(&p);
        let tau0 = xmin[0] / p.vector_width() as f64 * 3.0;
        let b: Vec<f64> = p.mean_gains().iter().map(|g| (g.ceil() + 2.0).max(3.0)).collect();
        let min_d: f64 = xmin.iter().zip(&b).map(|(x, bi)| x * bi).sum();
        let params = RtParams::new(tau0, min_d * 10.0).unwrap();
        let sched = EnforcedWaitsProblem::new(&p, params, b)
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let cfg = SimConfig::quick(tau0, seed, 300);
        let a = simulate_enforced(&p, &sched, params.deadline, &cfg);
        let b2 = simulate_enforced(&p, &sched, params.deadline, &cfg);
        prop_assert_eq!(a.active_fraction, b2.active_fraction);
        prop_assert_eq!(a.deadline_misses, b2.deadline_misses);
        prop_assert_eq!(a.horizon, b2.horizon);
        prop_assert_eq!(a.max_queue_depth, b2.max_queue_depth);
    }

    #[test]
    fn longer_waits_reduce_measured_activity(
        p in pipeline(),
        seed in 0u64..100,
    ) {
        // Compare zero waits against doubled periods at the same load.
        let xmin = rtsdf_core::minimal_periods(&p);
        let tau0 = xmin[0] / p.vector_width() as f64 * 4.0;
        let mk = |scale: f64| rtsdf_core::WaitSchedule {
            waits: p.service_times().iter().map(|t| t * (scale - 1.0)).collect(),
            periods: p.service_times().iter().map(|t| t * scale).collect(),
            active_fraction: 1.0 / scale,
            backlog_factors: vec![1.0; p.len()],
            latency_bound: 0.0,
            method: SolveMethod::WaterFilling,
            telemetry: None,
        };
        let cfg = SimConfig::quick(tau0, seed, 400);
        let fast = simulate_enforced(&p, &mk(1.0), 1e18, &cfg);
        let slow = simulate_enforced(&p, &mk(2.0), 1e18, &cfg);
        prop_assert!(
            slow.active_fraction < fast.active_fraction + 1e-9,
            "doubling periods must not increase activity: {} vs {}",
            slow.active_fraction,
            fast.active_fraction
        );
    }

    #[test]
    fn enforced_trace_partitions_every_sojourn(
        p in pipeline(),
        seed in 0u64..500,
    ) {
        let xmin = rtsdf_core::minimal_periods(&p);
        let tau0 = xmin[0] / p.vector_width() as f64 * 3.0;
        let b: Vec<f64> = p.mean_gains().iter().map(|g| (g.ceil() + 2.0).max(3.0)).collect();
        let min_d: f64 = xmin.iter().zip(&b).map(|(x, bi)| x * bi).sum();
        let params = RtParams::new(tau0, min_d * 10.0).unwrap();
        let sched = EnforcedWaitsProblem::new(&p, params, b)
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let cfg = SimConfig::quick(tau0, seed, 300);
        let plain = simulate_enforced(&p, &sched, params.deadline, &cfg);
        let (traced, log) = simulate_enforced_traced(
            &p,
            &sched,
            params.deadline,
            &cfg,
            TraceConfig::default(),
            &ForensicsConfig::default(),
        );
        // Tracing is measurement only.
        prop_assert_eq!(plain.active_fraction, traced.active_fraction);
        prop_assert_eq!(plain.deadline_misses, traced.deadline_misses);
        prop_assert_eq!(plain.horizon, traced.horizon);
        // Integer cycle clock: the partition must be *exact*.
        assert_visits_partition(&log, 0.0)?;
        prop_assert_eq!(log.fates.len() as u64, traced.items_arrived);
        for fate in &log.fates {
            // Lifelines are causally closed: the head-stage visit starts
            // at the input's arrival, every later visit starts exactly
            // where an upstream firing delivered it (no gaps between
            // stages), and the completion instant is one of the lineage's
            // firing completions.
            let visits: Vec<_> =
                log.visits.iter().filter(|v| v.origin == fate.origin).collect();
            prop_assert!(!visits.is_empty(), "input {} never consumed", fate.origin);
            for v in &visits {
                if v.stage == 0 {
                    prop_assert_eq!(v.enqueued, fate.arrival);
                } else {
                    prop_assert!(
                        visits
                            .iter()
                            .any(|u| u.stage + 1 == v.stage && u.done == v.enqueued),
                        "stage-{} visit at {} has no upstream delivery",
                        v.stage,
                        v.enqueued
                    );
                }
            }
            if let Some(c) = fate.completion {
                prop_assert!(visits.iter().any(|v| v.done == c));
            }
        }
    }

    #[test]
    fn zero_intensity_perturbation_is_identity(
        p in pipeline(),
        seed in 0u64..200,
    ) {
        // Fault injection at intensity 0 must be *bit-identical* to the
        // unperturbed simulators: every multiplier is exactly 1, every
        // fault probability exactly 0, and fault RNG draws come from
        // substreams disjoint from the model's.
        let xmin = rtsdf_core::minimal_periods(&p);
        let tau0 = xmin[0] / p.vector_width() as f64 * 3.0;
        let b: Vec<f64> = p.mean_gains().iter().map(|g| (g.ceil() + 2.0).max(3.0)).collect();
        let min_d: f64 = xmin.iter().zip(&b).map(|(x, bi)| x * bi).sum();
        let params = RtParams::new(tau0, min_d * 10.0).unwrap();
        let sched = EnforcedWaitsProblem::new(&p, params, b)
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let cfg = SimConfig::quick(tau0, seed, 300);
        let zero = Perturbation::standard(1.0).at_intensity(0.0);

        let plain = simulate_enforced(&p, &sched, params.deadline, &cfg);
        let perturbed = simulate_enforced_perturbed(
            &p, &sched, params.deadline, &cfg, &zero, &MitigationPolicy::none(),
        );
        prop_assert_eq!(plain.active_fraction, perturbed.active_fraction);
        prop_assert_eq!(plain.deadline_misses, perturbed.deadline_misses);
        prop_assert_eq!(plain.items_completed, perturbed.items_completed);
        prop_assert_eq!(plain.horizon, perturbed.horizon);
        prop_assert_eq!(&plain.max_queue_depth, &perturbed.max_queue_depth);
        prop_assert_eq!(plain.latency.mean(), perturbed.latency.mean());
        prop_assert_eq!(perturbed.items_shed, 0);
        prop_assert_eq!(perturbed.resolves, 0);

        let mono_sched = MonolithicSchedule {
            block_size: 32,
            block_time: 0.0,
            active_fraction: 0.0,
            latency_bound: 0.0,
            b: 1.0,
            s: 1.0,
            telemetry: None,
        };
        let mono_tau0 = p.total_service_time();
        let mono_cfg = SimConfig::quick(mono_tau0, seed, 300);
        let mono_plain = simulate_monolithic(&p, &mono_sched, 1e18, &mono_cfg);
        let mono_perturbed =
            simulate_monolithic_perturbed(&p, &mono_sched, 1e18, &mono_cfg, &zero);
        prop_assert_eq!(mono_plain.active_fraction, mono_perturbed.active_fraction);
        prop_assert_eq!(mono_plain.deadline_misses, mono_perturbed.deadline_misses);
        prop_assert_eq!(mono_plain.items_completed, mono_perturbed.items_completed);
        prop_assert_eq!(mono_plain.horizon, mono_perturbed.horizon);
        prop_assert_eq!(mono_plain.latency.mean(), mono_perturbed.latency.mean());
    }

    #[test]
    fn shedding_conserves_items(
        p in pipeline(),
        seed in 0u64..200,
        intensity in 0.5..3.0f64,
    ) {
        // Under load shedding every arrived input has exactly one fate:
        // shed at admission, completed, or dropped at the horizon.
        let xmin = rtsdf_core::minimal_periods(&p);
        let tau0 = xmin[0] / p.vector_width() as f64 * 2.0;
        let b: Vec<f64> = p.mean_gains().iter().map(|g| g.ceil().max(1.0)).collect();
        let min_d: f64 = xmin.iter().zip(&b).map(|(x, bi)| x * bi).sum();
        let params = RtParams::new(tau0, min_d * 3.0).unwrap();
        let sched = EnforcedWaitsProblem::new(&p, params, b)
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let cfg = SimConfig::quick(tau0, seed, 300);
        let m = simulate_enforced_perturbed(
            &p,
            &sched,
            params.deadline,
            &cfg,
            &Perturbation::standard(intensity),
            &MitigationPolicy::full(),
        );
        prop_assert_eq!(
            m.items_shed + m.items_completed + m.items_dropped,
            m.items_arrived,
            "shed {} + completed {} + dropped {} != arrived {}",
            m.items_shed, m.items_completed, m.items_dropped, m.items_arrived
        );
        prop_assert!(m.items_shed <= m.items_arrived);
        prop_assert!(m.items_admitted() == m.items_arrived - m.items_shed);
        let r = m.admitted_miss_rate();
        prop_assert!((0.0..=1.0).contains(&r), "admitted miss rate {r}");
    }

    #[test]
    fn monolithic_trace_partitions_every_sojourn(
        p in pipeline(),
        seed in 0u64..500,
        m_block in 8u64..200,
    ) {
        let tau0 = p.total_service_time();
        let sched = MonolithicSchedule {
            block_size: m_block,
            block_time: 0.0,
            active_fraction: 0.0,
            latency_bound: 0.0,
            b: 1.0,
            s: 1.0,
            telemetry: None,
        };
        let cfg = SimConfig::quick(tau0, seed, 400);
        let plain = simulate_monolithic(&p, &sched, 1e18, &cfg);
        let (traced, log) = simulate_monolithic_traced(
            &p,
            &sched,
            1e18,
            &cfg,
            TraceConfig::default(),
            &ForensicsConfig::default(),
        );
        prop_assert_eq!(plain.active_fraction, traced.active_fraction);
        prop_assert_eq!(plain.deadline_misses, traced.deadline_misses);
        // Continuous clock: allow float accumulation noise.
        assert_visits_partition(&log, 1e-6)?;
        // One visit per completed input; its sojourn is exactly the
        // input's end-to-end latency, so the three components explain
        // 100 % of every latency.
        prop_assert_eq!(log.visits.len() as u64, traced.items_completed);
        prop_assert_eq!(log.fates.len() as u64, traced.items_arrived);
        for v in &log.visits {
            let fate = &log.fates[v.origin as usize];
            prop_assert_eq!(v.enqueued, fate.arrival);
            prop_assert_eq!(Some(v.done), fate.completion);
        }
    }
}

// ---------------------------------------------------------------------
// Bit-identity of the vectorized (SoA) simulators against the frozen
// scalar references in `pipeline_sim::reference`. Serializing the full
// SimMetrics (latency moments, occupancy, queue depths, and — where
// enabled — the complete ObsReport with its histograms and counters)
// and comparing the JSON strings checks every reported value bit for
// bit, not just a few headline numbers.

fn metrics_json(m: &pipeline_sim::metrics::SimMetrics) -> String {
    serde_json::to_string(m).expect("metrics serialize")
}

/// Perturbation intensity for the stress comparisons: `0.0` must be in
/// the support (intensity zero is the documented bit-identity boundary
/// of the fault layer), alongside genuinely stressful settings.
fn intensity() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), 0.3..2.5f64]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vectorized_enforced_matches_scalar_reference(
        p in pipeline(),
        seed in 0u64..1000,
        intensity in intensity(),
    ) {
        use des::obs::ObsSink;
        use pipeline_sim::reference::simulate_enforced_reference;

        let xmin = rtsdf_core::minimal_periods(&p);
        let tau0 = xmin[0] / p.vector_width() as f64 * 2.5;
        let b: Vec<f64> = p.mean_gains().iter().map(|g| (g.ceil() + 1.0).max(2.0)).collect();
        let min_d: f64 = xmin.iter().zip(&b).map(|(x, bi)| x * bi).sum();
        let params = RtParams::new(tau0, min_d * 5.0).unwrap();
        let sched = EnforcedWaitsProblem::new(&p, params, b)
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let cfg = SimConfig::quick(tau0, seed, 400);

        // Observed run: SimMetrics + full ObsReport must agree.
        let live = simulate_enforced_observed(
            &p, &sched, params.deadline, &cfg, ObsConfig::default(),
        );
        let mut sink = ObsSink::new(p.len(), ObsConfig::default());
        let mut oracle = simulate_enforced_reference(
            &p, &sched, params.deadline, &cfg, Some(&mut sink), None,
        );
        oracle.obs = Some(sink.report());
        prop_assert_eq!(metrics_json(&live), metrics_json(&oracle));

        // Stressed run (full mitigation policy: shedding + escalation).
        let perturb = Perturbation::standard(1.0).at_intensity(intensity);
        let policy = MitigationPolicy::full();
        let live = simulate_enforced_perturbed(
            &p, &sched, params.deadline, &cfg, &perturb, &policy,
        );
        let oracle = simulate_enforced_reference(
            &p, &sched, params.deadline, &cfg, None, Some((&perturb, &policy)),
        );
        prop_assert_eq!(metrics_json(&live), metrics_json(&oracle));
    }

    #[test]
    fn vectorized_monolithic_matches_scalar_reference(
        p in pipeline(),
        seed in 0u64..1000,
        m_block in 8u64..128,
        intensity in intensity(),
    ) {
        use des::obs::ObsSink;
        use pipeline_sim::reference::simulate_monolithic_reference;

        let tau0 = p.total_service_time();
        let sched = MonolithicSchedule {
            block_size: m_block,
            block_time: 0.0,
            active_fraction: 0.0,
            latency_bound: 0.0,
            b: 1.0,
            s: 1.0,
            telemetry: None,
        };
        let cfg = SimConfig::quick(tau0, seed, 400);
        let deadline = 1e15;

        let live = simulate_monolithic_observed(
            &p, &sched, deadline, &cfg, ObsConfig::default(),
        );
        let mut sink = ObsSink::new(p.len(), ObsConfig::default());
        let mut oracle = simulate_monolithic_reference(
            &p, &sched, deadline, &cfg, Some(&mut sink), None,
        );
        oracle.obs = Some(sink.report());
        prop_assert_eq!(metrics_json(&live), metrics_json(&oracle));

        let perturb = Perturbation::standard(1.0).at_intensity(intensity);
        let live = simulate_monolithic_perturbed(&p, &sched, deadline, &cfg, &perturb);
        let oracle = simulate_monolithic_reference(
            &p, &sched, deadline, &cfg, None, Some(&perturb),
        );
        prop_assert_eq!(metrics_json(&live), metrics_json(&oracle));
    }
}

// ---------------------------------------------------------------------
// The DAG generalization. Two laws: (1) any linear chain expressed as a
// `Topology` is *bit-identical* — serialized SimMetrics plus ObsReport —
// to the frozen scalar references, so the topology routing layer adds
// exactly nothing on chains; (2) on genuine fan-out/fan-in topologies
// every arrived input has exactly one fate (completed, dropped, or shed).

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chain_as_topology_enforced_matches_scalar_reference(
        p in pipeline(),
        seed in 0u64..1000,
        intensity in intensity(),
    ) {
        use des::obs::ObsSink;
        use pipeline_sim::reference::simulate_enforced_reference;
        use pipeline_sim::{
            simulate_enforced_topology_observed, simulate_enforced_topology_perturbed,
        };

        let t = dataflow_model::Topology::chain(&p);
        let xmin = rtsdf_core::minimal_periods(&p);
        let tau0 = xmin[0] / p.vector_width() as f64 * 2.5;
        let b: Vec<f64> = p.mean_gains().iter().map(|g| (g.ceil() + 1.0).max(2.0)).collect();
        let min_d: f64 = xmin.iter().zip(&b).map(|(x, bi)| x * bi).sum();
        let params = RtParams::new(tau0, min_d * 5.0).unwrap();
        let sched = EnforcedWaitsProblem::new(&p, params, b)
            .solve(SolveMethod::WaterFilling)
            .unwrap();
        let cfg = SimConfig::quick(tau0, seed, 400);

        // Observed run: SimMetrics + full ObsReport must agree.
        let live = simulate_enforced_topology_observed(
            &t, &sched, params.deadline, &cfg, ObsConfig::default(),
        );
        let mut sink = ObsSink::new(p.len(), ObsConfig::default());
        let mut oracle = simulate_enforced_reference(
            &p, &sched, params.deadline, &cfg, Some(&mut sink), None,
        );
        oracle.obs = Some(sink.report());
        prop_assert_eq!(metrics_json(&live), metrics_json(&oracle));

        // Stressed run, including intensity 0.
        let perturb = Perturbation::standard(1.0).at_intensity(intensity);
        let policy = MitigationPolicy::full();
        let live = simulate_enforced_topology_perturbed(
            &t, &sched, params.deadline, &cfg, &perturb, &policy,
        );
        let oracle = simulate_enforced_reference(
            &p, &sched, params.deadline, &cfg, None, Some((&perturb, &policy)),
        );
        prop_assert_eq!(metrics_json(&live), metrics_json(&oracle));
    }

    #[test]
    fn chain_as_topology_monolithic_matches_scalar_reference(
        p in pipeline(),
        seed in 0u64..1000,
        m_block in 8u64..128,
        intensity in intensity(),
    ) {
        use des::obs::ObsSink;
        use pipeline_sim::reference::simulate_monolithic_reference;
        use pipeline_sim::{
            simulate_monolithic_topology_observed, simulate_monolithic_topology_perturbed,
        };

        let t = dataflow_model::Topology::chain(&p);
        let tau0 = p.total_service_time();
        let sched = MonolithicSchedule {
            block_size: m_block,
            block_time: 0.0,
            active_fraction: 0.0,
            latency_bound: 0.0,
            b: 1.0,
            s: 1.0,
            telemetry: None,
        };
        let cfg = SimConfig::quick(tau0, seed, 400);
        let deadline = 1e15;

        let live = simulate_monolithic_topology_observed(
            &t, &sched, deadline, &cfg, ObsConfig::default(),
        );
        let mut sink = ObsSink::new(p.len(), ObsConfig::default());
        let mut oracle = simulate_monolithic_reference(
            &p, &sched, deadline, &cfg, Some(&mut sink), None,
        );
        oracle.obs = Some(sink.report());
        prop_assert_eq!(metrics_json(&live), metrics_json(&oracle));

        let perturb = Perturbation::standard(1.0).at_intensity(intensity);
        let live = simulate_monolithic_topology_perturbed(&t, &sched, deadline, &cfg, &perturb);
        let oracle = simulate_monolithic_reference(
            &p, &sched, deadline, &cfg, None, Some(&perturb),
        );
        prop_assert_eq!(metrics_json(&live), metrics_json(&oracle));
    }

    #[test]
    fn dag_enforced_simulation_conserves_items(
        t in topology(),
        seed in 0u64..1000,
        slack in 2.0..6.0f64,
    ) {
        use pipeline_sim::simulate_enforced_topology;

        let params = topology_operating_point(&t, slack);
        let b: Vec<f64> = rtsdf_core::EnforcedDagProblem::optimistic_backlog(&t)
            .iter()
            .map(|x| x + 2.0)
            .collect();
        let sched = rtsdf_core::EnforcedDagProblem::new(&t, params, b)
            .solve()
            .expect("generous operating point is feasible");
        let cfg = SimConfig::quick(params.tau0, seed, 400);
        let m = simulate_enforced_topology(&t, &sched, params.deadline, &cfg);
        prop_assert!(!m.truncated);
        prop_assert_eq!(
            m.items_completed + m.items_dropped,
            m.items_arrived,
            "completed {} + dropped {} != arrived {}",
            m.items_completed, m.items_dropped, m.items_arrived
        );
        prop_assert!(m.active_fraction > 0.0 && m.active_fraction <= 1.0 + 1e-9);
        prop_assert!(m.latency.count() == m.items_arrived);
        for o in &m.occupancy {
            prop_assert!((0.0..=1.0).contains(&o.mean_occupancy()));
        }
    }

    #[test]
    fn dag_shedding_conserves_items(
        t in topology(),
        seed in 0u64..500,
        intensity in 0.5..2.5f64,
    ) {
        use pipeline_sim::simulate_enforced_topology_perturbed;

        let params = topology_operating_point(&t, 2.0);
        let b: Vec<f64> = rtsdf_core::EnforcedDagProblem::optimistic_backlog(&t)
            .iter()
            .map(|x| x + 1.0)
            .collect();
        let sched = rtsdf_core::EnforcedDagProblem::new(&t, params, b)
            .solve()
            .expect("generous operating point is feasible");
        let cfg = SimConfig::quick(params.tau0, seed, 300);
        let m = simulate_enforced_topology_perturbed(
            &t,
            &sched,
            params.deadline,
            &cfg,
            &Perturbation::standard(intensity),
            &MitigationPolicy::full(),
        );
        prop_assert_eq!(
            m.items_shed + m.items_completed + m.items_dropped,
            m.items_arrived,
            "shed {} + completed {} + dropped {} != arrived {}",
            m.items_shed, m.items_completed, m.items_dropped, m.items_arrived
        );
        prop_assert!(m.items_shed <= m.items_arrived);
        prop_assert!(m.items_admitted() == m.items_arrived - m.items_shed);
    }

    #[test]
    fn dag_monolithic_simulation_conserves_items(
        t in topology(),
        seed in 0u64..500,
        m_block in 8u64..128,
    ) {
        use pipeline_sim::simulate_monolithic_topology;

        let tau0 = t.total_service_time();
        let sched = MonolithicSchedule {
            block_size: m_block,
            block_time: 0.0,
            active_fraction: 0.0,
            latency_bound: 0.0,
            b: 1.0,
            s: 1.0,
            telemetry: None,
        };
        let cfg = SimConfig::quick(tau0, seed, 400);
        let m = simulate_monolithic_topology(&t, &sched, 1e18, &cfg);
        prop_assert!(!m.truncated);
        prop_assert_eq!(m.items_completed + m.items_dropped, m.items_arrived);
        prop_assert_eq!(m.deadline_misses, 0);
        prop_assert!(m.active_fraction > 0.0 && m.active_fraction <= 1.0 + 1e-9);
    }
}
