//! The batch-service queue `Q' = max(Q + A − v, 0)`.
//!
//! This is the embedded Markov chain of a bulk-service queue observed
//! at service instants (Bailey 1954): each period the server removes up
//! to `v` customers and `A` new ones arrive, `A` drawn i.i.d. from a
//! per-period arrival PMF. The paper's pipeline nodes are exactly such
//! queues — a node fires every `t_i + w_i` cycles and consumes up to a
//! SIMD vector.
//!
//! The stationary distribution is computed by power iteration on a
//! truncated state space, which is robust for the moderate utilizations
//! real schedules run at and needs no generating-function root finding.

use crate::pmf;
use serde::{Deserialize, Serialize};

/// A batch-service queue specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BulkQueue {
    /// Batch capacity `v`: customers removed per service epoch.
    pub capacity: u32,
    /// PMF of arrivals per service epoch.
    pub arrivals: Vec<f64>,
}

impl BulkQueue {
    /// Construct, validating the arrival PMF.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or the PMF is empty/negative/not
    /// normalized.
    pub fn new(capacity: u32, arrivals: Vec<f64>) -> Self {
        assert!(capacity > 0, "batch capacity must be >= 1");
        assert!(!arrivals.is_empty(), "arrival PMF is empty");
        assert!(
            arrivals.iter().all(|&p| p >= -1e-12 && p.is_finite()),
            "arrival PMF has a negative or non-finite entry"
        );
        let total: f64 = arrivals.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "arrival PMF sums to {total}");
        BulkQueue { capacity, arrivals }
    }

    /// Mean arrivals per epoch.
    pub fn arrival_mean(&self) -> f64 {
        pmf::mean(&self.arrivals)
    }

    /// Utilization `ρ = E[A]/v`. The queue is stable iff `ρ < 1`.
    pub fn utilization(&self) -> f64 {
        self.arrival_mean() / self.capacity as f64
    }

    /// Stationary distribution of the queue length just after a service
    /// epoch, truncated at `max_queue` (tail mass folded into the last
    /// state). Returns `None` if the queue is unstable (`ρ ≥ 1`).
    pub fn stationary(&self, max_queue: usize) -> Option<Vec<f64>> {
        if self.utilization() >= 1.0 {
            return None;
        }
        let states = max_queue + 1;
        let v = self.capacity as usize;
        let mut dist = vec![0.0; states];
        dist[0] = 1.0;
        let mut next = vec![0.0; states];
        // Power iteration: push the distribution through one epoch until
        // it stops changing.
        for _ in 0..100_000 {
            next.iter_mut().for_each(|x| *x = 0.0);
            for (q, &pq) in dist.iter().enumerate() {
                if pq == 0.0 {
                    continue;
                }
                for (a, &pa) in self.arrivals.iter().enumerate() {
                    if pa == 0.0 {
                        continue;
                    }
                    let q_next = (q + a).saturating_sub(v).min(max_queue);
                    next[q_next] += pq * pa;
                }
            }
            let delta: f64 = dist.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut dist, &mut next);
            if delta < 1e-12 {
                break;
            }
        }
        Some(dist)
    }

    /// `q`-quantile of the stationary queue length, or `None` if
    /// unstable.
    pub fn queue_quantile(&self, q: f64, max_queue: usize) -> Option<usize> {
        self.stationary(max_queue).map(|d| pmf::quantile(&d, q))
    }

    /// Distribution of the *sojourn* in service epochs: an item arriving
    /// to find the stationary queue `Q` ahead of it departs with the
    /// `⌈(Q+1)/v⌉`-th following firing. Index `k` of the returned vector
    /// is `P(sojourn = k)` (index 0 is unused and zero). `None` if the
    /// queue is unstable.
    pub fn sojourn_epochs(&self, max_queue: usize) -> Option<Vec<f64>> {
        let stationary = self.stationary(max_queue)?;
        let v = self.capacity as usize;
        let max_k = max_queue / v + 2;
        let mut out = vec![0.0; max_k + 1];
        for (q, &p) in stationary.iter().enumerate() {
            let k = q / v + 1; // ⌈(q+1)/v⌉
            out[k.min(max_k)] += p;
        }
        Some(out)
    }

    /// `q`-quantile of the sojourn (in epochs) — the quantity the
    /// paper's backlog factors `b_i` bound. `None` if unstable.
    pub fn sojourn_quantile(&self, q: f64, max_queue: usize) -> Option<usize> {
        self.sojourn_epochs(max_queue).map(|d| pmf::quantile(&d, q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn underloaded_deterministic_queue_stays_empty() {
        // 3 arrivals per epoch, capacity 8: queue never builds.
        let mut pmf = vec![0.0; 4];
        pmf[3] = 1.0;
        let q = BulkQueue::new(8, pmf);
        assert!((q.utilization() - 0.375).abs() < 1e-12);
        let d = q.stationary(64).unwrap();
        assert!((d[0] - 1.0).abs() < 1e-9, "{:?}", &d[..4]);
        assert_eq!(q.queue_quantile(0.999, 64), Some(0));
    }

    #[test]
    fn heavier_load_builds_longer_queues() {
        let light = BulkQueue::new(8, crate::pmf::poisson(2.0, 64));
        let heavy = BulkQueue::new(8, crate::pmf::poisson(7.0, 64));
        let ql = light.queue_quantile(0.999, 512).unwrap();
        let qh = heavy.queue_quantile(0.999, 512).unwrap();
        assert!(qh > ql, "light {ql}, heavy {qh}");
    }

    #[test]
    fn unstable_queue_returns_none() {
        let q = BulkQueue::new(4, crate::pmf::poisson(5.0, 64));
        assert!(q.utilization() > 1.0);
        assert!(q.stationary(128).is_none());
        assert!(q.queue_quantile(0.99, 128).is_none());
    }

    #[test]
    fn stationary_is_a_distribution() {
        let q = BulkQueue::new(8, crate::pmf::poisson(6.0, 64));
        let d = q.stationary(512).unwrap();
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(d.iter().all(|&p| p >= -1e-12));
    }

    #[test]
    fn matches_simulation_of_the_chain() {
        // Cross-check the analytic stationary tail against a brute-force
        // simulation of the same recursion.
        let v = 8usize;
        let arrivals = crate::pmf::poisson(6.5, 64);
        let q = BulkQueue::new(v as u32, arrivals.clone());
        let analytic = q.stationary(1024).unwrap();

        // Simulate with inverse-CDF sampling (deterministic LCG).
        let mut state = 12345u64;
        let mut rand01 = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let sample = |u: f64| -> usize {
            let mut cum = 0.0;
            for (k, &p) in arrivals.iter().enumerate() {
                cum += p;
                if u < cum {
                    return k;
                }
            }
            arrivals.len() - 1
        };
        let mut queue = 0usize;
        let mut counts = vec![0u64; 1025];
        let epochs = 400_000;
        for _ in 0..epochs {
            let a = sample(rand01());
            queue = (queue + a).saturating_sub(v).min(1024);
            counts[queue] += 1;
        }
        // Compare P(Q = 0) and the 99th percentile.
        let sim_p0 = counts[0] as f64 / epochs as f64;
        assert!(
            (sim_p0 - analytic[0]).abs() < 0.02,
            "P(Q=0): sim {sim_p0} vs analytic {}",
            analytic[0]
        );
        let sim_q99 = {
            let mut cum = 0u64;
            let target = (0.99 * epochs as f64) as u64;
            counts
                .iter()
                .enumerate()
                .find(|(_, &c)| {
                    cum += c;
                    cum >= target
                })
                .map(|(k, _)| k)
                .unwrap_or(1024)
        };
        let ana_q99 = crate::pmf::quantile(&analytic, 0.99);
        assert!(
            (sim_q99 as i64 - ana_q99 as i64).abs() <= 3,
            "q99: sim {sim_q99} vs analytic {ana_q99}"
        );
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn rejects_unnormalized_pmf() {
        BulkQueue::new(4, vec![0.5, 0.2]);
    }

    #[test]
    fn sojourn_is_one_epoch_when_queue_is_empty() {
        let mut arr = vec![0.0; 4];
        arr[3] = 1.0; // deterministic 3 < v = 8
        let q = BulkQueue::new(8, arr);
        let s = q.sojourn_epochs(64).unwrap();
        assert!((s[1] - 1.0).abs() < 1e-9, "{s:?}");
        assert_eq!(q.sojourn_quantile(0.999, 64), Some(1));
    }

    #[test]
    fn sojourn_distribution_is_normalized_and_grows_with_load() {
        let light = BulkQueue::new(8, crate::pmf::poisson(3.0, 64));
        let heavy = BulkQueue::new(8, crate::pmf::poisson(7.5, 64));
        let sl = light.sojourn_epochs(1024).unwrap();
        let sh = heavy.sojourn_epochs(1024).unwrap();
        assert!((sl.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        assert!((sh.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        assert!(
            heavy.sojourn_quantile(0.999, 1024).unwrap()
                >= light.sojourn_quantile(0.999, 1024).unwrap()
        );
    }

    #[test]
    fn sojourn_unstable_is_none() {
        let q = BulkQueue::new(4, crate::pmf::poisson(6.0, 64));
        assert!(q.sojourn_epochs(128).is_none());
        assert!(q.sojourn_quantile(0.9, 128).is_none());
    }
}
