//! A-priori backlog-factor estimation (the paper's §7 future work).
//!
//! Given a pipeline and a candidate schedule's firing periods, model
//! each node's input as a bulk-service queue:
//!
//! * the head node sees the stream's *deterministic* arrivals — per
//!   period `x_0` that is a two-point distribution around `x_0/τ0`;
//! * a downstream node `i` sees bursts: each item consumed upstream
//!   emits a gain-distributed burst. Following the paper's suggested
//!   Jacksonian approximation we Poissonize the burst *events* (rate
//!   `G_{i-1}/τ0`) while keeping the exact per-burst size distribution,
//!   i.e. arrivals per period are compound Poisson.
//!
//! The factor `b_i` is then read off a tail quantile of the stationary
//! queue: an item arriving to find `Q` items queued departs within
//! `⌈(Q+1)/v⌉` firings.

use crate::bulk::BulkQueue;
use crate::pmf;
use dataflow_model::{GainModel, PipelineSpec};
use serde::{Deserialize, Serialize};

/// Estimation result for one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeEstimate {
    /// Estimated backlog factor.
    pub b: f64,
    /// Modeled utilization `ρ` of the node's bulk queue.
    pub utilization: f64,
    /// True if the node sits at/over its stability boundary under the
    /// Poissonized model, in which case `b` is the configured ceiling
    /// rather than a quantile.
    pub saturated: bool,
}

/// Tuning for the estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EstimateConfig {
    /// Queue-length quantile to design for (e.g. 0.999).
    pub quantile: f64,
    /// Utilization above which the node is declared saturated.
    pub saturation: f64,
    /// Backlog factor reported for saturated nodes.
    pub saturated_b: f64,
    /// State-space truncation for the stationary solve.
    pub max_queue: usize,
}

impl Default for EstimateConfig {
    fn default() -> Self {
        EstimateConfig {
            quantile: 0.999,
            saturation: 0.98,
            saturated_b: 16.0,
            max_queue: 2048,
        }
    }
}

/// Dense PMF of a gain model, for burst-size modeling.
///
/// # Panics
/// Panics if `max_k < 1`: a zero-bin "PMF" cannot represent any gain
/// distribution's support (a Bernoulli's success mass, for instance,
/// would silently fold into the zero bin, misreporting the mean as 0).
pub fn gain_pmf(gain: &GainModel, max_k: usize) -> Vec<f64> {
    assert!(
        max_k >= 1,
        "gain_pmf needs max_k >= 1 to represent nonzero gains, got {max_k}"
    );
    match gain {
        GainModel::Deterministic { k } => {
            let mut p = vec![0.0; max_k + 1];
            p[(*k as usize).min(max_k)] = 1.0;
            p
        }
        GainModel::Bernoulli { p } => {
            let mut out = vec![0.0; max_k + 1];
            out[0] = 1.0 - p;
            out[1] += *p;
            out
        }
        GainModel::CensoredPoisson { mean, cap } => {
            let mut p = pmf::poisson(*mean, (*cap as usize).min(max_k));
            // `poisson` already folds the tail into the last bin, which
            // is exactly the censoring semantics.
            let total: f64 = p.iter().sum();
            if total > 0.0 {
                p.iter_mut().for_each(|x| *x /= total);
            }
            p
        }
        GainModel::Empirical { pmf: e } => {
            let mut out = vec![0.0; max_k + 1];
            for (k, p) in e {
                out[(*k as usize).min(max_k)] += p;
            }
            out
        }
    }
}

/// Estimate backlog factors for a schedule with firing periods
/// `periods` at inter-arrival time `tau0`.
///
/// # Panics
/// Panics if `periods.len()` differs from the pipeline length.
pub fn estimate_backlog_factors(
    pipeline: &PipelineSpec,
    periods: &[f64],
    tau0: f64,
    config: &EstimateConfig,
) -> Vec<NodeEstimate> {
    assert_eq!(
        periods.len(),
        pipeline.len(),
        "period vector length mismatch"
    );
    let v = pipeline.vector_width();
    let totals = pipeline.total_gains();
    let mut out = Vec::with_capacity(pipeline.len());

    for i in 0..pipeline.len() {
        let mean_per_period = totals[i] * periods[i] / tau0;
        let utilization = mean_per_period / v as f64;
        if i == 0 && utilization >= config.saturation && utilization <= 1.0 + 1e-9 {
            // The head's arrivals are *deterministic*: even at
            // utilization 1 at most one period's worth (≤ v items)
            // accumulates between firings, so an arriving item always
            // departs with the next firing. This is why the paper's
            // calibration finds b_0 = 1.
            out.push(NodeEstimate {
                b: 1.0,
                utilization,
                saturated: false,
            });
            continue;
        }
        if utilization >= config.saturation {
            out.push(NodeEstimate {
                b: config.saturated_b,
                utilization,
                saturated: true,
            });
            continue;
        }
        let max_a = ((mean_per_period * 4.0).ceil() as usize + 4 * v as usize).min(8192);
        let arrivals = if i == 0 {
            pmf::deterministic_fractional(mean_per_period, max_a)
        } else {
            // Burst events: upstream consumptions per period of node i.
            let event_rate = totals[i - 1] * periods[i] / tau0;
            let burst = gain_pmf(&pipeline.node(i - 1).gain, 64);
            pmf::compound_poisson(event_rate, &burst, max_a)
        };
        let queue = BulkQueue::new(v, arrivals);
        let b = match queue.sojourn_quantile(config.quantile, config.max_queue) {
            Some(epochs) => (epochs as f64).max(1.0),
            None => config.saturated_b,
        };
        out.push(NodeEstimate {
            b,
            utilization,
            saturated: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow_model::{PipelineSpecBuilder, RtParams};

    fn blast() -> PipelineSpec {
        PipelineSpecBuilder::new(128)
            .stage("s0", 287.0, GainModel::Bernoulli { p: 0.379 })
            .stage(
                "s1",
                955.0,
                GainModel::CensoredPoisson {
                    mean: 1.920,
                    cap: 16,
                },
            )
            .stage("s2", 402.0, GainModel::Bernoulli { p: 0.0332 })
            .stage("s3", 2753.0, GainModel::Deterministic { k: 1 })
            .build()
            .unwrap()
    }

    #[test]
    fn gain_pmf_shapes() {
        let b = gain_pmf(&GainModel::Bernoulli { p: 0.3 }, 4);
        assert!((b[0] - 0.7).abs() < 1e-12 && (b[1] - 0.3).abs() < 1e-12);
        let d = gain_pmf(&GainModel::Deterministic { k: 3 }, 4);
        assert_eq!(d[3], 1.0);
        let c = gain_pmf(
            &GainModel::CensoredPoisson {
                mean: 1.92,
                cap: 16,
            },
            64,
        );
        assert!((c.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((pmf::mean(&c) - 1.92).abs() < 1e-3);
        let e = gain_pmf(
            &GainModel::Empirical {
                pmf: vec![(0, 0.5), (2, 0.5)],
            },
            4,
        );
        assert_eq!(e[0], 0.5);
        assert_eq!(e[2], 0.5);
    }

    #[test]
    #[should_panic(expected = "max_k >= 1")]
    fn gain_pmf_rejects_zero_bins() {
        // Regression: `max_k = 0` used to fold a Bernoulli's success
        // mass into the zero bin (`out[1.min(0)] += p`), silently
        // producing a point mass at 0 with the wrong mean.
        gain_pmf(&GainModel::Bernoulli { p: 0.3 }, 0);
    }

    #[test]
    fn gain_pmf_preserves_mean_at_small_max_k() {
        // Bernoulli support is {0, 1}: any max_k >= 1 must reproduce
        // the exact mean `p`.
        for max_k in 1..=4 {
            let b = gain_pmf(&GainModel::Bernoulli { p: 0.379 }, max_k);
            assert_eq!(b.len(), max_k + 1);
            assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(
                (pmf::mean(&b) - 0.379).abs() < 1e-12,
                "max_k={max_k}: mean {}",
                pmf::mean(&b)
            );
        }
        // Deterministic gain within range: exact mean. (Truncation
        // below k censors by design, like the Poisson cap.)
        for max_k in 2..=4 {
            let d = gain_pmf(&GainModel::Deterministic { k: 2 }, max_k);
            assert!((pmf::mean(&d) - 2.0).abs() < 1e-12);
        }
        // Empirical gain with support {0, 2}: exact from max_k = 2.
        for max_k in 2..=4 {
            let e = gain_pmf(
                &GainModel::Empirical {
                    pmf: vec![(0, 0.5), (2, 0.5)],
                },
                max_k,
            );
            assert!((pmf::mean(&e) - 1.0).abs() < 1e-12);
        }
        // Censored Poisson: censoring at max_k < cap shifts tail mass
        // into the last bin, so the mean can only shrink — and the
        // total mass stays 1.
        let full = gain_pmf(
            &GainModel::CensoredPoisson {
                mean: 1.92,
                cap: 16,
            },
            16,
        );
        for max_k in 1..16 {
            let c = gain_pmf(
                &GainModel::CensoredPoisson {
                    mean: 1.92,
                    cap: 16,
                },
                max_k,
            );
            assert!((c.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(pmf::mean(&c) <= pmf::mean(&full) + 1e-9);
        }
    }

    #[test]
    fn estimates_for_a_relaxed_schedule_are_modest() {
        // Deadline-dominated schedule far from stability: queues stay
        // small, so estimated b's should be small. (At slack deadlines
        // the optimizer pushes periods to the stability caps, where the
        // Poissonized model rightly saturates — so this test uses a
        // deadline tight enough that the deadline constraint binds.)
        let p = blast();
        let params = RtParams::new(10.0, 3.0e4).unwrap();
        let sched = rtsdf_core::EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0])
            .solve(rtsdf_core::SolveMethod::WaterFilling)
            .unwrap();
        let est = estimate_backlog_factors(&p, &sched.periods, 10.0, &EstimateConfig::default());
        assert_eq!(est.len(), 4);
        for e in &est {
            assert!(e.b >= 1.0);
            assert!(!e.saturated, "{est:?}");
            assert!(
                e.b <= 8.0,
                "relaxed schedule should not need huge b: {est:?}"
            );
        }
    }

    #[test]
    fn saturated_schedule_reports_saturation() {
        // Periods at the stability caps: utilization 1 under the model.
        let p = blast();
        let tau0 = 10.0;
        let g = p.total_gains();
        let periods: Vec<f64> = g.iter().map(|gt| 128.0 * tau0 / gt).collect();
        let est = estimate_backlog_factors(&p, &periods, tau0, &EstimateConfig::default());
        assert!(est.iter().any(|e| e.saturated), "{est:?}");
        for e in est.iter().filter(|e| e.saturated) {
            assert_eq!(e.b, EstimateConfig::default().saturated_b);
        }
    }

    #[test]
    fn head_node_deterministic_arrivals_give_b_one_when_underloaded() {
        let p = blast();
        // Head fires every 500 cycles at τ0 = 10: 50 arrivals per period,
        // capacity 128 → queue at most one period's worth.
        let periods = [500.0, 1000.0, 500.0, 2800.0];
        let est = estimate_backlog_factors(&p, &periods, 10.0, &EstimateConfig::default());
        assert_eq!(est[0].b, 1.0, "{est:?}");
    }

    #[test]
    fn estimates_track_the_paper_calibration_order() {
        // The paper calibrated b = [1, 3, 9, 6] for a schedule near the
        // stability caps. Our analytic estimate at a mildly relaxed
        // schedule should reproduce the *ordering* (stage 2's queue is
        // the most volatile relative to its traffic, the head the
        // least).
        let p = blast();
        let params = RtParams::new(10.0, 3e5).unwrap();
        let sched = rtsdf_core::EnforcedWaitsProblem::new(&p, params, vec![1.0, 3.0, 9.0, 6.0])
            .solve(rtsdf_core::SolveMethod::WaterFilling)
            .unwrap();
        let est = estimate_backlog_factors(&p, &sched.periods, 10.0, &EstimateConfig::default());
        assert!(
            est[0].b <= est[2].b,
            "head should need the smallest factor: {est:?}"
        );
    }
}
