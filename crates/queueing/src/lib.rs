//! # queueing — bulk-service queue analysis
//!
//! The enforced-waits deadline constraint needs worst-case queue sizes
//! `b_i·v`. The paper chooses the `b_i` empirically (§6.2) and names
//! *a-priori* estimation from queueing theory as future work (§7),
//! pointing at the classical bulk-service queue literature (Bailey
//! 1954; Brière & Chaudhry 1989) and Jackson-style Poisson
//! approximations. This crate implements that program:
//!
//! * [`pmf`] — discrete distribution utilities (Poisson, compound
//!   Poisson, convolution) used to model per-period arrival counts;
//! * [`bulk`] — the embedded Markov chain of a batch-service queue
//!   `Q' = max(Q + A − v, 0)`, its stationary distribution (computed by
//!   power iteration on a truncated state space), and tail quantiles;
//! * [`estimate`] — per-node backlog-factor estimation for a scheduled
//!   pipeline: model node `i`'s per-period arrivals as Poisson with the
//!   node's long-run rate (the paper's suggested Jacksonian
//!   approximation; the head node keeps its deterministic arrivals),
//!   then read `b_i` off a tail quantile of the stationary queue.
//!
//! The estimates are validated against the simulator's empirically
//! calibrated factors in this workspace's integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulk;
pub mod estimate;
pub mod pmf;

pub use bulk::BulkQueue;
pub use estimate::estimate_backlog_factors;
