//! Discrete probability mass function utilities.
//!
//! All PMFs are dense `Vec<f64>` over counts `0..len`, truncated with
//! their tail mass folded into the last bin so totals stay exactly 1.

/// Poisson PMF over `0..=max_k`, with the tail mass beyond `max_k`
/// folded into the last bin.
///
/// # Panics
/// Panics if `lambda` is negative or non-finite.
pub fn poisson(lambda: f64, max_k: usize) -> Vec<f64> {
    assert!(lambda.is_finite() && lambda >= 0.0, "bad lambda {lambda}");
    let mut pmf = vec![0.0; max_k + 1];
    if lambda == 0.0 {
        pmf[0] = 1.0;
        return pmf;
    }
    let mut p = (-lambda).exp();
    let mut cum = 0.0;
    for (k, slot) in pmf.iter_mut().enumerate().take(max_k) {
        *slot = p;
        cum += p;
        p *= lambda / (k + 1) as f64;
    }
    pmf[max_k] = (1.0 - cum).max(0.0);
    pmf
}

/// A two-point PMF for deterministic arrivals of a fractional mean:
/// `mean = f·⌈mean⌉ + (1−f)·⌊mean⌋`. This models a periodic source
/// observed over a window that is not an integer multiple of its
/// period.
pub fn deterministic_fractional(mean: f64, max_k: usize) -> Vec<f64> {
    assert!(mean.is_finite() && mean >= 0.0, "bad mean {mean}");
    let lo = mean.floor() as usize;
    let hi = mean.ceil() as usize;
    let frac = mean - lo as f64;
    let mut pmf = vec![0.0; max_k + 1];
    let lo_i = lo.min(max_k);
    let hi_i = hi.min(max_k);
    pmf[lo_i] += 1.0 - frac;
    pmf[hi_i] += frac;
    pmf
}

/// Convolution of two PMFs, truncated to `max_k` with tail folding.
pub fn convolve(a: &[f64], b: &[f64], max_k: usize) -> Vec<f64> {
    let mut out = vec![0.0; max_k + 1];
    for (i, &pa) in a.iter().enumerate() {
        if pa == 0.0 {
            continue;
        }
        for (j, &pb) in b.iter().enumerate() {
            let k = (i + j).min(max_k);
            out[k] += pa * pb;
        }
    }
    out
}

/// Compound Poisson: the distribution of `Σ_{e=1..N} X_e` where
/// `N ~ Poisson(event_rate)` and each `X_e` has PMF `per_event` —
/// computed by conditioning on `N` (truncated where the Poisson tail
/// becomes negligible).
pub fn compound_poisson(event_rate: f64, per_event: &[f64], max_k: usize) -> Vec<f64> {
    assert!(event_rate.is_finite() && event_rate >= 0.0);
    // Enough Poisson terms to capture effectively all mass.
    let n_max = ((event_rate + 8.0 * event_rate.sqrt()).ceil() as usize).max(16);
    let n_pmf = poisson(event_rate, n_max);
    let mut out = vec![0.0; max_k + 1];
    // conv_n = per_event^{*n}, built incrementally.
    let mut conv_n = vec![0.0; max_k + 1];
    conv_n[0] = 1.0;
    for (n, &pn) in n_pmf.iter().enumerate() {
        if pn > 0.0 {
            for (k, &p) in conv_n.iter().enumerate() {
                out[k] += pn * p;
            }
        }
        if n < n_pmf.len() - 1 {
            conv_n = convolve(&conv_n, per_event, max_k);
        }
    }
    out
}

/// Mean of a PMF.
pub fn mean(pmf: &[f64]) -> f64 {
    pmf.iter().enumerate().map(|(k, &p)| k as f64 * p).sum()
}

/// Smallest `k` whose CDF reaches `q` (clamped to the support).
pub fn quantile(pmf: &[f64], q: f64) -> usize {
    let q = q.clamp(0.0, 1.0);
    let mut cum = 0.0;
    for (k, &p) in pmf.iter().enumerate() {
        cum += p;
        if cum >= q {
            return k;
        }
    }
    pmf.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(pmf: &[f64]) -> f64 {
        pmf.iter().sum()
    }

    #[test]
    fn poisson_mass_and_mean() {
        let p = poisson(3.0, 64);
        assert!((total(&p) - 1.0).abs() < 1e-12);
        assert!((mean(&p) - 3.0).abs() < 1e-6);
        // Mode at 2 and 3 for λ = 3.
        assert!(p[3] >= p[4] && p[2] >= p[1]);
    }

    #[test]
    fn poisson_zero_rate() {
        let p = poisson(0.0, 8);
        assert_eq!(p[0], 1.0);
        assert_eq!(total(&p), 1.0);
    }

    #[test]
    fn poisson_tail_folding() {
        let p = poisson(50.0, 10); // heavy truncation
        assert!((total(&p) - 1.0).abs() < 1e-12);
        assert!(p[10] > 0.99, "almost all mass in the folded tail");
    }

    #[test]
    fn deterministic_fractional_two_point() {
        let p = deterministic_fractional(2.25, 8);
        assert!((p[2] - 0.75).abs() < 1e-12);
        assert!((p[3] - 0.25).abs() < 1e-12);
        assert!((mean(&p) - 2.25).abs() < 1e-12);
        let p = deterministic_fractional(4.0, 8);
        assert_eq!(p[4], 1.0);
    }

    #[test]
    fn convolve_adds_means() {
        let a = poisson(2.0, 40);
        let b = poisson(3.0, 40);
        let c = convolve(&a, &b, 80);
        assert!((total(&c) - 1.0).abs() < 1e-9);
        assert!((mean(&c) - 5.0).abs() < 1e-5);
    }

    #[test]
    fn compound_poisson_mean_is_product() {
        // N ~ Poisson(4), X ∈ {0 w.p. .5, 2 w.p. .5} → E = 4 × 1 = 4.
        let per_event = vec![0.5, 0.0, 0.5];
        let c = compound_poisson(4.0, &per_event, 128);
        assert!((total(&c) - 1.0).abs() < 1e-9);
        assert!((mean(&c) - 4.0).abs() < 0.01);
    }

    #[test]
    fn compound_poisson_zero_events() {
        let c = compound_poisson(0.0, &[0.0, 1.0], 16);
        assert!((c[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_basics() {
        let p = vec![0.5, 0.3, 0.2];
        assert_eq!(quantile(&p, 0.4), 0);
        assert_eq!(quantile(&p, 0.6), 1);
        assert_eq!(quantile(&p, 0.95), 2);
        assert_eq!(quantile(&p, 1.0), 2);
        assert_eq!(quantile(&p, 0.0), 0);
    }
}
