//! Property-based tests for the bulk-service queue analysis.

use proptest::prelude::*;
use queueing::bulk::BulkQueue;
use queueing::pmf;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn poisson_pmf_is_normalized_with_correct_mean(lambda in 0.0..40.0f64) {
        let p = pmf::poisson(lambda, 512);
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // With max_k = 512 ≫ λ the folded tail is negligible.
        prop_assert!((pmf::mean(&p) - lambda).abs() < 1e-6 * lambda.max(1.0));
    }

    #[test]
    fn convolution_adds_means_and_preserves_mass(
        l1 in 0.1..15.0f64,
        l2 in 0.1..15.0f64,
    ) {
        let a = pmf::poisson(l1, 256);
        let b = pmf::poisson(l2, 256);
        let c = pmf::convolve(&a, &b, 512);
        prop_assert!((c.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!((pmf::mean(&c) - (l1 + l2)).abs() < 1e-4 * (l1 + l2));
    }

    #[test]
    fn compound_poisson_mean_is_rate_times_burst_mean(
        rate in 0.1..10.0f64,
        burst_k in 1u32..6,
        burst_p in 0.1..1.0f64,
    ) {
        // Burst ∈ {0, k} with P(k) = p.
        let mut per_event = vec![0.0; burst_k as usize + 1];
        per_event[0] = 1.0 - burst_p;
        per_event[burst_k as usize] += burst_p;
        let c = pmf::compound_poisson(rate, &per_event, 1024);
        let expect = rate * burst_k as f64 * burst_p;
        prop_assert!((c.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(
            (pmf::mean(&c) - expect).abs() < 1e-3 * expect.max(1.0),
            "mean {} vs {}",
            pmf::mean(&c),
            expect
        );
    }

    #[test]
    fn quantile_is_monotone_in_q(lambda in 0.5..20.0f64, qa in 0.0..1.0f64, qb in 0.0..1.0f64) {
        let p = pmf::poisson(lambda, 256);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(pmf::quantile(&p, lo) <= pmf::quantile(&p, hi));
    }

    #[test]
    fn stationary_distribution_is_valid(v in 2u32..32, lambda_frac in 0.05..0.85f64) {
        let lambda = v as f64 * lambda_frac;
        let q = BulkQueue::new(v, pmf::poisson(lambda, 256));
        let d = q.stationary(1024).expect("stable by construction");
        let total: f64 = d.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        prop_assert!(d.iter().all(|&p| p >= -1e-12));
    }

    #[test]
    fn queue_tail_grows_with_load(v in 4u32..16, low in 0.2..0.5f64, bump in 0.15..0.35f64) {
        let q_lo = BulkQueue::new(v, pmf::poisson(v as f64 * low, 256));
        let q_hi = BulkQueue::new(v, pmf::poisson(v as f64 * (low + bump), 256));
        let a = q_lo.queue_quantile(0.999, 2048).unwrap();
        let b = q_hi.queue_quantile(0.999, 2048).unwrap();
        prop_assert!(a <= b, "tail should grow with load: {a} vs {b}");
    }

    #[test]
    fn deterministic_subcapacity_arrivals_never_queue(v in 2u32..64, frac in 0.1..1.0f64) {
        // Exactly k ≤ v arrivals per epoch: the queue stays empty.
        let k = ((v as f64 * frac) as usize).min(v as usize - 1);
        let mut arr = vec![0.0; k + 1];
        arr[k] = 1.0;
        let q = BulkQueue::new(v, arr);
        prop_assert_eq!(q.queue_quantile(0.9999, 256), Some(0));
    }
}
