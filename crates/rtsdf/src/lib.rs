//! # rtsdf — real-time irregular streaming dataflow on SIMD devices
//!
//! A from-scratch implementation of *Enabling Real-Time Irregular
//! Data-Flow Pipelines on SIMD Devices* (Plano & Buhler, SRMPDS '21),
//! packaged as one facade over the workspace's crates:
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`model`] | `dataflow-model` | pipelines, gains, arrivals, active-fraction algebra |
//! | [`core`] | `rtsdf-core` | enforced-waits & monolithic optimizers, KKT certification, Fig. 3/4 sweeps |
//! | [`sim`] | `pipeline-sim` | discrete-event simulator, multi-seed runner, §6.2 calibration |
//! | [`exec`] | `rtsdf-exec` | threaded execution backend, sim-vs-real cross-validation |
//! | [`device`] | `simd-device` | SIMT machine, occupancy & share accounting |
//! | [`queueing`] | `queueing` | bulk-service queues, a-priori backlog estimation |
//! | [`blast`] | `blast` | the paper's BLAST test application |
//! | [`apps`] | `apps` | gamma-ray burst, IDS, ML cascade pipelines |
//! | [`engine`] | `des` | the generic discrete-event engine |
//! | [`trace`] | `obs-trace` | causal span traces, Chrome/Perfetto export, deadline-miss forensics |
//! | [`metrics`] | `metrics` | lock-free live-metrics registry, Prometheus/JSON export, `/metrics` server |
//!
//! ## Quickstart
//!
//! ```
//! use rtsdf::prelude::*;
//!
//! // The paper's BLAST pipeline (Table 1) at τ0 = 10 cycles/item,
//! // deadline 10^5 cycles.
//! let pipeline = rtsdf::blast::paper_pipeline();
//! let params = RtParams::new(10.0, 1e5).unwrap();
//!
//! // Optimize both strategies.
//! let enforced = EnforcedWaitsProblem::new(&pipeline, params, vec![1.0, 3.0, 9.0, 6.0])
//!     .solve(SolveMethod::WaterFilling)
//!     .unwrap();
//! let monolithic = MonolithicProblem::new(&pipeline, params, 1.0, 1.0)
//!     .solve()
//!     .unwrap();
//!
//! // Enforced waits should win at this fast arrival rate.
//! assert!(enforced.active_fraction < monolithic.active_fraction);
//!
//! // And the simulator should agree with the optimizer's prediction.
//! let cfg = SimConfig::quick(10.0, 42, 2_000);
//! let measured = simulate_enforced(&pipeline, &enforced, 1e5, &cfg);
//! let rel = (measured.active_fraction - enforced.active_fraction).abs()
//!     / enforced.active_fraction;
//! assert!(rel < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use apps;
pub use blast;
pub use dataflow_model as model;
pub use des as engine;
pub use metrics;
pub use obs_trace as trace;
pub use pipeline_sim as sim;
pub use queueing;
pub use rtsdf_core as core;
pub use rtsdf_exec as exec;
pub use simd_device as device;

/// The most commonly used types, one `use` away.
pub mod prelude {
    pub use dataflow_model::{
        ArrivalProcess, GainModel, ModelError, NodeSpec, Perturbation, PipelineSpec,
        PipelineSpecBuilder, RtParams,
    };
    pub use pipeline_sim::{
        robustness_report, run_seeds_enforced, run_seeds_enforced_perturbed, run_seeds_monolithic,
        run_seeds_monolithic_perturbed, simulate_enforced, simulate_enforced_perturbed,
        simulate_enforced_traced, simulate_monolithic, simulate_monolithic_perturbed,
        simulate_monolithic_traced, MitigationPolicy, MultiSeedReport, RobustnessReport, SimConfig,
        SimMetrics,
    };
    pub use rtsdf_core::{
        EnforcedWaitsProblem, MonolithicProblem, MonolithicSchedule, ScheduleError, SolveMethod,
        WaitSchedule,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reaches_every_crate() {
        // Touch one symbol from each re-exported crate so the facade's
        // wiring is compile-checked.
        let _ = crate::blast::paper_pipeline();
        let _ = crate::model::PAPER_VECTOR_WIDTH;
        let _ = crate::engine::clock::SimTime::ZERO;
        let _ = crate::device::OccupancyStats::new();
        let _ = crate::queueing::estimate::EstimateConfig::default();
        let _ = crate::apps::gamma::GammaConfig::default();
        let _ = crate::core::comparison::SweepConfig::paper_blast();
        let _ = crate::sim::SimConfig::quick(1.0, 0, 1);
        let _ = crate::exec::ExecConfig::new(1, 0, 1.0, 1.0);
        let _ = crate::trace::TraceConfig::default();
        let _ = crate::metrics::Registry::new(1);
    }
}
