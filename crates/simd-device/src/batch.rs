//! SIMD vector batches of work items.

use serde::{Deserialize, Serialize};

/// A batch of up to `width` work items occupying the lanes of one SIMD
/// vector. Firing a node consumes one batch; the whole point of enforced
/// waiting is to fire with batches as full as possible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorBatch<T> {
    width: u32,
    items: Vec<T>,
}

impl<T> VectorBatch<T> {
    /// An empty batch for a vector of `width` lanes.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn new(width: u32) -> Self {
        assert!(width > 0, "vector width must be >= 1");
        VectorBatch {
            width,
            items: Vec::with_capacity(width as usize),
        }
    }

    /// Build a batch by draining up to `width` items from `source`.
    pub fn fill_from(width: u32, source: &mut Vec<T>) -> Self {
        let mut batch = VectorBatch::new(width);
        let take = (width as usize).min(source.len());
        batch.items.extend(source.drain(..take));
        batch
    }

    /// Lane count of the vector.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Occupied lanes.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no lanes are occupied.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if every lane is occupied.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.width as usize
    }

    /// Occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.items.len() as f64 / self.width as f64
    }

    /// Number of empty lanes.
    pub fn empty_lanes(&self) -> u32 {
        self.width - self.items.len() as u32
    }

    /// Push one item.
    ///
    /// # Panics
    /// Panics if the batch is already full.
    pub fn push(&mut self, item: T) {
        assert!(
            !self.is_full(),
            "batch already has {} lanes occupied",
            self.width
        );
        self.items.push(item);
    }

    /// The occupied lanes, in insertion order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consume the batch, yielding its items.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_from_takes_at_most_width() {
        let mut q = vec![1, 2, 3, 4, 5];
        let b = VectorBatch::fill_from(4, &mut q);
        assert_eq!(b.len(), 4);
        assert_eq!(b.items(), &[1, 2, 3, 4]);
        assert_eq!(q, vec![5]);
        assert!(b.is_full());
        assert_eq!(b.empty_lanes(), 0);
    }

    #[test]
    fn fill_from_underfull_queue() {
        let mut q = vec![7];
        let b = VectorBatch::fill_from(4, &mut q);
        assert_eq!(b.len(), 1);
        assert!(q.is_empty());
        assert!(!b.is_full());
        assert_eq!(b.occupancy(), 0.25);
        assert_eq!(b.empty_lanes(), 3);
    }

    #[test]
    fn empty_batch() {
        let b: VectorBatch<u8> = VectorBatch::new(8);
        assert!(b.is_empty());
        assert_eq!(b.occupancy(), 0.0);
        assert_eq!(b.width(), 8);
    }

    #[test]
    fn push_and_into_items() {
        let mut b = VectorBatch::new(2);
        b.push("a");
        b.push("b");
        assert_eq!(b.into_items(), vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "already has")]
    fn push_beyond_width_panics() {
        let mut b = VectorBatch::new(1);
        b.push(0);
        b.push(1);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn zero_width_panics() {
        let _: VectorBatch<u8> = VectorBatch::new(0);
    }
}
