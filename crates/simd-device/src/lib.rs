//! # simd-device — a simulated SIMT processor
//!
//! The paper targets GPU-like devices but deliberately evaluates in
//! simulation (§3: real-time guarantees on actual GPUs founder on
//! undocumented device behaviour; §6.2 builds a discrete-event
//! simulation instead). This crate is that device substrate:
//!
//! * [`batch::VectorBatch`] — a SIMD vector of up to `v` work items; the
//!   unit a pipeline node consumes per firing.
//! * [`occupancy::OccupancyStats`] — lane-occupancy accounting, the
//!   quantity the enforced-waits strategy exists to improve.
//! * [`machine`] — a small lockstep lane-program interpreter with SIMT
//!   cost semantics: an instruction costs its latency once per *vector*
//!   regardless of how many lanes are active; divergent branches cost
//!   both sides (predication); data-dependent loops cost the *maximum*
//!   trip count across active lanes. The `blast` crate uses it to
//!   "measure" per-stage service times the way the paper measured its
//!   Table 1 on real hardware.
//! * [`share::ShareProcessor`] — the paper's §2.2 execution model: one
//!   single-threaded processor divided into `N` fixed shares, one per
//!   pipeline node, with fine-grained preemption so a node's service
//!   time under its share is `N ×` its raw vector time. An
//!   [`share::ActiveTimeLedger`] tracks active vs. yielded time, from
//!   which the simulator computes measured active fractions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod machine;
pub mod occupancy;
pub mod share;

pub use batch::VectorBatch;
pub use machine::{ExecStats, LaneValue, Machine, Op, Program};
pub use occupancy::OccupancyStats;
pub use share::{ActiveTimeLedger, ShareProcessor};
