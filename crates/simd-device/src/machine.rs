//! A lockstep SIMT lane-program interpreter with cycle cost accounting.
//!
//! Cost semantics follow the classic SIMT execution model:
//!
//! * a vector instruction costs its latency **once per vector**, no
//!   matter how many lanes are active — the invariance that makes the
//!   paper's fixed per-firing service time `t_i` realistic;
//! * a divergent branch costs **both** sides (predicated execution) when
//!   at least one lane takes each; a side no lane takes is skipped;
//! * a data-dependent loop runs until every active lane is done, so its
//!   cost is the **maximum** trip count over active lanes.
//!
//! The `blast` crate builds its pipeline-stage kernels from these ops
//! and "measures" service times the way the paper measured Table 1 on a
//! GTX 2080.

use serde::{Deserialize, Serialize};

/// A lane-register value.
pub type LaneValue = i64;

/// Binary ALU functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AluFn {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b` (wrapping)
    Mul,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `(a < b) as i64`
    CmpLt,
    /// `a & b`
    And,
    /// `a ^ b`
    Xor,
    /// logical shift right of `a` by `b & 63`
    Shr,
    /// `a % max(b, 1)` (guarded modulo)
    Mod,
}

impl AluFn {
    fn apply(self, a: LaneValue, b: LaneValue) -> LaneValue {
        match self {
            AluFn::Add => a.wrapping_add(b),
            AluFn::Sub => a.wrapping_sub(b),
            AluFn::Mul => a.wrapping_mul(b),
            AluFn::Min => a.min(b),
            AluFn::Max => a.max(b),
            AluFn::CmpLt => (a < b) as LaneValue,
            AluFn::And => a & b,
            AluFn::Xor => a ^ b,
            AluFn::Shr => ((a as u64) >> (b as u64 & 63)) as LaneValue,
            AluFn::Mod => a.wrapping_rem(b.max(1)),
        }
    }
}

/// One instruction of a lane program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// `r[dst] = value`.
    SetImm {
        /// Destination register.
        dst: usize,
        /// Immediate value.
        value: LaneValue,
        /// Issue latency in cycles.
        cycles: u32,
    },
    /// `r[dst] = f(r[a], r[b])`.
    Alu {
        /// Destination register.
        dst: usize,
        /// First operand register.
        a: usize,
        /// Second operand register.
        b: usize,
        /// The function.
        f: AluFn,
        /// Issue latency in cycles.
        cycles: u32,
    },
    /// Gather: `r[dst] = mix(r[addr])` — a deterministic hash standing in
    /// for a memory table lookup, with memory-access latency.
    Load {
        /// Destination register.
        dst: usize,
        /// Address register.
        addr: usize,
        /// Access latency in cycles.
        cycles: u32,
    },
    /// Coalescing-aware gather: like [`Op::Load`], but the cost depends
    /// on how the active lanes' addresses spread over memory segments —
    /// the defining performance behaviour of GPU memory systems. The
    /// charge is `base_cycles + per_segment_cycles × segments`, where
    /// `segments` is the number of distinct aligned `segment_size`-byte
    /// blocks touched by `r[addr]` across active lanes (at least 1 when
    /// any lane is active).
    Gather {
        /// Destination register.
        dst: usize,
        /// Address register.
        addr: usize,
        /// Fixed issue cost.
        base_cycles: u32,
        /// Cost per distinct memory segment served.
        per_segment_cycles: u32,
        /// Segment (cache-line) size in address units; must be nonzero.
        segment_size: u32,
    },
    /// Predicated branch on `r[cond] != 0`.
    If {
        /// Condition register.
        cond: usize,
        /// Ops for lanes where the condition holds.
        then_ops: Vec<Op>,
        /// Ops for the remaining lanes.
        else_ops: Vec<Op>,
    },
    /// Loop `body` while any active lane has `r[cond] != 0`, bounded by
    /// `max_iters` as an architectural safety net.
    While {
        /// Condition register.
        cond: usize,
        /// Loop body.
        body: Vec<Op>,
        /// Hard iteration cap.
        max_iters: u32,
    },
}

/// A lane program: straight-line ops plus structured control flow, over
/// a register file of `registers` values per lane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Registers per lane.
    pub registers: usize,
    /// Instructions.
    pub ops: Vec<Op>,
}

/// Cost and behaviour statistics from executing one program over one
/// vector of lanes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Total cycles charged.
    pub cycles: u64,
    /// Vector instructions issued.
    pub instructions: u64,
    /// Branches where both sides had active lanes.
    pub divergent_branches: u64,
    /// Total loop iterations executed (vector-level).
    pub loop_iterations: u64,
    /// Memory segments served by [`Op::Gather`] instructions.
    pub gather_segments: u64,
}

/// The SIMT machine: executes programs over vectors of lanes.
#[derive(Debug, Clone)]
pub struct Machine {
    width: u32,
}

/// Deterministic 64-bit mix used by [`Op::Load`] to model table lookups.
fn mix(x: i64) -> i64 {
    let mut z = (x as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as i64
}

impl Machine {
    /// A machine with `width` SIMD lanes.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn new(width: u32) -> Self {
        assert!(width > 0, "machine needs at least one lane");
        Machine { width }
    }

    /// Lane count.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Run `program` with the given per-lane initial register values.
    /// `inputs.len()` lanes are active (must be ≤ width); each inner
    /// vec is copied into the low registers of its lane.
    ///
    /// Returns the final register files of the active lanes and the
    /// execution statistics.
    ///
    /// # Panics
    /// Panics if more inputs than lanes are supplied, or a register
    /// index is out of range.
    pub fn run(
        &self,
        program: &Program,
        inputs: &[Vec<LaneValue>],
    ) -> (Vec<Vec<LaneValue>>, ExecStats) {
        assert!(
            inputs.len() <= self.width as usize,
            "{} inputs for {} lanes",
            inputs.len(),
            self.width
        );
        let mut regs: Vec<Vec<LaneValue>> = inputs
            .iter()
            .map(|init| {
                assert!(
                    init.len() <= program.registers,
                    "lane initializer wider than register file"
                );
                let mut r = vec![0; program.registers];
                r[..init.len()].copy_from_slice(init);
                r
            })
            .collect();
        let mask: Vec<bool> = vec![true; regs.len()];
        let mut stats = ExecStats::default();
        exec_block(&program.ops, &mut regs, &mask, &mut stats);
        (regs, stats)
    }
}

fn any(mask: &[bool]) -> bool {
    mask.iter().any(|&m| m)
}

fn exec_block(ops: &[Op], regs: &mut [Vec<LaneValue>], mask: &[bool], stats: &mut ExecStats) {
    for op in ops {
        match op {
            Op::SetImm { dst, value, cycles } => {
                stats.cycles += *cycles as u64;
                stats.instructions += 1;
                for (lane, r) in regs.iter_mut().enumerate() {
                    if mask[lane] {
                        r[*dst] = *value;
                    }
                }
            }
            Op::Alu {
                dst,
                a,
                b,
                f,
                cycles,
            } => {
                stats.cycles += *cycles as u64;
                stats.instructions += 1;
                for (lane, r) in regs.iter_mut().enumerate() {
                    if mask[lane] {
                        r[*dst] = f.apply(r[*a], r[*b]);
                    }
                }
            }
            Op::Load { dst, addr, cycles } => {
                stats.cycles += *cycles as u64;
                stats.instructions += 1;
                for (lane, r) in regs.iter_mut().enumerate() {
                    if mask[lane] {
                        r[*dst] = mix(r[*addr]);
                    }
                }
            }
            Op::Gather {
                dst,
                addr,
                base_cycles,
                per_segment_cycles,
                segment_size,
            } => {
                assert!(*segment_size > 0, "gather segment size must be nonzero");
                stats.instructions += 1;
                let mut segments: Vec<i64> = regs
                    .iter()
                    .enumerate()
                    .filter(|(lane, _)| mask[*lane])
                    .map(|(_, r)| r[*addr].div_euclid(*segment_size as i64))
                    .collect();
                segments.sort_unstable();
                segments.dedup();
                let nseg = segments.len().max(usize::from(any(mask))) as u64;
                stats.cycles += *base_cycles as u64 + *per_segment_cycles as u64 * nseg;
                stats.gather_segments += nseg;
                for (lane, r) in regs.iter_mut().enumerate() {
                    if mask[lane] {
                        r[*dst] = mix(r[*addr]);
                    }
                }
            }
            Op::If {
                cond,
                then_ops,
                else_ops,
            } => {
                let then_mask: Vec<bool> = regs
                    .iter()
                    .enumerate()
                    .map(|(lane, r)| mask[lane] && r[*cond] != 0)
                    .collect();
                let else_mask: Vec<bool> = regs
                    .iter()
                    .enumerate()
                    .map(|(lane, r)| mask[lane] && r[*cond] == 0)
                    .collect();
                let take_then = any(&then_mask);
                let take_else = any(&else_mask) && !else_ops.is_empty();
                if take_then && take_else {
                    stats.divergent_branches += 1;
                }
                if take_then {
                    exec_block(then_ops, regs, &then_mask, stats);
                }
                if take_else {
                    exec_block(else_ops, regs, &else_mask, stats);
                }
            }
            Op::While {
                cond,
                body,
                max_iters,
            } => {
                let mut live: Vec<bool> = regs
                    .iter()
                    .enumerate()
                    .map(|(lane, r)| mask[lane] && r[*cond] != 0)
                    .collect();
                let mut iters = 0;
                while any(&live) && iters < *max_iters {
                    exec_block(body, regs, &live, stats);
                    stats.loop_iterations += 1;
                    iters += 1;
                    for (lane, r) in regs.iter().enumerate() {
                        live[lane] = live[lane] && r[*cond] != 0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(ops: Vec<Op>) -> Program {
        Program { registers: 4, ops }
    }

    #[test]
    fn straight_line_cost_is_lane_independent() {
        let p = prog(vec![
            Op::SetImm {
                dst: 0,
                value: 1,
                cycles: 2,
            },
            Op::Alu {
                dst: 1,
                a: 0,
                b: 0,
                f: AluFn::Add,
                cycles: 3,
            },
        ]);
        let m = Machine::new(8);
        let (_, one_lane) = m.run(&p, &[vec![0]]);
        let (_, eight_lanes) = m.run(&p, &(0..8).map(|i| vec![i]).collect::<Vec<_>>());
        assert_eq!(one_lane.cycles, 5);
        assert_eq!(
            eight_lanes.cycles, 5,
            "SIMD cost must not depend on lane count"
        );
        assert_eq!(one_lane.instructions, 2);
    }

    #[test]
    fn alu_functions() {
        let cases = [
            (AluFn::Add, 7, 3, 10),
            (AluFn::Sub, 7, 3, 4),
            (AluFn::Mul, 7, 3, 21),
            (AluFn::Min, 7, 3, 3),
            (AluFn::Max, 7, 3, 7),
            (AluFn::CmpLt, 3, 7, 1),
            (AluFn::CmpLt, 7, 3, 0),
            (AluFn::And, 6, 3, 2),
            (AluFn::Xor, 6, 3, 5),
            (AluFn::Shr, 8, 2, 2),
            (AluFn::Mod, 7, 3, 1),
            (AluFn::Mod, 7, 0, 0), // guarded: b clamped to 1
        ];
        for (f, a, b, want) in cases {
            assert_eq!(f.apply(a, b), want, "{f:?}({a},{b})");
        }
    }

    #[test]
    fn alu_computes_per_lane() {
        let p = prog(vec![Op::Alu {
            dst: 2,
            a: 0,
            b: 1,
            f: AluFn::Add,
            cycles: 1,
        }]);
        let m = Machine::new(4);
        let (regs, _) = m.run(&p, &[vec![1, 10], vec![2, 20]]);
        assert_eq!(regs[0][2], 11);
        assert_eq!(regs[1][2], 22);
    }

    #[test]
    fn divergent_branch_costs_both_sides() {
        let branch = |cond_reg| Op::If {
            cond: cond_reg,
            then_ops: vec![Op::SetImm {
                dst: 1,
                value: 1,
                cycles: 10,
            }],
            else_ops: vec![Op::SetImm {
                dst: 1,
                value: 2,
                cycles: 20,
            }],
        };
        let m = Machine::new(4);
        // All lanes take "then": cost 10, no divergence.
        let (_, s) = m.run(&prog(vec![branch(0)]), &[vec![1], vec![1]]);
        assert_eq!(s.cycles, 10);
        assert_eq!(s.divergent_branches, 0);
        // All lanes take "else": cost 20.
        let (_, s) = m.run(&prog(vec![branch(0)]), &[vec![0], vec![0]]);
        assert_eq!(s.cycles, 20);
        // Mixed: both sides issue → 30, one divergent branch.
        let (_, s) = m.run(&prog(vec![branch(0)]), &[vec![1], vec![0]]);
        assert_eq!(s.cycles, 30);
        assert_eq!(s.divergent_branches, 1);
    }

    #[test]
    fn branch_results_are_predicated() {
        let p = prog(vec![Op::If {
            cond: 0,
            then_ops: vec![Op::SetImm {
                dst: 1,
                value: 100,
                cycles: 1,
            }],
            else_ops: vec![Op::SetImm {
                dst: 1,
                value: 200,
                cycles: 1,
            }],
        }]);
        let (regs, _) = Machine::new(2).run(&p, &[vec![1], vec![0]]);
        assert_eq!(regs[0][1], 100);
        assert_eq!(regs[1][1], 200);
    }

    #[test]
    fn loop_cost_is_max_trip_count() {
        // r0 = per-lane trip count; body decrements r0 at 5 cycles/iter.
        let p = prog(vec![
            Op::SetImm {
                dst: 1,
                value: 1,
                cycles: 0,
            },
            Op::While {
                cond: 0,
                body: vec![Op::Alu {
                    dst: 0,
                    a: 0,
                    b: 1,
                    f: AluFn::Sub,
                    cycles: 5,
                }],
                max_iters: 1000,
            },
        ]);
        let m = Machine::new(4);
        let (_, s) = m.run(&p, &[vec![3], vec![7], vec![1]]);
        // Max trips = 7 → 7 iterations × 5 cycles.
        assert_eq!(s.cycles, 35);
        assert_eq!(s.loop_iterations, 7);
    }

    #[test]
    fn loop_honours_safety_cap() {
        let p = prog(vec![Op::While {
            cond: 0,
            body: vec![Op::SetImm {
                dst: 1,
                value: 1,
                cycles: 1,
            }], // never clears r0
            max_iters: 50,
        }]);
        let (_, s) = Machine::new(1).run(&p, &[vec![1]]);
        assert_eq!(s.loop_iterations, 50);
    }

    #[test]
    fn empty_branch_sides_are_skipped() {
        let p = prog(vec![Op::If {
            cond: 0,
            then_ops: vec![Op::SetImm {
                dst: 1,
                value: 1,
                cycles: 10,
            }],
            else_ops: vec![],
        }]);
        // No lane satisfies the condition → nothing issues.
        let (_, s) = Machine::new(2).run(&p, &[vec![0], vec![0]]);
        assert_eq!(s.cycles, 0);
        assert_eq!(s.instructions, 0);
    }

    #[test]
    fn load_is_deterministic() {
        let p = prog(vec![Op::Load {
            dst: 1,
            addr: 0,
            cycles: 8,
        }]);
        let m = Machine::new(1);
        let (r1, s) = m.run(&p, &[vec![42]]);
        let (r2, _) = m.run(&p, &[vec![42]]);
        assert_eq!(r1[0][1], r2[0][1]);
        assert_ne!(r1[0][1], 42, "load should transform the address");
        assert_eq!(s.cycles, 8);
    }

    #[test]
    fn zero_active_lanes_runs_for_free() {
        let p = prog(vec![Op::SetImm {
            dst: 0,
            value: 1,
            cycles: 9,
        }]);
        let (regs, s) = Machine::new(4).run(&p, &[]);
        assert!(regs.is_empty());
        // Straight-line ops still "issue" in this model (the node fires
        // regardless), so cycles are charged even with no lanes: this
        // mirrors the paper charging empty firings as active time.
        assert_eq!(s.cycles, 9);
    }

    #[test]
    #[should_panic(expected = "inputs for")]
    fn too_many_lanes_panics() {
        let p = prog(vec![]);
        Machine::new(1).run(&p, &[vec![0], vec![1]]);
    }

    #[test]
    fn gather_coalesced_vs_scattered() {
        let gather = Op::Gather {
            dst: 1,
            addr: 0,
            base_cycles: 10,
            per_segment_cycles: 20,
            segment_size: 32,
        };
        let p = Program {
            registers: 2,
            ops: vec![gather],
        };
        let m = Machine::new(32);
        // Coalesced: 32 consecutive addresses fit in one 32-unit segment.
        let coalesced: Vec<Vec<LaneValue>> = (0..32).map(|i| vec![i]).collect();
        let (_, c) = m.run(&p, &coalesced);
        assert_eq!(c.cycles, 10 + 20, "{c:?}");
        assert_eq!(c.gather_segments, 1);
        // Scattered: each lane in its own segment.
        let scattered: Vec<Vec<LaneValue>> = (0..32).map(|i| vec![i * 1_000]).collect();
        let (_, s) = m.run(&p, &scattered);
        assert_eq!(s.cycles, 10 + 20 * 32);
        assert_eq!(s.gather_segments, 32);
        // Negative addresses land in well-defined segments too.
        let negative: Vec<Vec<LaneValue>> = vec![vec![-1], vec![-32], vec![-33]];
        let (_, n) = m.run(&p, &negative);
        assert_eq!(
            n.gather_segments, 2,
            "(-1,-32) share segment -1; -33 is segment -2"
        );
    }

    #[test]
    fn gather_with_no_active_lanes_charges_base_only() {
        let p = Program {
            registers: 2,
            ops: vec![Op::Gather {
                dst: 1,
                addr: 0,
                base_cycles: 7,
                per_segment_cycles: 100,
                segment_size: 32,
            }],
        };
        let (_, s) = Machine::new(4).run(&p, &[]);
        assert_eq!(s.cycles, 7);
        assert_eq!(s.gather_segments, 0);
    }

    #[test]
    fn gather_results_match_load_semantics() {
        let g = Program {
            registers: 2,
            ops: vec![Op::Gather {
                dst: 1,
                addr: 0,
                base_cycles: 1,
                per_segment_cycles: 1,
                segment_size: 32,
            }],
        };
        let l = Program {
            registers: 2,
            ops: vec![Op::Load {
                dst: 1,
                addr: 0,
                cycles: 1,
            }],
        };
        let m = Machine::new(4);
        let (rg, _) = m.run(&g, &[vec![42], vec![7]]);
        let (rl, _) = m.run(&l, &[vec![42], vec![7]]);
        assert_eq!(rg, rl);
    }

    #[test]
    fn nested_control_flow() {
        // while (r0) { if (r0 & 1) r2 += r0; r0 -= 1 }  — sums odd values.
        let p = Program {
            registers: 5,
            ops: vec![
                Op::SetImm {
                    dst: 1,
                    value: 1,
                    cycles: 0,
                },
                Op::While {
                    cond: 0,
                    body: vec![
                        Op::Alu {
                            dst: 3,
                            a: 0,
                            b: 1,
                            f: AluFn::And,
                            cycles: 1,
                        },
                        Op::If {
                            cond: 3,
                            then_ops: vec![Op::Alu {
                                dst: 2,
                                a: 2,
                                b: 0,
                                f: AluFn::Add,
                                cycles: 1,
                            }],
                            else_ops: vec![],
                        },
                        Op::Alu {
                            dst: 0,
                            a: 0,
                            b: 1,
                            f: AluFn::Sub,
                            cycles: 1,
                        },
                    ],
                    max_iters: 100,
                },
            ],
        };
        let (regs, _) = Machine::new(1).run(&p, &[vec![5]]);
        assert_eq!(regs[0][2], 5 + 3 + 1);
    }
}
