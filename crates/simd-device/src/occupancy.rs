//! Lane-occupancy accounting.
//!
//! Every firing of a node is recorded here with the number of lanes it
//! actually filled. The mean occupancy directly determines how many
//! firings (and hence how much active time) a workload needs, which is
//! what the enforced-waits optimization improves.

use serde::{Deserialize, Serialize};

/// Accumulates lane-occupancy statistics across firings.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OccupancyStats {
    firings: u64,
    empty_firings: u64,
    full_firings: u64,
    lanes_used: u64,
    lanes_offered: u64,
}

impl OccupancyStats {
    /// New empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one firing that filled `used` of `width` lanes.
    ///
    /// # Panics
    /// Panics if `used > width`.
    pub fn record(&mut self, used: u32, width: u32) {
        assert!(used <= width, "{used} lanes used of {width}");
        self.firings += 1;
        if used == 0 {
            self.empty_firings += 1;
        }
        if used == width {
            self.full_firings += 1;
        }
        self.lanes_used += used as u64;
        self.lanes_offered += width as u64;
    }

    /// Total firings recorded.
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// Firings that consumed no items at all (a node whose enforced wait
    /// expired with an empty input queue).
    pub fn empty_firings(&self) -> u64 {
        self.empty_firings
    }

    /// Firings with every lane occupied.
    pub fn full_firings(&self) -> u64 {
        self.full_firings
    }

    /// Mean occupancy over all firings (0 if none).
    pub fn mean_occupancy(&self) -> f64 {
        if self.lanes_offered == 0 {
            0.0
        } else {
            self.lanes_used as f64 / self.lanes_offered as f64
        }
    }

    /// Fraction of firings that were completely full.
    pub fn full_fraction(&self) -> f64 {
        if self.firings == 0 {
            0.0
        } else {
            self.full_firings as f64 / self.firings as f64
        }
    }

    /// Total items processed.
    pub fn items_processed(&self) -> u64 {
        self.lanes_used
    }

    /// Merge another accumulator (parallel reduction across seeds).
    pub fn merge(&mut self, other: &OccupancyStats) {
        self.firings += other.firings;
        self.empty_firings += other.empty_firings;
        self.full_firings += other.full_firings;
        self.lanes_used += other.lanes_used;
        self.lanes_offered += other.lanes_offered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_firings() {
        let mut o = OccupancyStats::new();
        o.record(128, 128);
        o.record(64, 128);
        o.record(0, 128);
        assert_eq!(o.firings(), 3);
        assert_eq!(o.empty_firings(), 1);
        assert_eq!(o.full_firings(), 1);
        assert!((o.mean_occupancy() - 0.5).abs() < 1e-12);
        assert!((o.full_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(o.items_processed(), 192);
    }

    #[test]
    fn empty_stats_are_zero() {
        let o = OccupancyStats::new();
        assert_eq!(o.mean_occupancy(), 0.0);
        assert_eq!(o.full_fraction(), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = OccupancyStats::new();
        a.record(10, 10);
        let mut b = OccupancyStats::new();
        b.record(0, 10);
        a.merge(&b);
        assert_eq!(a.firings(), 2);
        assert!((a.mean_occupancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lanes used")]
    fn rejects_overfull() {
        OccupancyStats::new().record(11, 10);
    }
}
