//! Processor-share accounting (the paper's §2.2 implementation model).
//!
//! The application runs on one single-threaded processor. Each of the
//! `N` pipeline nodes is assigned a fixed `1/N` share of processor time,
//! preempted at fine granularity, so a node that needs `c` raw device
//! cycles of work observes a wall-clock service time of `N·c` while
//! consuming only its own share. The paper's `t_i` values are *already*
//! expressed under the share ("measured assuming that the node uses only
//! its assigned 1/N fraction of the processor while firing").
//!
//! [`ShareProcessor`] converts between raw vector time and share-scaled
//! service time; [`ActiveTimeLedger`] accumulates each node's active and
//! waiting time, from which the application's measured **active
//! fraction** is computed exactly as §2.3 defines it: total active time
//! over total (active + waiting) time, summed across nodes.

use serde::{Deserialize, Serialize};

/// A single-threaded processor divided into `n` equal, preemptively
/// scheduled shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShareProcessor {
    shares: u32,
}

impl ShareProcessor {
    /// A processor divided into `shares` equal fractions (one per node).
    ///
    /// # Panics
    /// Panics if `shares == 0`.
    pub fn new(shares: u32) -> Self {
        assert!(shares > 0, "processor needs at least one share");
        ShareProcessor { shares }
    }

    /// Number of shares `N`.
    pub fn shares(&self) -> u32 {
        self.shares
    }

    /// Wall-clock service time of a firing that needs `raw_cycles` of
    /// exclusive device time, when run under a `1/N` share.
    pub fn service_time(&self, raw_cycles: f64) -> f64 {
        raw_cycles * self.shares as f64
    }

    /// Inverse of [`Self::service_time`]: raw device cycles implied by a
    /// share-scaled service time.
    pub fn raw_cycles(&self, service_time: f64) -> f64 {
        service_time / self.shares as f64
    }
}

/// Per-node active/waiting time accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActiveTimeLedger {
    active: Vec<f64>,
    // Active time excluding firings that consumed zero items — the
    // "vacation" variant the paper mentions (§4: empty firings are
    // charged as active for analysis but could be treated as vacations).
    active_nonempty: Vec<f64>,
    horizon: f64,
}

impl ActiveTimeLedger {
    /// Ledger for `nodes` pipeline stages.
    pub fn new(nodes: usize) -> Self {
        ActiveTimeLedger {
            active: vec![0.0; nodes],
            active_nonempty: vec![0.0; nodes],
            horizon: 0.0,
        }
    }

    /// Record a firing of `node` that occupied it for `service_time`
    /// wall-clock cycles and consumed `items` inputs.
    pub fn record_firing(&mut self, node: usize, service_time: f64, items: u32) {
        self.active[node] += service_time;
        if items > 0 {
            self.active_nonempty[node] += service_time;
        }
    }

    /// Extend the measurement horizon to `t` (the end of the run).
    pub fn set_horizon(&mut self, t: f64) {
        assert!(t >= self.horizon, "horizon must not shrink");
        self.horizon = t;
    }

    /// The measurement horizon.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Per-node active time.
    pub fn active(&self) -> &[f64] {
        &self.active
    }

    /// Application active fraction per §2.3: `Σ_i active_i / (N·horizon)`
    /// — every node is either active or waiting at all times, so the
    /// denominator is the full horizon per node.
    pub fn active_fraction(&self) -> f64 {
        if self.horizon <= 0.0 {
            return 0.0;
        }
        self.active.iter().sum::<f64>() / (self.active.len() as f64 * self.horizon)
    }

    /// The "vacation" variant: empty firings not charged.
    pub fn active_fraction_nonempty(&self) -> f64 {
        if self.horizon <= 0.0 {
            return 0.0;
        }
        self.active_nonempty.iter().sum::<f64>() / (self.active.len() as f64 * self.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_scaling_roundtrip() {
        let p = ShareProcessor::new(4);
        assert_eq!(p.shares(), 4);
        assert_eq!(p.service_time(100.0), 400.0);
        assert_eq!(p.raw_cycles(400.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "at least one share")]
    fn zero_shares_panics() {
        ShareProcessor::new(0);
    }

    #[test]
    fn ledger_active_fraction() {
        let mut l = ActiveTimeLedger::new(2);
        l.record_firing(0, 30.0, 5);
        l.record_firing(1, 10.0, 2);
        l.set_horizon(100.0);
        // (30 + 10) / (2 × 100)
        assert!((l.active_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_firings_split_the_two_metrics() {
        let mut l = ActiveTimeLedger::new(1);
        l.record_firing(0, 10.0, 4);
        l.record_firing(0, 10.0, 0); // empty firing
        l.set_horizon(100.0);
        assert!((l.active_fraction() - 0.2).abs() < 1e-12);
        assert!((l.active_fraction_nonempty() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_horizon_is_zero_fraction() {
        let l = ActiveTimeLedger::new(3);
        assert_eq!(l.active_fraction(), 0.0);
        assert_eq!(l.active_fraction_nonempty(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must not shrink")]
    fn horizon_cannot_shrink() {
        let mut l = ActiveTimeLedger::new(1);
        l.set_horizon(10.0);
        l.set_horizon(5.0);
    }

    #[test]
    fn accessors() {
        let mut l = ActiveTimeLedger::new(2);
        l.record_firing(1, 7.0, 1);
        l.set_horizon(50.0);
        assert_eq!(l.active(), &[0.0, 7.0]);
        assert_eq!(l.horizon(), 50.0);
    }
}
