//! Property-based tests for the SIMT device model.

use proptest::prelude::*;
use simd_device::machine::AluFn;
use simd_device::{Machine, OccupancyStats, Op, Program, ShareProcessor};

/// Strategy: a random straight-line program (no control flow).
fn straight_line_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(
        prop_oneof![
            (0usize..4, -100i64..100, 1u32..20).prop_map(|(dst, value, cycles)| Op::SetImm {
                dst,
                value,
                cycles
            }),
            (0usize..4, 0usize..4, 0usize..4, 1u32..20).prop_map(|(dst, a, b, cycles)| Op::Alu {
                dst,
                a,
                b,
                f: AluFn::Add,
                cycles
            }),
            (0usize..4, 0usize..4, 1u32..30).prop_map(|(dst, addr, cycles)| Op::Load {
                dst,
                addr,
                cycles
            }),
        ],
        0..20,
    )
    .prop_map(|ops| Program { registers: 4, ops })
}

proptest! {
    #[test]
    fn straight_line_cost_is_lane_count_invariant(
        prog in straight_line_program(),
        lanes in 1usize..32,
    ) {
        let m = Machine::new(32);
        let (_, one) = m.run(&prog, &[vec![1]]);
        let inputs: Vec<Vec<i64>> = (0..lanes).map(|i| vec![i as i64]).collect();
        let (_, many) = m.run(&prog, &inputs);
        prop_assert_eq!(one.cycles, many.cycles);
        prop_assert_eq!(one.instructions, many.instructions);
    }

    #[test]
    fn straight_line_cost_is_sum_of_op_costs(prog in straight_line_program()) {
        fn total(ops: &[Op]) -> u64 {
            ops.iter()
                .map(|op| match op {
                    Op::SetImm { cycles, .. } | Op::Alu { cycles, .. } | Op::Load { cycles, .. } => {
                        *cycles as u64
                    }
                    _ => unreachable!("straight-line only"),
                })
                .sum()
        }
        let m = Machine::new(4);
        let (_, stats) = m.run(&prog, &[vec![0]]);
        prop_assert_eq!(stats.cycles, total(&prog.ops));
    }

    #[test]
    fn while_cost_equals_max_trip_times_body(
        trips in prop::collection::vec(0i64..50, 1..16),
        body_cost in 1u32..10,
    ) {
        let prog = Program {
            registers: 3,
            ops: vec![
                Op::SetImm { dst: 1, value: 1, cycles: 0 },
                Op::While {
                    cond: 0,
                    body: vec![Op::Alu { dst: 0, a: 0, b: 1, f: AluFn::Sub, cycles: body_cost }],
                    max_iters: 1000,
                },
            ],
        };
        let m = Machine::new(16);
        let inputs: Vec<Vec<i64>> = trips.iter().map(|&t| vec![t]).collect();
        let (_, stats) = m.run(&prog, &inputs);
        let max_trip = *trips.iter().max().unwrap() as u64;
        prop_assert_eq!(stats.cycles, max_trip * body_cost as u64);
        prop_assert_eq!(stats.loop_iterations, max_trip);
    }

    #[test]
    fn divergence_cost_is_sum_of_taken_sides(
        conds in prop::collection::vec(prop::bool::ANY, 1..16),
        then_cost in 1u32..20,
        else_cost in 1u32..20,
    ) {
        let prog = Program {
            registers: 2,
            ops: vec![Op::If {
                cond: 0,
                then_ops: vec![Op::SetImm { dst: 1, value: 1, cycles: then_cost }],
                else_ops: vec![Op::SetImm { dst: 1, value: 2, cycles: else_cost }],
            }],
        };
        let m = Machine::new(16);
        let inputs: Vec<Vec<i64>> = conds.iter().map(|&c| vec![c as i64]).collect();
        let (regs, stats) = m.run(&prog, &inputs);
        let any_then = conds.iter().any(|&c| c);
        let any_else = conds.iter().any(|&c| !c);
        let expect = (any_then as u64) * then_cost as u64 + (any_else as u64) * else_cost as u64;
        prop_assert_eq!(stats.cycles, expect);
        prop_assert_eq!(stats.divergent_branches, (any_then && any_else) as u64);
        // Predication: each lane's result matches its own condition.
        for (r, &c) in regs.iter().zip(&conds) {
            prop_assert_eq!(r[1], if c { 1 } else { 2 });
        }
    }

    #[test]
    fn occupancy_merge_matches_sequential(
        fills in prop::collection::vec(0u32..=64, 1..64),
        split in 0usize..64,
    ) {
        let cut = split.min(fills.len());
        let mut whole = OccupancyStats::new();
        let mut a = OccupancyStats::new();
        let mut b = OccupancyStats::new();
        for (i, &f) in fills.iter().enumerate() {
            whole.record(f, 64);
            if i < cut { a.record(f, 64) } else { b.record(f, 64) }
        }
        a.merge(&b);
        prop_assert_eq!(a.firings(), whole.firings());
        prop_assert_eq!(a.items_processed(), whole.items_processed());
        prop_assert!((a.mean_occupancy() - whole.mean_occupancy()).abs() < 1e-12);
        prop_assert!((a.full_fraction() - whole.full_fraction()).abs() < 1e-12);
    }

    #[test]
    fn share_scaling_roundtrips(shares in 1u32..64, raw in 0.0..1e9f64) {
        let p = ShareProcessor::new(shares);
        let wall = p.service_time(raw);
        prop_assert!((p.raw_cycles(wall) - raw).abs() <= 1e-9 * raw.max(1.0));
        prop_assert!(wall >= raw);
    }
}
