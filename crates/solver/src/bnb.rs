//! One-dimensional branch-and-bound for integer minimization with a
//! relaxation lower bound — the miniature of what BONMIN does for the
//! paper's monolithic block-size program.
//!
//! The caller supplies:
//!
//! * `evaluate(m)` — the true objective at an integer point, `None` if
//!   infeasible; and
//! * `lower_bound(lo, hi)` — a value ≤ every feasible objective on
//!   `lo..=hi` (from a convex/continuous relaxation).
//!
//! The search keeps a worklist of intervals, prunes those whose lower
//! bound cannot beat the incumbent, and splits the rest at their
//! midpoint, probing the midpoint integer each time. With an informative
//! lower bound the search visits O(log range) intervals around the
//! optimum; with a weak bound it degrades gracefully toward exhaustive
//! scan, never losing exactness.

use crate::integer::IntOpt;

/// Statistics from a branch-and-bound run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BnbStats {
    /// Intervals examined.
    pub nodes: u64,
    /// Intervals pruned by bound.
    pub pruned: u64,
    /// Objective evaluations.
    pub evaluations: u64,
}

/// Minimize `evaluate` over `lo..=hi` with `lower_bound` pruning.
///
/// Returns the global integer optimum (exact — pruning only discards
/// intervals certified not to contain a better point) together with
/// search statistics, or `None` if every point is infeasible.
pub fn minimize_bnb(
    lo: u64,
    hi: u64,
    mut evaluate: impl FnMut(u64) -> Option<f64>,
    mut lower_bound: impl FnMut(u64, u64) -> f64,
) -> (Option<IntOpt>, BnbStats) {
    let mut stats = BnbStats::default();
    if lo > hi {
        return (None, stats);
    }
    let mut best: Option<IntOpt> = None;
    let mut probe = |m: u64, best: &mut Option<IntOpt>, stats: &mut BnbStats| {
        stats.evaluations += 1;
        if let Some(v) = evaluate(m) {
            let better = best
                .as_ref()
                .is_none_or(|b| v < b.value || (v == b.value && m < b.arg));
            if better {
                *best = Some(IntOpt { arg: m, value: v });
            }
        }
    };

    // Seed the incumbent with the endpoints and midpoint.
    probe(lo, &mut best, &mut stats);
    if hi != lo {
        probe(hi, &mut best, &mut stats);
        probe(lo + (hi - lo) / 2, &mut best, &mut stats);
    }

    let mut stack: Vec<(u64, u64)> = vec![(lo, hi)];
    while let Some((a, b)) = stack.pop() {
        stats.nodes += 1;
        // Tiny intervals: finish by scan.
        if b - a <= 8 {
            for m in a..=b {
                probe(m, &mut best, &mut stats);
            }
            continue;
        }
        if let Some(ref inc) = best {
            if lower_bound(a, b) >= inc.value {
                stats.pruned += 1;
                continue;
            }
        }
        let mid = a + (b - a) / 2;
        probe(mid, &mut best, &mut stats);
        // Deeper-first on the half containing the midpoint's neighbors;
        // order does not affect exactness, only pruning efficiency.
        stack.push((a, mid));
        stack.push((mid + 1, b));
    }
    (best, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integer::minimize_scan;

    #[test]
    fn exact_on_convex_objective_with_tight_bound() {
        let f = |m: u64| Some((m as f64 - 700.3).powi(2));
        // Convex: min over [a, b] is attained at the clamp of the real
        // argmin.
        let lb = |a: u64, b: u64| {
            let x = 700.3_f64.clamp(a as f64, b as f64);
            (x - 700.3).powi(2)
        };
        let (best, stats) = minimize_bnb(1, 100_000, f, lb);
        let best = best.unwrap();
        assert_eq!(best.arg, 700);
        // Tight bound → massive pruning: far fewer evals than the range.
        assert!(stats.evaluations < 1_000, "{stats:?}");
        assert!(stats.pruned > 0);
    }

    #[test]
    fn exact_with_trivial_bound_degenerates_to_scan() {
        let f = |m: u64| Some(((m * 2654435761) % 997) as f64);
        let (bnb, _) = minimize_bnb(1, 3_000, f, |_, _| f64::NEG_INFINITY);
        let scan = minimize_scan(1, 3_000, f).unwrap();
        let bnb = bnb.unwrap();
        assert_eq!(bnb.value, scan.value);
    }

    #[test]
    fn handles_infeasible_regions() {
        let f = |m: u64| {
            if !(50..=80).contains(&m) {
                None
            } else {
                Some(m as f64)
            }
        };
        let (best, _) = minimize_bnb(1, 200, f, |_, _| 0.0);
        assert_eq!(best.unwrap().arg, 50);
    }

    #[test]
    fn all_infeasible_is_none() {
        let (best, _) = minimize_bnb(1, 100, |_| None, |_, _| 0.0);
        assert!(best.is_none());
    }

    #[test]
    fn empty_range_is_none() {
        let (best, stats) = minimize_bnb(10, 5, |m| Some(m as f64), |_, _| 0.0);
        assert!(best.is_none());
        assert_eq!(stats.nodes, 0);
    }

    #[test]
    fn single_point_range() {
        let (best, _) = minimize_bnb(7, 7, |m| Some(m as f64 * 2.0), |_, _| 0.0);
        assert_eq!(
            best.unwrap(),
            IntOpt {
                arg: 7,
                value: 14.0
            }
        );
    }

    #[test]
    fn ties_break_toward_smaller_argument() {
        let f = |m: u64| Some(if (40..=60).contains(&m) { 1.0 } else { 2.0 });
        let (best, _) = minimize_bnb(1, 100, f, |_, _| f64::NEG_INFINITY);
        assert_eq!(best.unwrap().arg, 40);
    }
}
