//! Log-barrier interior-point method for smooth convex minimization over
//! linear inequality constraints.
//!
//! Solves `min f(x)  s.t.  a_j·x ≤ b_j` for convex twice-differentiable
//! `f`. The centering subproblems `min t·f(x) − Σ log(b_j − a_j·x)` are
//! solved by damped Newton with backtracking line search that maintains
//! strict feasibility; the barrier weight `t` grows geometrically until
//! the duality-gap bound `m/t` falls below tolerance.
//!
//! This is the textbook method (Boyd & Vandenberghe ch. 11) specialized
//! to the small dense problems this workspace produces; it replaces the
//! AMPL + BONMIN toolchain used in the paper.

use crate::linalg::{axpy, dot, norm2, BandedMat, Mat};
use crate::linear::ConstraintSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A smooth convex objective.
///
/// Implementations must be convex on the feasible region; the solver does
/// not verify convexity but will typically fail to converge (and report
/// [`SolveError::Numerical`]) on non-convex inputs.
pub trait ConvexProblem {
    /// Number of variables.
    fn dim(&self) -> usize;
    /// Objective value at `x`.
    fn value(&self, x: &[f64]) -> f64;
    /// Write the gradient at `x` into `g` (length `dim`).
    fn gradient(&self, x: &[f64], g: &mut [f64]);
    /// Write the Hessian at `x` into `h` (shape `dim × dim`, pre-zeroed
    /// by the caller).
    fn hessian(&self, x: &[f64], h: &mut Mat);
    /// Lower bandwidth of the objective Hessian, if the problem wants
    /// the banded Newton path. Constraints whose support span fits this
    /// band are assembled directly into a [`BandedMat`]; the few that
    /// don't (e.g. a dense deadline row) are folded in by a low-rank
    /// Sherman–Morrison–Woodbury correction, keeping each Newton step
    /// O(n·bw²) instead of O(n³). Problems returning `Some` must also
    /// implement [`ConvexProblem::hessian_banded`]. The default (`None`)
    /// keeps the dense path.
    fn bandwidth(&self) -> Option<usize> {
        None
    }
    /// Write the Hessian at `x` into the pre-zeroed banded matrix `h`
    /// (only required when [`ConvexProblem::bandwidth`] returns `Some`).
    fn hessian_banded(&self, _x: &[f64], _h: &mut BandedMat) {
        unreachable!("problems declaring bandwidth() must implement hessian_banded")
    }
}

/// Tuning knobs for the interior-point method. The defaults solve every
/// problem in this workspace to ~1e-9 gap in well under a millisecond.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverOptions {
    /// Target duality-gap bound `m/t`.
    pub tolerance: f64,
    /// Geometric growth factor for the barrier weight.
    pub mu: f64,
    /// Initial barrier weight.
    pub t0: f64,
    /// Newton iterations allowed per centering step.
    pub max_newton_iters: usize,
    /// Maximum outer (centering) steps.
    pub max_outer_iters: usize,
    /// Armijo slope fraction for backtracking.
    pub armijo: f64,
    /// Backtracking shrink factor.
    pub beta: f64,
    /// Ceiling on the initial barrier weight chosen by
    /// [`minimize_warm`]. The warm solve probes the Newton decrement of
    /// the barrier objective at the warm point over a geometric ladder
    /// of weights `t0·mu^k ≤ warm_t0` and starts at the largest weight
    /// where the point is still nearly centered — a good hint skips the
    /// loose early centering steps a cold start pays for, while a poor
    /// hint degrades gracefully to the cold schedule.
    pub warm_t0: f64,
    /// Smallest problem dimension at which a declared
    /// [`ConvexProblem::bandwidth`] switches Newton steps to the banded
    /// factorization. Below this the dense path runs even for banded
    /// problems: at paper scale (N=4) dense is already fast and keeping
    /// it bit-identical to earlier releases protects the committed
    /// baselines. Tests set `0` to force the banded path everywhere.
    #[serde(default = "default_banded_min_dim")]
    pub banded_min_dim: usize,
}

fn default_banded_min_dim() -> usize {
    32
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tolerance: 1e-9,
            mu: 20.0,
            t0: 1.0,
            max_newton_iters: 80,
            max_outer_iters: 60,
            armijo: 0.01,
            beta: 0.5,
            warm_t0: 1e4,
            banded_min_dim: default_banded_min_dim(),
        }
    }
}

/// A successful solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    /// The minimizer.
    pub x: Vec<f64>,
    /// Objective value at the minimizer.
    pub value: f64,
    /// Guaranteed bound on suboptimality (barrier duality gap `m/t`).
    pub gap: f64,
    /// Total Newton iterations used.
    pub newton_iters: usize,
    /// Outer (centering) steps taken.
    pub outer_iters: usize,
    /// Barrier weight `t` at the start of each centering step — the μ
    /// trajectory of the solve, for telemetry.
    pub barrier_ts: Vec<f64>,
    /// Newton iterations used by each centering step (parallel to
    /// `barrier_ts`).
    pub barrier_newtons: Vec<usize>,
    /// Wall-clock microseconds spent in each centering step (parallel to
    /// `barrier_ts`), for span tracing.
    pub barrier_wall_micros: Vec<f64>,
    /// Bandwidth of the banded Newton factorization when that path ran,
    /// `None` for dense. Skipped when absent so serialized solutions
    /// from the dense path are byte-identical to earlier releases.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub banded_bandwidth: Option<usize>,
    /// Wall-clock microseconds spent assembling, factoring, and solving
    /// the Newton KKT systems when the banded path ran (`None` for
    /// dense). Isolates the O(N·bw²) per-step kernel from the
    /// line-search barrier evaluations, whose trial count is a property
    /// of the instance rather than of the factorization.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub newton_solve_micros: Option<f64>,
}

/// Why a solve failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SolveError {
    /// The starting point violates (or touches) some constraints; the
    /// labels of the offending constraints are listed.
    NotStrictlyFeasible(Vec<String>),
    /// Phase-1 certified the constraint set has empty interior.
    Infeasible {
        /// Best-effort max violation found (≥ 0).
        violation: f64,
    },
    /// Newton's method broke down (non-PD Hessian after regularization,
    /// or non-finite values).
    Numerical(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NotStrictlyFeasible(labels) => {
                write!(
                    f,
                    "start point not strictly feasible for: {}",
                    labels.join(", ")
                )
            }
            SolveError::Infeasible { violation } => {
                write!(
                    f,
                    "constraints have empty interior (violation {violation:.3e})"
                )
            }
            SolveError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Minimize `problem` over `constraints` starting from a strictly
/// feasible `x0`.
///
/// Use [`find_interior_point`] first if no strictly feasible point is
/// known.
pub fn minimize(
    problem: &dyn ConvexProblem,
    constraints: &ConstraintSet,
    x0: &[f64],
    opts: &SolverOptions,
) -> Result<Solution, SolveError> {
    let n = problem.dim();
    assert_eq!(
        constraints.dim(),
        n,
        "constraint/problem dimension mismatch"
    );
    assert_eq!(x0.len(), n, "start point dimension mismatch");

    let bad: Vec<String> = constraints
        .constraints()
        .iter()
        .filter(|c| c.slack(x0) <= 0.0)
        .map(|c| c.label.clone())
        .collect();
    if !bad.is_empty() {
        return Err(SolveError::NotStrictlyFeasible(bad));
    }

    let m = constraints.len().max(1) as f64;
    let plan = NewtonPlan::choose(problem, constraints, opts);
    let banded_bandwidth = plan.bandwidth();
    let mut x = x0.to_vec();
    let mut t = opts.t0;
    let mut total_newton = 0usize;
    let mut barrier_ts = Vec::new();
    let mut barrier_newtons = Vec::new();
    let mut barrier_wall_micros = Vec::new();
    let mut kernel_micros = 0.0;

    for outer in 0..opts.max_outer_iters {
        barrier_ts.push(t);
        let step_start = std::time::Instant::now();
        let newtons = center(
            problem,
            constraints,
            &mut x,
            t,
            opts,
            &plan,
            &mut kernel_micros,
        )?;
        barrier_wall_micros.push(step_start.elapsed().as_secs_f64() * 1e6);
        barrier_newtons.push(newtons);
        total_newton += newtons;
        if m / t < opts.tolerance {
            return Ok(Solution {
                value: problem.value(&x),
                gap: m / t,
                newton_iters: total_newton,
                outer_iters: outer + 1,
                barrier_ts,
                barrier_newtons,
                barrier_wall_micros,
                banded_bandwidth,
                newton_solve_micros: banded_bandwidth.map(|_| kernel_micros),
                x,
            });
        }
        t *= opts.mu;
    }
    // Outer loop exhausted; the gap bound still holds for the last t.
    Ok(Solution {
        value: problem.value(&x),
        gap: m / (t / opts.mu),
        newton_iters: total_newton,
        outer_iters: opts.max_outer_iters,
        barrier_ts,
        barrier_newtons,
        barrier_wall_micros,
        banded_bandwidth,
        newton_solve_micros: banded_bandwidth.map(|_| kernel_micros),
        x,
    })
}

/// How the Newton systems of one solve are factored: chosen once per
/// [`minimize`] call from the declared bandwidth and constraint shape.
enum NewtonPlan {
    Dense,
    Banded(BandedPlan),
}

/// The banded strategy: constraints whose support span fits the band are
/// assembled into the banded matrix `B`; the `wide` remainder (for the
/// enforced-waits problem, exactly the dense deadline row) is folded in
/// by the Sherman–Morrison–Woodbury identity
/// `H⁻¹ = B⁻¹ − B⁻¹A (C⁻¹ + AᵀB⁻¹A)⁻¹ AᵀB⁻¹`
/// with `A` the wide coefficient columns and `C = diag(1/s_j²)`, costing
/// `|wide|+1` banded solves plus one tiny `|wide|×|wide|` dense solve
/// per Newton step.
struct BandedPlan {
    bw: usize,
    /// Support span `(lo, hi)` of each constraint, parallel to the set.
    spans: Vec<(usize, usize)>,
    /// Indices of constraints handled by the low-rank correction.
    wide: Vec<usize>,
    /// Every constraint's in-span coefficients, concatenated. The
    /// constraint set stores each row as a full-length vector, so at
    /// depth `N` the rows span O(N²) of scattered memory while holding
    /// only O(N) nonzeros — the slack/gradient/line-search loops that
    /// run every Newton iteration would eat a cache miss per
    /// constraint. Packing the spans once per solve keeps those loops
    /// streaming over one contiguous O(nnz) buffer.
    packed: Vec<f64>,
    /// Prefix offsets into `packed`, length `constraints + 1`.
    offsets: Vec<usize>,
    /// Right-hand sides, contiguous, parallel to the set.
    rhs: Vec<f64>,
}

impl BandedPlan {
    /// Packed in-span coefficients of constraint `ci`.
    #[inline]
    fn row(&self, ci: usize) -> &[f64] {
        &self.packed[self.offsets[ci]..self.offsets[ci + 1]]
    }

    /// Slack `rhs − a·x` of constraint `ci` evaluated over its support
    /// span only — equal to the full dot product (the skipped terms
    /// are exact zeros), in O(span), read from the packed buffer.
    #[inline]
    fn slack(&self, ci: usize, x: &[f64]) -> f64 {
        let (lo, hi) = self.spans[ci];
        let mut acc = 0.0;
        for (cj, xj) in self.row(ci).iter().zip(&x[lo..=hi]) {
            acc += cj * xj;
        }
        self.rhs[ci] - acc
    }
}

/// Support span of a coefficient vector: first and last nonzero index
/// (`(0, 0)` for an all-zero row, which any span handles trivially).
fn support_span(coeffs: &[f64]) -> (usize, usize) {
    let lo = coeffs.iter().position(|&c| c != 0.0).unwrap_or(0);
    let hi = coeffs.iter().rposition(|&c| c != 0.0).unwrap_or(0);
    (lo, hi)
}

impl NewtonPlan {
    fn choose(
        problem: &dyn ConvexProblem,
        constraints: &ConstraintSet,
        opts: &SolverOptions,
    ) -> NewtonPlan {
        let n = problem.dim();
        let bw = match problem.bandwidth() {
            Some(bw) if n >= opts.banded_min_dim.max(2) && bw + 1 < n => bw,
            _ => return NewtonPlan::Dense,
        };
        let spans: Vec<(usize, usize)> = constraints
            .constraints()
            .iter()
            .map(|c| support_span(&c.coeffs))
            .collect();
        let mut wide = Vec::new();
        for (ci, &(lo, hi)) in spans.iter().enumerate() {
            if hi - lo > bw {
                wide.push(ci);
            }
        }
        // The SMW correction pays |wide| banded solves plus a dense
        // |wide|² system per step; past a small rank it stops being a
        // win over dense.
        if wide.len() * 4 > n {
            return NewtonPlan::Dense;
        }
        let cons = constraints.constraints();
        let mut offsets = Vec::with_capacity(cons.len() + 1);
        offsets.push(0);
        let mut packed = Vec::new();
        let mut rhs = Vec::with_capacity(cons.len());
        for (c, &(lo, hi)) in cons.iter().zip(&spans) {
            packed.extend_from_slice(&c.coeffs[lo..=hi]);
            offsets.push(packed.len());
            rhs.push(c.rhs);
        }
        NewtonPlan::Banded(BandedPlan {
            bw,
            spans,
            wide,
            packed,
            offsets,
            rhs,
        })
    }

    fn bandwidth(&self) -> Option<usize> {
        match self {
            NewtonPlan::Dense => None,
            NewtonPlan::Banded(p) => Some(p.bw),
        }
    }
}

/// One centering step: Newton on `t·f(x) − Σ log(slack_j)`.
/// Returns the number of Newton iterations used. The banded path adds
/// the wall time of its Newton-system solves to `kernel_micros`; the
/// dense path leaves it untouched.
fn center(
    problem: &dyn ConvexProblem,
    constraints: &ConstraintSet,
    x: &mut [f64],
    t: f64,
    opts: &SolverOptions,
    plan: &NewtonPlan,
    kernel_micros: &mut f64,
) -> Result<usize, SolveError> {
    match plan {
        NewtonPlan::Dense => center_dense(problem, constraints, x, t, opts),
        NewtonPlan::Banded(p) => center_banded(problem, constraints, x, t, opts, p, kernel_micros),
    }
}

fn center_dense(
    problem: &dyn ConvexProblem,
    constraints: &ConstraintSet,
    x: &mut [f64],
    t: f64,
    opts: &SolverOptions,
) -> Result<usize, SolveError> {
    let n = problem.dim();
    let mut g = vec![0.0; n];
    let mut h = Mat::zeros(n, n);
    // One scratch buffer shared by every escalating-ridge retry of every
    // Newton iteration, instead of cloning the Hessian per attempt.
    let mut scratch = Mat::zeros(n, n);

    for iter in 0..opts.max_newton_iters {
        // Gradient and Hessian of the barrier-augmented objective.
        problem.gradient(x, &mut g);
        for gi in g.iter_mut() {
            *gi *= t;
        }
        h.fill_zero();
        problem.hessian(x, &mut h);
        for i in 0..n {
            for j in 0..n {
                h[(i, j)] *= t;
            }
        }
        for c in constraints.constraints() {
            let s = c.slack(x);
            if s <= 0.0 || !s.is_finite() {
                return Err(SolveError::Numerical(format!(
                    "lost strict feasibility of '{}' during centering",
                    c.label
                )));
            }
            axpy(1.0 / s, &c.coeffs, &mut g);
            h.rank1_update(&c.coeffs, 1.0 / (s * s));
        }

        // Newton direction, with escalating ridge if the Hessian is not
        // numerically positive definite.
        let mut d = None;
        let mut ridge = 0.0;
        for _ in 0..8 {
            scratch.copy_from(&h);
            if ridge > 0.0 {
                scratch.add_diagonal(ridge);
            }
            if scratch.cholesky_in_place() {
                let mut sol = g.clone();
                scratch.chol_solve_into(&mut sol);
                d = Some(sol);
                break;
            }
            ridge = if ridge == 0.0 { 1e-12 } else { ridge * 100.0 };
        }
        let mut d =
            d.ok_or_else(|| SolveError::Numerical("Hessian not positive definite".into()))?;
        for di in d.iter_mut() {
            *di = -*di;
        }

        // Newton decrement as the stopping criterion: λ² = −gᵀd.
        let lambda2 = -dot(&g, &d);
        if !lambda2.is_finite() {
            return Err(SolveError::Numerical("non-finite Newton decrement".into()));
        }
        if lambda2 / 2.0 <= 1e-12 {
            return Ok(iter);
        }

        // Backtracking line search: first shrink into the strictly
        // feasible region, then Armijo on the barrier objective.
        let phi = |x: &[f64]| -> f64 {
            let mut v = t * problem.value(x);
            for c in constraints.constraints() {
                let s = c.slack(x);
                if s <= 0.0 {
                    return f64::INFINITY;
                }
                v -= s.ln();
            }
            v
        };
        let phi0 = phi(x);
        let slope = dot(&g, &d); // negative
        let mut step = 1.0;
        let mut trial = x.to_vec();
        let mut ok = false;
        for _ in 0..100 {
            trial.copy_from_slice(x);
            axpy(step, &d, &mut trial);
            let v = phi(&trial);
            if v.is_finite() && v <= phi0 + opts.armijo * step * slope {
                ok = true;
                break;
            }
            step *= opts.beta;
        }
        if !ok {
            // No progress possible: accept current point as centered.
            return Ok(iter);
        }
        x.copy_from_slice(&trial);
        if norm2(&d) * step < 1e-14 {
            return Ok(iter + 1);
        }
    }
    Ok(opts.max_newton_iters)
}

/// Errors from one banded Newton system solve.
enum BandedSolveError {
    /// A slack went non-positive: centering lost strict feasibility of
    /// the named constraint.
    LostFeasibility(String),
    /// Factorization failed even after ridge escalation.
    NotPositiveDefinite,
}

/// Full-length vector with `pad` extra doubles of capacity. The hot
/// banded-loop buffers are all exactly `n` doubles; at power-of-two
/// dims (`n = 512` → 4 KiB) same-size allocations can land an exact
/// multiple of 4 KiB apart, and the loop's same-index read/write pairs
/// across buffers then stall on 4K aliasing (measured ~60% extra
/// per-iteration wall at N = 512 vs the N = 480/544 trend line).
/// Giving each buffer a distinct pad keeps their relative offsets off
/// the page stride.
fn padded_vec(n: usize, pad: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(n + pad);
    v.resize(n, 0.0);
    v
}

/// Reusable buffers for the banded Newton loop, allocated once per
/// centering so the per-iteration path performs no full-length
/// allocations (the previous per-step `to_vec`/`clone` churn recycled
/// same-size heap chunks at run-dependent offsets, making the N = 512
/// cost swing run to run).
struct BandedWorkspace {
    /// Barrier gradient (written by every solve).
    g: Vec<f64>,
    /// Newton solution `H⁻¹ g` (written by every successful solve).
    d: Vec<f64>,
    /// Banded Hessian part B.
    b: BandedMat,
    /// Factorization scratch (B + ridge, decomposed in place).
    scratch: BandedMat,
    /// SMW solves `B⁻¹ a_j`, one buffer per wide row.
    us: Vec<Vec<f64>>,
    /// Slacks of the wide rows at the current iterate.
    wide_slacks: Vec<f64>,
}

impl BandedWorkspace {
    fn new(n: usize, p: &BandedPlan) -> Self {
        BandedWorkspace {
            g: padded_vec(n, 8),
            d: padded_vec(n, 24),
            b: BandedMat::zeros(n, p.bw),
            scratch: BandedMat::zeros(n, p.bw),
            us: (0..p.wide.len())
                .map(|j| padded_vec(n, 40 + 16 * j))
                .collect(),
            wide_slacks: vec![0.0; p.wide.len()],
        }
    }
}

/// Solve one barrier Newton system `H d = g` via the banded plan,
/// leaving the barrier gradient in `ws.g` and the solution in `ws.d`.
/// `H = B + ACAᵀ` with `B` the banded part (objective Hessian + narrow
/// constraints) and the wide constraints folded in by SMW.
/// `ridge_attempts = 1` disables ridge escalation (the probing paths
/// want a plain PD check).
fn banded_newton_solve(
    problem: &dyn ConvexProblem,
    constraints: &ConstraintSet,
    x: &[f64],
    t: f64,
    p: &BandedPlan,
    ws: &mut BandedWorkspace,
    ridge_attempts: usize,
) -> Result<(), BandedSolveError> {
    let cons = constraints.constraints();

    // Barrier gradient and banded Hessian part B.
    problem.gradient(x, &mut ws.g);
    for gi in ws.g.iter_mut() {
        *gi *= t;
    }
    ws.b.fill_zero();
    problem.hessian_banded(x, &mut ws.b);
    ws.b.scale(t);
    for (ci, con) in cons.iter().enumerate() {
        let (lo, hi) = p.spans[ci];
        let s = p.slack(ci, x);
        if s <= 0.0 || !s.is_finite() {
            return Err(BandedSolveError::LostFeasibility(con.label.clone()));
        }
        let inv = 1.0 / s;
        for (gj, cj) in ws.g[lo..=hi].iter_mut().zip(p.row(ci)) {
            *gj += inv * cj;
        }
        if let Some(w) = p.wide.iter().position(|&wi| wi == ci) {
            ws.wide_slacks[w] = s;
        } else {
            ws.b.rank1_update_packed(p.row(ci), inv * inv, lo);
        }
    }

    // Factor B (+ ridge) and apply the SMW correction for wide rows.
    let mut ridge = 0.0;
    for _ in 0..ridge_attempts {
        ws.scratch.copy_from(&ws.b);
        if ridge > 0.0 {
            ws.scratch.add_diagonal(ridge);
        }
        if ws.scratch.cholesky_in_place() {
            ws.d.copy_from_slice(&ws.g);
            ws.scratch.solve_into(&mut ws.d);
            if p.wide.is_empty() {
                return Ok(());
            }
            // u_j = B⁻¹ a_j for each wide row, then the capacitance
            // system (C⁻¹ + AᵀB⁻¹A) y = Aᵀu0 with C⁻¹ = diag(s_j²).
            let k = p.wide.len();
            for (u, &ci) in ws.us.iter_mut().zip(&p.wide) {
                u.copy_from_slice(&cons[ci].coeffs);
                ws.scratch.solve_into(u);
            }
            let mut m = Mat::zeros(k, k);
            let mut r = vec![0.0; k];
            for (pi, &cp) in p.wide.iter().enumerate() {
                let ap = &cons[cp].coeffs;
                r[pi] = dot(ap, &ws.d);
                for qi in 0..k {
                    m[(pi, qi)] = dot(ap, &ws.us[qi]);
                }
                m[(pi, pi)] += ws.wide_slacks[pi] * ws.wide_slacks[pi];
            }
            if let Some(chol) = m.cholesky() {
                let y = chol.solve(&r);
                for (yi, u) in y.iter().zip(&ws.us) {
                    axpy(-yi, u, &mut ws.d);
                }
                return Ok(());
            }
            // Capacitance system not PD (extreme ill-conditioning):
            // escalate the ridge like a failed banded factor.
        }
        ridge = if ridge == 0.0 { 1e-12 } else { ridge * 100.0 };
    }
    Err(BandedSolveError::NotPositiveDefinite)
}

/// Banded centering: the same damped Newton loop as [`center_dense`]
/// with every per-iteration cost kept O(n·bw² + m·span) — slacks,
/// gradients, and line-search barrier evaluations all run over
/// constraint support spans, and the factorization is banded + SMW.
fn center_banded(
    problem: &dyn ConvexProblem,
    constraints: &ConstraintSet,
    x: &mut [f64],
    t: f64,
    opts: &SolverOptions,
    p: &BandedPlan,
    kernel_micros: &mut f64,
) -> Result<usize, SolveError> {
    let n = problem.dim();
    let mut ws = BandedWorkspace::new(n, p);
    let mut trial = padded_vec(n, 56);

    for iter in 0..opts.max_newton_iters {
        let kernel_start = std::time::Instant::now();
        let solved = banded_newton_solve(problem, constraints, x, t, p, &mut ws, 8);
        *kernel_micros += kernel_start.elapsed().as_secs_f64() * 1e6;
        match solved {
            Ok(()) => {}
            Err(BandedSolveError::LostFeasibility(label)) => {
                return Err(SolveError::Numerical(format!(
                    "lost strict feasibility of '{label}' during centering"
                )))
            }
            Err(BandedSolveError::NotPositiveDefinite) => {
                return Err(SolveError::Numerical(
                    "Hessian not positive definite".into(),
                ))
            }
        };
        let (g, d) = (&ws.g, &mut ws.d);
        for di in d.iter_mut() {
            *di = -*di;
        }
        let d = &*d;

        let lambda2 = -dot(g, d);
        if !lambda2.is_finite() {
            return Err(SolveError::Numerical("non-finite Newton decrement".into()));
        }
        if lambda2 / 2.0 <= 1e-12 {
            return Ok(iter);
        }

        let phi = |xt: &[f64]| -> f64 {
            let mut v = t * problem.value(xt);
            for ci in 0..constraints.len() {
                let s = p.slack(ci, xt);
                if s <= 0.0 {
                    return f64::INFINITY;
                }
                v -= s.ln();
            }
            v
        };
        let phi0 = phi(x);
        let slope = dot(g, d); // negative
        let mut step = 1.0;
        let mut ok = false;
        for _ in 0..100 {
            trial.copy_from_slice(x);
            axpy(step, d, &mut trial);
            let v = phi(&trial);
            if v.is_finite() && v <= phi0 + opts.armijo * step * slope {
                ok = true;
                break;
            }
            step *= opts.beta;
        }
        if !ok {
            return Ok(iter);
        }
        x.copy_from_slice(&trial);
        if norm2(d) * step < 1e-14 {
            return Ok(iter + 1);
        }
    }
    Ok(opts.max_newton_iters)
}

/// Phase-1: find a strictly feasible point for `constraints`, or certify
/// that none exists (within `radius` of `x0`).
///
/// Solves `min s  s.t.  a_j·x − b_j ≤ s, |x_i − x0_i| ≤ radius` with the
/// same barrier machinery. If the optimum has `s < 0` the returned `x`
/// is strictly feasible for the original set.
pub fn find_interior_point(
    constraints: &ConstraintSet,
    x0: &[f64],
    radius: f64,
    opts: &SolverOptions,
) -> Result<Vec<f64>, SolveError> {
    find_interior_point_detailed(constraints, x0, radius, opts).map(|(x, _)| x)
}

/// [`find_interior_point`] variant that also reports how many Newton
/// iterations the phase-1 solve used (0 when `x0` was already strictly
/// interior), so callers can account the cost in telemetry.
pub fn find_interior_point_detailed(
    constraints: &ConstraintSet,
    x0: &[f64],
    radius: f64,
    opts: &SolverOptions,
) -> Result<(Vec<f64>, usize), SolveError> {
    let n = constraints.dim();
    assert_eq!(x0.len(), n);
    // Fast path: x0 may already be strictly interior.
    if constraints
        .constraints()
        .iter()
        .all(|c| c.slack(x0) > 1e-12)
    {
        return Ok((x0.to_vec(), 0));
    }

    // Augmented problem over (x, s).
    struct Phase1;
    impl ConvexProblem for Phase1 {
        fn dim(&self) -> usize {
            unreachable!("dim provided via DimWrap")
        }
        fn value(&self, _x: &[f64]) -> f64 {
            0.0
        }
        fn gradient(&self, _x: &[f64], _g: &mut [f64]) {}
        fn hessian(&self, _x: &[f64], _h: &mut Mat) {}
    }
    struct LinearS {
        dim: usize,
    }
    impl ConvexProblem for LinearS {
        fn dim(&self) -> usize {
            self.dim
        }
        fn value(&self, x: &[f64]) -> f64 {
            x[self.dim - 1]
        }
        fn gradient(&self, _x: &[f64], g: &mut [f64]) {
            for gi in g.iter_mut() {
                *gi = 0.0;
            }
            g[self.dim - 1] = 1.0;
        }
        fn hessian(&self, _x: &[f64], _h: &mut Mat) {}
    }
    let _ = Phase1; // silence dead-code on the illustrative struct

    let mut aug = ConstraintSet::new(n + 1);
    for c in constraints.constraints() {
        let mut coeffs = c.coeffs.clone();
        coeffs.push(-1.0);
        aug.push(coeffs, c.rhs, c.label.clone());
    }
    for i in 0..n {
        let mut up = vec![0.0; n + 1];
        up[i] = 1.0;
        aug.push(up, x0[i] + radius, format!("trust+ x{i}"));
        let mut lo = vec![0.0; n + 1];
        lo[i] = -1.0;
        aug.push(lo, radius - x0[i], format!("trust- x{i}"));
    }
    // Bound s above so the barrier domain is bounded.
    let s0 = constraints.max_violation(x0).max(0.0) + 1.0;
    let mut sb = vec![0.0; n + 1];
    sb[n] = 1.0;
    aug.push(sb, 2.0 * s0 + 1.0, "s upper bound");

    let mut z0 = x0.to_vec();
    z0.push(s0);
    let sol = minimize(&LinearS { dim: n + 1 }, &aug, &z0, opts)?;
    let s_opt = sol.x[n];
    if s_opt < -1e-12 {
        Ok((sol.x[..n].to_vec(), sol.newton_iters))
    } else {
        Err(SolveError::Infeasible {
            violation: s_opt.max(0.0),
        })
    }
}

/// A warm-started solve: the [`Solution`] plus an accounting of what the
/// warm start bought.
#[derive(Debug, Clone)]
pub struct WarmSolution {
    /// The converged solve.
    pub solution: Solution,
    /// True if the warm point was already strictly feasible and phase-1
    /// was skipped entirely.
    pub warm_feasible: bool,
    /// Newton iterations spent restoring feasibility (0 when
    /// `warm_feasible`).
    pub phase1_newtons: usize,
}

/// Newton decrement squared `gᵀH⁻¹g` of the barrier objective
/// `t·f(x) − Σ log(slack_j)` at `x`, or `None` when it cannot be
/// evaluated there (a non-positive slack or a non-PD Hessian). Small
/// values mean `x` is nearly centered for weight `t`, so a centering
/// step starting there is cheap.
fn barrier_decrement2(
    problem: &dyn ConvexProblem,
    constraints: &ConstraintSet,
    x: &[f64],
    t: f64,
    opts: &SolverOptions,
) -> Option<f64> {
    let n = problem.dim();
    if let NewtonPlan::Banded(p) = NewtonPlan::choose(problem, constraints, opts) {
        let mut ws = BandedWorkspace::new(n, &p);
        banded_newton_solve(problem, constraints, x, t, &p, &mut ws, 1).ok()?;
        let l2 = dot(&ws.g, &ws.d);
        return l2.is_finite().then_some(l2);
    }
    let mut g = vec![0.0; n];
    problem.gradient(x, &mut g);
    for gi in g.iter_mut() {
        *gi *= t;
    }
    let mut h = Mat::zeros(n, n);
    problem.hessian(x, &mut h);
    for i in 0..n {
        for j in 0..n {
            h[(i, j)] *= t;
        }
    }
    for c in constraints.constraints() {
        let s = c.slack(x);
        if s <= 0.0 || !s.is_finite() {
            return None;
        }
        axpy(1.0 / s, &c.coeffs, &mut g);
        h.rank1_update(&c.coeffs, 1.0 / (s * s));
    }
    let chol = h.cholesky()?;
    let d = chol.solve(&g);
    let l2 = dot(&g, &d);
    l2.is_finite().then_some(l2)
}

/// Largest barrier weight in `{t0·mu^k : k ≥ 0, ≤ warm_t0}` at which
/// `x` still looks nearly centered, judged by the Newton decrement.
/// Probing costs one Hessian factorization per rung — negligible next
/// to the centering iterations a wrong choice wastes.
fn warm_barrier_weight(
    problem: &dyn ConvexProblem,
    constraints: &ConstraintSet,
    x: &[f64],
    opts: &SolverOptions,
) -> f64 {
    // λ²/2 bounds the barrier-objective excess over the centered point;
    // centering from within this budget takes only a few damped steps.
    const DECREMENT_BUDGET: f64 = 10.0;
    let mut best = opts.t0;
    let mut t = opts.t0 * opts.mu;
    while t <= opts.warm_t0 {
        match barrier_decrement2(problem, constraints, x, t, opts) {
            Some(l2) if l2 / 2.0 <= DECREMENT_BUDGET => best = t,
            _ => break,
        }
        t *= opts.mu;
    }
    best
}

/// Minimize `problem` over `constraints` seeded from `warm`, a point
/// expected to be near the optimum (e.g. the solution of a neighboring
/// problem instance).
///
/// If `warm` is strictly feasible the barrier starts at the largest
/// weight (capped by [`SolverOptions::warm_t0`]) at which `warm` is
/// still nearly centered, skipping the loose early centering steps a
/// cold start pays for. Otherwise phase-1 restores feasibility starting
/// from `warm` (still cheaper than a cold phase-1 when `warm` is close)
/// and the restored point is probed the same way.
pub fn minimize_warm(
    problem: &dyn ConvexProblem,
    constraints: &ConstraintSet,
    warm: &[f64],
    radius: f64,
    opts: &SolverOptions,
) -> Result<WarmSolution, SolveError> {
    let warm_feasible = constraints
        .constraints()
        .iter()
        .all(|c| c.slack(warm) > 1e-12);
    if warm_feasible {
        let mut boosted = opts.clone();
        boosted.t0 = warm_barrier_weight(problem, constraints, warm, opts);
        let solution = minimize(problem, constraints, warm, &boosted)?;
        return Ok(WarmSolution {
            solution,
            warm_feasible: true,
            phase1_newtons: 0,
        });
    }
    let (x0, phase1_newtons) = find_interior_point_detailed(constraints, warm, radius, opts)?;
    let mut boosted = opts.clone();
    boosted.t0 = warm_barrier_weight(problem, constraints, &x0, opts);
    let solution = minimize(problem, constraints, &x0, &boosted)?;
    Ok(WarmSolution {
        solution,
        warm_feasible: false,
        phase1_newtons,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Separable quadratic: Σ (x_i − c_i)².
    struct Quadratic {
        center: Vec<f64>,
    }
    impl ConvexProblem for Quadratic {
        fn dim(&self) -> usize {
            self.center.len()
        }
        fn value(&self, x: &[f64]) -> f64 {
            x.iter()
                .zip(&self.center)
                .map(|(xi, ci)| (xi - ci).powi(2))
                .sum()
        }
        fn gradient(&self, x: &[f64], g: &mut [f64]) {
            for i in 0..x.len() {
                g[i] = 2.0 * (x[i] - self.center[i]);
            }
        }
        fn hessian(&self, _x: &[f64], h: &mut Mat) {
            for i in 0..h.rows() {
                h[(i, i)] = 2.0;
            }
        }
    }

    /// Σ t_i / x_i — the paper's active-fraction shape.
    struct Reciprocal {
        t: Vec<f64>,
    }
    impl ConvexProblem for Reciprocal {
        fn dim(&self) -> usize {
            self.t.len()
        }
        fn value(&self, x: &[f64]) -> f64 {
            x.iter().zip(&self.t).map(|(xi, ti)| ti / xi).sum()
        }
        fn gradient(&self, x: &[f64], g: &mut [f64]) {
            for i in 0..x.len() {
                g[i] = -self.t[i] / (x[i] * x[i]);
            }
        }
        fn hessian(&self, x: &[f64], h: &mut Mat) {
            for i in 0..x.len() {
                h[(i, i)] = 2.0 * self.t[i] / (x[i] * x[i] * x[i]);
            }
        }
    }

    #[test]
    fn unconstrained_interior_minimum() {
        // Min of (x-1)² + (y-2)² inside a generous box: hits the center.
        let p = Quadratic {
            center: vec![1.0, 2.0],
        };
        let mut cs = ConstraintSet::new(2);
        cs.push_upper_bound(0, 100.0, "x ub");
        cs.push_upper_bound(1, 100.0, "y ub");
        cs.push_lower_bound(0, -100.0, "x lb");
        cs.push_lower_bound(1, -100.0, "y lb");
        let sol = minimize(&p, &cs, &[0.0, 0.0], &SolverOptions::default()).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-6, "{:?}", sol.x);
        assert!((sol.x[1] - 2.0).abs() < 1e-6, "{:?}", sol.x);
        assert!(sol.gap < 1e-8);
        // Per-step telemetry is parallel to the μ trajectory and
        // accounts for every Newton iteration.
        assert_eq!(sol.barrier_ts.len(), sol.outer_iters);
        assert_eq!(sol.barrier_newtons.len(), sol.outer_iters);
        assert_eq!(sol.barrier_wall_micros.len(), sol.outer_iters);
        assert_eq!(sol.barrier_newtons.iter().sum::<usize>(), sol.newton_iters);
        assert!(sol.barrier_wall_micros.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn active_constraint_binds() {
        // Min (x-5)² s.t. x ≤ 2 → x* = 2.
        let p = Quadratic { center: vec![5.0] };
        let mut cs = ConstraintSet::new(1);
        cs.push_upper_bound(0, 2.0, "cap");
        cs.push_lower_bound(0, -10.0, "floor");
        let sol = minimize(&p, &cs, &[0.0], &SolverOptions::default()).unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-5, "{:?}", sol.x);
    }

    #[test]
    fn reciprocal_with_budget_matches_waterfilling_closed_form() {
        // min t1/x1 + t2/x2 s.t. x1 + x2 ≤ B, x ≥ ε.
        // KKT: x_i ∝ sqrt(t_i), budget tight.
        let t = vec![1.0, 4.0];
        let b = 10.0;
        let p = Reciprocal { t: t.clone() };
        let mut cs = ConstraintSet::new(2);
        cs.push(vec![1.0, 1.0], b, "budget");
        cs.push_lower_bound(0, 0.01, "x1 lb");
        cs.push_lower_bound(1, 0.01, "x2 lb");
        let sol = minimize(&p, &cs, &[1.0, 1.0], &SolverOptions::default()).unwrap();
        let scale = b / (t[0].sqrt() + t[1].sqrt());
        let expect = [t[0].sqrt() * scale, t[1].sqrt() * scale];
        assert!(
            (sol.x[0] - expect[0]).abs() < 1e-4,
            "{:?} vs {:?}",
            sol.x,
            expect
        );
        assert!(
            (sol.x[1] - expect[1]).abs() < 1e-4,
            "{:?} vs {:?}",
            sol.x,
            expect
        );
    }

    #[test]
    fn rejects_infeasible_start() {
        let p = Quadratic { center: vec![0.0] };
        let mut cs = ConstraintSet::new(1);
        cs.push_upper_bound(0, 1.0, "cap");
        let err = minimize(&p, &cs, &[2.0], &SolverOptions::default()).unwrap_err();
        match err {
            SolveError::NotStrictlyFeasible(labels) => assert_eq!(labels, vec!["cap".to_string()]),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn boundary_start_is_rejected_too() {
        let p = Quadratic { center: vec![0.0] };
        let mut cs = ConstraintSet::new(1);
        cs.push_upper_bound(0, 1.0, "cap");
        assert!(matches!(
            minimize(&p, &cs, &[1.0], &SolverOptions::default()),
            Err(SolveError::NotStrictlyFeasible(_))
        ));
    }

    #[test]
    fn phase1_finds_interior_point() {
        let mut cs = ConstraintSet::new(2);
        cs.push(vec![1.0, 1.0], 10.0, "sum");
        cs.push_lower_bound(0, 1.0, "x0 lb");
        cs.push_lower_bound(1, 1.0, "x1 lb");
        // Start infeasible (below the lower bounds).
        let x = find_interior_point(&cs, &[0.0, 0.0], 100.0, &SolverOptions::default()).unwrap();
        assert!(cs.is_feasible(&x, 0.0));
        for c in cs.constraints() {
            assert!(c.slack(&x) > 0.0, "not strictly feasible: {}", c.label);
        }
    }

    #[test]
    fn phase1_certifies_empty_interior() {
        let mut cs = ConstraintSet::new(1);
        cs.push_upper_bound(0, 1.0, "ub");
        cs.push_lower_bound(0, 2.0, "lb");
        let err = find_interior_point(&cs, &[0.0], 100.0, &SolverOptions::default()).unwrap_err();
        assert!(matches!(err, SolveError::Infeasible { .. }), "{err:?}");
    }

    #[test]
    fn phase1_fast_path_keeps_interior_start() {
        let mut cs = ConstraintSet::new(1);
        cs.push_upper_bound(0, 10.0, "ub");
        let x = find_interior_point(&cs, &[3.0], 100.0, &SolverOptions::default()).unwrap();
        assert_eq!(x, vec![3.0]);
    }

    #[test]
    fn solution_respects_all_constraints() {
        let p = Reciprocal {
            t: vec![287.0, 955.0, 402.0, 2753.0],
        };
        let mut cs = ConstraintSet::new(4);
        cs.push(vec![1.0, 3.0, 9.0, 6.0], 2e5, "deadline");
        for (i, t) in [287.0, 955.0, 402.0, 2753.0].iter().enumerate() {
            cs.push_lower_bound(i, *t, format!("x{i} >= t{i}"));
        }
        cs.push_upper_bound(0, 12_800.0, "rate");
        let x0 = vec![300.0, 1000.0, 450.0, 2800.0];
        let sol = minimize(&p, &cs, &x0, &SolverOptions::default()).unwrap();
        assert!(cs.is_feasible(&sol.x, 1e-6), "{:?}", sol.x);
        assert!(
            sol.value < p.value(&x0),
            "optimizer should improve on start"
        );
    }

    #[test]
    fn warm_start_from_near_optimum_uses_fewer_newton_iters() {
        // Same problem as solution_respects_all_constraints; warm-start
        // from a point close to the cold optimum and compare effort.
        let p = Reciprocal {
            t: vec![287.0, 955.0, 402.0, 2753.0],
        };
        let mut cs = ConstraintSet::new(4);
        cs.push(vec![1.0, 3.0, 9.0, 6.0], 2e5, "deadline");
        for (i, t) in [287.0, 955.0, 402.0, 2753.0].iter().enumerate() {
            cs.push_lower_bound(i, *t, format!("x{i} >= t{i}"));
        }
        cs.push_upper_bound(0, 12_800.0, "rate");
        let opts = SolverOptions::default();
        let x0 = vec![300.0, 1000.0, 450.0, 2800.0];
        let cold = minimize(&p, &cs, &x0, &opts).unwrap();

        // Nudge the cold optimum toward the interior so it is strictly
        // feasible, as a neighboring cell's schedule would be.
        let warm_pt: Vec<f64> = cold.x.iter().map(|&xi| xi * 0.999).collect();
        let warm = minimize_warm(&p, &cs, &warm_pt, 1e6, &opts).unwrap();
        assert!(warm.warm_feasible);
        assert_eq!(warm.phase1_newtons, 0);
        assert!(
            warm.solution.newton_iters < cold.newton_iters,
            "warm {} vs cold {}",
            warm.solution.newton_iters,
            cold.newton_iters
        );
        for (w, c) in warm.solution.x.iter().zip(&cold.x) {
            assert!(
                (w - c).abs() / c < 1e-4,
                "{:?} vs {:?}",
                warm.solution.x,
                cold.x
            );
        }
    }

    #[test]
    fn warm_start_from_infeasible_point_restores_and_converges() {
        let p = Quadratic { center: vec![5.0] };
        let mut cs = ConstraintSet::new(1);
        cs.push_upper_bound(0, 2.0, "cap");
        cs.push_lower_bound(0, -10.0, "floor");
        // Warm point sits outside the cap.
        let warm = minimize_warm(&p, &cs, &[3.0], 100.0, &SolverOptions::default()).unwrap();
        assert!(!warm.warm_feasible);
        assert!(warm.phase1_newtons > 0);
        assert!(
            (warm.solution.x[0] - 2.0).abs() < 1e-5,
            "{:?}",
            warm.solution.x
        );
    }

    #[test]
    fn detailed_phase1_fast_path_reports_zero_newtons() {
        let mut cs = ConstraintSet::new(1);
        cs.push_upper_bound(0, 10.0, "ub");
        let (x, newtons) =
            find_interior_point_detailed(&cs, &[3.0], 100.0, &SolverOptions::default()).unwrap();
        assert_eq!(x, vec![3.0]);
        assert_eq!(newtons, 0);
    }

    /// Reciprocal objective that also declares the banded Newton path
    /// (its Hessian is diagonal, so any bandwidth ≥ 0 holds it).
    struct BandedReciprocal {
        t: Vec<f64>,
    }
    impl ConvexProblem for BandedReciprocal {
        fn dim(&self) -> usize {
            self.t.len()
        }
        fn value(&self, x: &[f64]) -> f64 {
            x.iter().zip(&self.t).map(|(xi, ti)| ti / xi).sum()
        }
        fn gradient(&self, x: &[f64], g: &mut [f64]) {
            for i in 0..x.len() {
                g[i] = -self.t[i] / (x[i] * x[i]);
            }
        }
        fn hessian(&self, x: &[f64], h: &mut Mat) {
            for i in 0..x.len() {
                h[(i, i)] = 2.0 * self.t[i] / (x[i] * x[i] * x[i]);
            }
        }
        fn bandwidth(&self) -> Option<usize> {
            Some(1)
        }
        fn hessian_banded(&self, x: &[f64], h: &mut BandedMat) {
            for (i, xi) in x.iter().enumerate() {
                *h.at_mut(i, i) = 2.0 * self.t[i] / (xi * xi * xi);
            }
        }
    }

    /// Adjacent-difference chain constraints plus bounds: every row is
    /// narrow for bandwidth 1.
    fn chain_constraints(n: usize) -> ConstraintSet {
        let mut cs = ConstraintSet::new(n);
        for i in 0..n - 1 {
            let mut c = vec![0.0; n];
            c[i + 1] = 1.0;
            c[i] = -1.0;
            cs.push(c, 2.0, format!("edge {i}"));
        }
        for i in 0..n {
            cs.push_lower_bound(i, 0.5, format!("x{i} lb"));
            cs.push_upper_bound(i, 10.0, format!("x{i} ub"));
        }
        cs
    }

    #[test]
    fn banded_path_bitwise_matches_dense_when_all_rows_are_narrow() {
        // With no wide rows the banded factorization performs exactly
        // the dense arithmetic (skipped terms are exact zeros), so the
        // whole Newton trajectory is bit-identical.
        let n = 6;
        let cs = chain_constraints(n);
        let x0 = vec![1.0; n];
        let opts = SolverOptions {
            banded_min_dim: 0, // force banded below the default gate
            ..SolverOptions::default()
        };
        let banded = minimize(&BandedReciprocal { t: vec![1.0; n] }, &cs, &x0, &opts).unwrap();
        let dense = minimize(
            &Reciprocal { t: vec![1.0; n] },
            &cs,
            &x0,
            &SolverOptions::default(),
        )
        .unwrap();
        assert_eq!(banded.x, dense.x);
        assert_eq!(banded.newton_iters, dense.newton_iters);
        assert_eq!(banded.banded_bandwidth, Some(1));
        assert_eq!(dense.banded_bandwidth, None);
    }

    #[test]
    fn banded_path_with_wide_budget_row_matches_dense() {
        // A dense budget row exercises the SMW low-rank correction; the
        // trajectories differ in rounding but must agree to solver
        // tolerance.
        let n = 6;
        let t: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut cs = ConstraintSet::new(n);
        cs.push(vec![1.0; n], 40.0, "budget");
        for i in 0..n {
            cs.push_lower_bound(i, 0.1, format!("x{i} lb"));
        }
        let x0 = vec![1.0; n];
        let opts = SolverOptions {
            banded_min_dim: 0,
            ..SolverOptions::default()
        };
        let banded = minimize(&BandedReciprocal { t: t.clone() }, &cs, &x0, &opts).unwrap();
        let dense = minimize(&Reciprocal { t }, &cs, &x0, &SolverOptions::default()).unwrap();
        assert_eq!(banded.banded_bandwidth, Some(1));
        assert!(cs.is_feasible(&banded.x, 1e-9));
        for (b, d) in banded.x.iter().zip(&dense.x) {
            assert!((b - d).abs() / d < 1e-5, "{:?} vs {:?}", banded.x, dense.x);
        }
        // Warm restart through the banded decrement probe agrees too.
        let warm_pt: Vec<f64> = banded.x.iter().map(|&x| x * 0.999).collect();
        let warm = minimize_warm(
            &BandedReciprocal {
                t: (0..n).map(|i| 1.0 + i as f64).collect(),
            },
            &cs,
            &warm_pt,
            100.0,
            &opts,
        )
        .unwrap();
        assert!(warm.warm_feasible);
        for (w, d) in warm.solution.x.iter().zip(&dense.x) {
            assert!((w - d).abs() / d < 1e-4);
        }
    }

    #[test]
    fn banded_gate_keeps_dense_below_min_dim() {
        // Default options: a banded-capable problem below the size gate
        // still runs (and records) the dense path.
        let n = 6;
        let cs = chain_constraints(n);
        let sol = minimize(
            &BandedReciprocal { t: vec![1.0; n] },
            &cs,
            &vec![1.0; n],
            &SolverOptions::default(),
        )
        .unwrap();
        assert_eq!(sol.banded_bandwidth, None);
    }

    #[test]
    fn banded_engages_at_scale_by_default() {
        let n = 64;
        let cs = chain_constraints(n);
        let sol = minimize(
            &BandedReciprocal { t: vec![1.0; n] },
            &cs,
            &vec![1.0; n],
            &SolverOptions::default(),
        )
        .unwrap();
        assert_eq!(sol.banded_bandwidth, Some(1));
        assert!(cs.is_feasible(&sol.x, 1e-9));
    }

    #[test]
    fn error_display_strings() {
        let e = SolveError::NotStrictlyFeasible(vec!["a".into()]);
        assert!(e.to_string().contains("a"));
        let e = SolveError::Infeasible { violation: 0.5 };
        assert!(e.to_string().contains("empty interior"));
        let e = SolveError::Numerical("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
