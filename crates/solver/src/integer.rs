//! Exact one-dimensional integer minimization.
//!
//! The monolithic strategy's design variable is an integer block size
//! `M ∈ [1, M_max]` (paper Fig. 2). The feasible objective is piecewise
//! (it contains ceilings), so we provide:
//!
//! * [`minimize_scan`] — exhaustive evaluation, always exact; and
//! * [`minimize_unimodal`] — ternary search for unimodal objectives,
//!   O(log range) evaluations, cross-checked against the scan in tests
//!   and falling back to a local neighborhood sweep to absorb small
//!   plateaus.
//!
//! Infeasible points are modeled by returning `None` from the objective;
//! both searches skip them.

/// Result of an integer minimization: the argument and its value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntOpt {
    /// Minimizing integer.
    pub arg: u64,
    /// Objective value there.
    pub value: f64,
}

/// Exhaustively minimize `f` over `lo..=hi`, skipping `None`
/// (infeasible) points. Ties break toward the smaller argument.
/// Returns `None` if every point is infeasible or the range is empty.
pub fn minimize_scan(lo: u64, hi: u64, mut f: impl FnMut(u64) -> Option<f64>) -> Option<IntOpt> {
    let mut best: Option<IntOpt> = None;
    let mut m = lo;
    while m <= hi {
        if let Some(v) = f(m) {
            debug_assert!(!v.is_nan(), "objective returned NaN at {m}");
            let better = match &best {
                None => true,
                Some(b) => v < b.value,
            };
            if better {
                best = Some(IntOpt { arg: m, value: v });
            }
        }
        if m == u64::MAX {
            break;
        }
        m += 1;
    }
    best
}

/// Minimize a *unimodal* `f` over `lo..=hi` by ternary search, then sweep
/// a ±`slop` neighborhood of the candidate to absorb small plateaus and
/// ceiling-induced ripples.
///
/// If `f` is not unimodal the result is a local minimum only; use
/// [`minimize_scan`] when exactness matters more than speed. Infeasible
/// (`None`) points are treated as `+∞`.
pub fn minimize_unimodal(
    lo: u64,
    hi: u64,
    slop: u64,
    mut f: impl FnMut(u64) -> Option<f64>,
) -> Option<IntOpt> {
    if lo > hi {
        return None;
    }
    let eval = |m: u64, f: &mut dyn FnMut(u64) -> Option<f64>| f(m).unwrap_or(f64::INFINITY);
    let (mut a, mut b) = (lo, hi);
    while b - a > 2 {
        let m1 = a + (b - a) / 3;
        let m2 = b - (b - a) / 3;
        if eval(m1, &mut f) <= eval(m2, &mut f) {
            b = m2;
        } else {
            a = m1;
        }
    }
    // Neighborhood sweep around the narrowed bracket.
    let sweep_lo = a.saturating_sub(slop).max(lo);
    let sweep_hi = b.saturating_add(slop).min(hi);
    minimize_scan(sweep_lo, sweep_hi, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_finds_global_minimum() {
        let f = |m: u64| Some(((m as f64) - 37.0).powi(2));
        let opt = minimize_scan(1, 100, f).unwrap();
        assert_eq!(opt.arg, 37);
        assert_eq!(opt.value, 0.0);
    }

    #[test]
    fn scan_skips_infeasible() {
        let f = |m: u64| if m < 10 { None } else { Some(m as f64) };
        let opt = minimize_scan(1, 100, f).unwrap();
        assert_eq!(opt.arg, 10);
    }

    #[test]
    fn scan_all_infeasible_is_none() {
        assert!(minimize_scan(1, 10, |_| None).is_none());
    }

    #[test]
    fn scan_empty_range_is_none() {
        assert!(minimize_scan(10, 5, |m| Some(m as f64)).is_none());
    }

    #[test]
    fn scan_tie_breaks_low() {
        let f = |m: u64| Some(if (5..=7).contains(&m) { 1.0 } else { 2.0 });
        assert_eq!(minimize_scan(1, 10, f).unwrap().arg, 5);
    }

    #[test]
    fn unimodal_matches_scan_on_convex() {
        let f = |m: u64| Some(((m as f64) - 512.3).powi(2) + 7.0);
        let a = minimize_scan(1, 2000, f).unwrap();
        let b = minimize_unimodal(1, 2000, 4, f).unwrap();
        assert_eq!(a.arg, b.arg);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn unimodal_handles_boundary_minimum() {
        let f = |m: u64| Some(m as f64);
        let opt = minimize_unimodal(5, 500, 4, f).unwrap();
        assert_eq!(opt.arg, 5);
    }

    #[test]
    fn unimodal_handles_plateau_via_slop() {
        // Flat bottom of width 6 with the true edge at 40.
        let f = |m: u64| {
            Some(if (40..46).contains(&m) {
                1.0
            } else {
                (m as f64 - 43.0).abs()
            })
        };
        let opt = minimize_unimodal(1, 100, 8, f).unwrap();
        assert_eq!(opt.arg, 40);
    }

    #[test]
    fn unimodal_single_point_range() {
        let opt = minimize_unimodal(7, 7, 4, |m| Some(m as f64)).unwrap();
        assert_eq!(opt.arg, 7);
    }

    #[test]
    fn unimodal_all_infeasible_is_none() {
        assert!(minimize_unimodal(1, 100, 4, |_| None).is_none());
    }

    #[test]
    fn unimodal_with_ceiling_ripple_matches_scan() {
        // The monolithic objective shape: ceil-induced steps over a
        // smooth 1/M decay plus a linear term.
        let f = |m: u64| {
            let m_f = m as f64;
            Some(((m_f / 128.0).ceil() * 1000.0) / m_f + 0.01 * m_f)
        };
        let a = minimize_scan(1, 4000, f).unwrap();
        let b = minimize_unimodal(1, 4000, 256, f).unwrap();
        assert!(
            (a.value - b.value).abs() < 1e-9,
            "scan {:?} vs ternary {:?}",
            a,
            b
        );
    }
}
