//! # solver — a small convex / mixed-integer optimization toolkit
//!
//! The paper solves its two scheduling design problems (Figures 1 and 2)
//! with AMPL + BONMIN. Both problems are far smaller than general MINLP:
//!
//! * the **enforced-waits** problem (Fig. 1) is a *separable convex*
//!   objective over *linear* inequality constraints, and
//! * the **monolithic** problem (Fig. 2) is one-dimensional in an integer
//!   block size `M`.
//!
//! This crate supplies exactly the machinery those shapes need, built
//! from scratch:
//!
//! * [`linalg`] — small dense matrices and a Cholesky solve.
//! * [`linear`] — linear inequality constraint sets `a·x ≤ b`.
//! * [`convex`] — a log-barrier interior-point Newton method for smooth
//!   convex objectives over linear constraints, with a phase-1 routine to
//!   find a strictly feasible start.
//! * [`scalar`] — bisection and golden-section search.
//! * [`integer`] — exact integer minimization by exhaustive scan and a
//!   faster certified search for unimodal objectives.
//! * [`bnb`] — one-dimensional branch-and-bound with relaxation-based
//!   pruning, the miniature BONMIN used as a third cross-check on the
//!   monolithic block-size program.
//!
//! Independent methods are cross-checked in this workspace's tests: the
//! interior-point solution of Fig. 1 must agree with a specialized KKT
//! water-filling solver (in `rtsdf-core`), and the unimodal integer
//! search must agree with the exhaustive scan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bnb;
pub mod convex;
pub mod integer;
pub mod linalg;
pub mod linear;
pub mod scalar;

pub use convex::{
    minimize, minimize_warm, ConvexProblem, Solution, SolveError, SolverOptions, WarmSolution,
};
pub use linear::{Constraint, ConstraintSet};
