//! Small dense linear algebra.
//!
//! The interior-point method solves Newton systems `H d = -g` where `H`
//! is symmetric positive definite and tiny (dimension = number of
//! pipeline stages, single digits in practice). A dense row-major matrix
//! with an in-place Cholesky factorization is the right tool; pulling in
//! a full linear-algebra crate would be far heavier than the problem.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `n × n` or `m × n` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Mat {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Add `value` to every diagonal entry (ridge regularization).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Rank-1 update: `self += scale · u uᵀ` (square matrices only).
    pub fn rank1_update(&mut self, u: &[f64], scale: f64) {
        assert_eq!(self.rows, self.cols, "rank1_update needs a square matrix");
        assert_eq!(u.len(), self.rows, "vector length mismatch");
        for i in 0..self.rows {
            if u[i] == 0.0 {
                continue;
            }
            let su = scale * u[i];
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (j, r) in row.iter_mut().enumerate() {
                *r += su * u[j];
            }
        }
    }

    /// Matrix–vector product `self · x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = dot(row, x);
        }
        y
    }

    /// Overwrite `self` with the contents of `src` (same shape) without
    /// reallocating — the scratch-buffer primitive behind the
    /// escalating-ridge retry in the interior point.
    pub fn copy_from(&mut self, src: &Mat) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows, src.cols),
            "shape mismatch"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Zero every entry in place, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// In-place Cholesky factorization `A = L Lᵀ` (lower triangle),
    /// reusing `self`'s storage. Returns `false` (leaving `self` in a
    /// partially factored state) if the matrix is not (numerically)
    /// positive definite.
    pub fn cholesky_in_place(&mut self) -> bool {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        for j in 0..n {
            let mut d = self[(j, j)];
            for k in 0..j {
                d -= self[(j, k)] * self[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return false;
            }
            let d = d.sqrt();
            self[(j, j)] = d;
            for i in (j + 1)..n {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= self[(i, k)] * self[(j, k)];
                }
                self[(i, j)] = s / d;
            }
        }
        true
    }

    /// Solve `A x = b` in place, assuming `self` was already factored by
    /// [`Mat::cholesky_in_place`] (lower triangle holds `L`).
    pub fn chol_solve_into(&self, b: &mut [f64]) {
        let n = self.rows;
        assert_eq!(b.len(), n, "dimension mismatch");
        for i in 0..n {
            for k in 0..i {
                b[i] -= self[(i, k)] * b[k];
            }
            b[i] /= self[(i, i)];
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                b[i] -= self[(k, i)] * b[k];
            }
            b[i] /= self[(i, i)];
        }
    }

    /// In-place Cholesky factorization `A = L Lᵀ` (lower triangle).
    ///
    /// Returns `None` if the matrix is not (numerically) positive
    /// definite. Only the lower triangle of the result is meaningful.
    pub fn cholesky(mut self) -> Option<Chol> {
        if self.cholesky_in_place() {
            Some(Chol { l: self })
        } else {
            None
        }
    }
}

/// A symmetric positive-definite matrix stored by its lower band:
/// entry `(i, j)` with `0 ≤ i − j ≤ bw` lives at
/// `data[i·(bw+1) + (j − i + bw)]`. The enforced-waits Newton system
/// couples only adjacent stages, so its Hessian (minus the dense
/// deadline row, handled by a low-rank correction in the solver) fits a
/// tiny band — banded Cholesky factors it in O(n·bw²) with no fill-in,
/// versus O(n³) dense.
///
/// On an input that is exactly banded, [`BandedMat::cholesky_in_place`]
/// and [`BandedMat::solve_into`] perform bit-for-bit the same arithmetic
/// as the dense [`Mat`] path: every dense term they skip is an exact
/// `±0.0` product (Cholesky of a banded matrix has no fill-in), and
/// adding or subtracting `±0.0` leaves an IEEE double unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct BandedMat {
    n: usize,
    bw: usize,
    data: Vec<f64>,
}

impl BandedMat {
    /// Zero matrix of size `n` with lower bandwidth `bw` (`bw < n`).
    pub fn zeros(n: usize, bw: usize) -> Self {
        assert!(n > 0, "empty banded matrix");
        assert!(bw < n, "bandwidth must be < n");
        BandedMat {
            n,
            bw,
            data: vec![0.0; n * (bw + 1)],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Lower bandwidth.
    pub fn bandwidth(&self) -> usize {
        self.bw
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(j <= i && i - j <= self.bw, "({i},{j}) outside band");
        i * (self.bw + 1) + (j + self.bw - i)
    }

    /// Entry `(i, j)` of the lower band (`j ≤ i`, `i − j ≤ bw`).
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[self.idx(i, j)]
    }

    /// Mutable entry `(i, j)` of the lower band.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        let k = self.idx(i, j);
        &mut self.data[k]
    }

    /// Zero every entry in place, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Overwrite `self` with `src` (same shape) without reallocating.
    pub fn copy_from(&mut self, src: &BandedMat) {
        assert_eq!((self.n, self.bw), (src.n, src.bw), "shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Multiply every stored entry by `scale`.
    pub fn scale(&mut self, scale: f64) {
        self.data.iter_mut().for_each(|v| *v *= scale);
    }

    /// Add `value` to every diagonal entry (ridge regularization).
    pub fn add_diagonal(&mut self, value: f64) {
        for i in 0..self.n {
            *self.at_mut(i, i) += value;
        }
    }

    /// Rank-1 update `self += scale · u uᵀ` restricted to the support
    /// span `[lo, hi]` of `u` (all nonzeros of `u` must lie inside it,
    /// and `hi − lo ≤ bw` so the update fits the band). Performs the
    /// same per-entry arithmetic as [`Mat::rank1_update`].
    pub fn rank1_update_span(&mut self, u: &[f64], scale: f64, lo: usize, hi: usize) {
        debug_assert!(hi < self.n && lo <= hi && hi - lo <= self.bw);
        for i in lo..=hi {
            if u[i] == 0.0 {
                continue;
            }
            let su = scale * u[i];
            for (j, &uj) in u.iter().enumerate().take(i + 1).skip(lo) {
                *self.at_mut(i, j) += su * uj;
            }
        }
    }

    /// [`rank1_update_span`](Self::rank1_update_span) with the span
    /// passed as a pre-extracted contiguous slice: `u_span` holds
    /// `u[lo..=hi]` and all of `u`'s nonzeros. Identical per-entry
    /// arithmetic in the same order; the contiguous layout is what the
    /// hot barrier loop wants (one packed buffer instead of a strided
    /// read from each constraint's full-length row).
    pub fn rank1_update_packed(&mut self, u_span: &[f64], scale: f64, lo: usize) {
        debug_assert!(!u_span.is_empty() && u_span.len() <= self.bw + 1);
        debug_assert!(lo + u_span.len() <= self.n);
        for (oi, &ui) in u_span.iter().enumerate() {
            if ui == 0.0 {
                continue;
            }
            let su = scale * ui;
            let i = lo + oi;
            for (oj, &uj) in u_span.iter().enumerate().take(oi + 1) {
                *self.at_mut(i, lo + oj) += su * uj;
            }
        }
    }

    /// Symmetric matrix–vector product `self · x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            for j in i.saturating_sub(self.bw)..=i {
                let v = self.at(i, j);
                y[i] += v * x[j];
                if i != j {
                    y[j] += v * x[i];
                }
            }
        }
        y
    }

    /// In-place banded Cholesky `A = L Lᵀ` in O(n·bw²). Returns `false`
    /// (leaving `self` partially factored) if the matrix is not
    /// numerically positive definite. No fill-in: `L` occupies the same
    /// band as `A`.
    pub fn cholesky_in_place(&mut self) -> bool {
        let n = self.n;
        let bw = self.bw;
        for j in 0..n {
            let mut d = self.at(j, j);
            for k in j.saturating_sub(bw)..j {
                let l = self.at(j, k);
                d -= l * l;
            }
            if d <= 0.0 || !d.is_finite() {
                return false;
            }
            let d = d.sqrt();
            *self.at_mut(j, j) = d;
            for i in (j + 1)..n.min(j + bw + 1) {
                let mut s = self.at(i, j);
                for k in i.saturating_sub(bw)..j {
                    s -= self.at(i, k) * self.at(j, k);
                }
                *self.at_mut(i, j) = s / d;
            }
        }
        true
    }

    /// Solve `A x = b` in place, assuming `self` was factored by
    /// [`BandedMat::cholesky_in_place`]. O(n·bw).
    pub fn solve_into(&self, b: &mut [f64]) {
        let n = self.n;
        let bw = self.bw;
        assert_eq!(b.len(), n, "dimension mismatch");
        for i in 0..n {
            for k in i.saturating_sub(bw)..i {
                b[i] -= self.at(i, k) * b[k];
            }
            b[i] /= self.at(i, i);
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n.min(i + bw + 1) {
                b[i] -= self.at(k, i) * b[k];
            }
            b[i] /= self.at(i, i);
        }
    }

    /// Convenience: solve `A x = b` on a factored matrix.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_into(&mut x);
        x
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A Cholesky factorization, ready to solve linear systems.
#[derive(Debug, Clone)]
pub struct Chol {
    l: Mat,
}

impl Chol {
    /// Solve `A x = b` where `A = L Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        self.l.chol_solve_into(&mut y);
        y
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` (AXPY).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let a = Mat::identity(3);
        let chol = a.cholesky().unwrap();
        let x = chol.solve(&[1.0, 2.0, 3.0]);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn cholesky_solve_known_system() {
        // A = [[4,2],[2,3]], b = [2,1] → x = [0.5, 0]
        let a = Mat::from_rows(2, 2, &[4.0, 2.0, 2.0, 3.0]);
        let x = a.cholesky().unwrap().solve(&[2.0, 1.0]);
        assert!((x[0] - 0.5).abs() < 1e-12, "{x:?}");
        assert!(x[1].abs() < 1e-12, "{x:?}");
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigvals 3, -1
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn cholesky_rejects_nan() {
        let a = Mat::from_rows(1, 1, &[f64::NAN]);
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn solve_roundtrip_random_spd() {
        // Build SPD as Bᵀ B + I for a fixed pseudo-random B.
        let n = 5;
        let mut b = Mat::zeros(n, n);
        let mut v = 1u64;
        for i in 0..n {
            for j in 0..n {
                v = v
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b[(i, j)] = ((v >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            }
        }
        let mut a = Mat::identity(n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[(k, i)] * b[(k, j)];
                }
                a[(i, j)] += s;
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let rhs = a.matvec(&x_true);
        let x = a.cholesky().unwrap().solve(&rhs);
        for (xa, xb) in x.iter().zip(&x_true) {
            assert!((xa - xb).abs() < 1e-9, "{x:?} vs {x_true:?}");
        }
    }

    #[test]
    fn rank1_update_matches_manual() {
        let mut a = Mat::zeros(2, 2);
        a.rank1_update(&[1.0, 2.0], 3.0);
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(0, 1)], 6.0);
        assert_eq!(a[(1, 0)], 6.0);
        assert_eq!(a[(1, 1)], 12.0);
    }

    #[test]
    fn add_diagonal() {
        let mut a = Mat::zeros(2, 2);
        a.add_diagonal(5.0);
        assert_eq!(a[(0, 0)], 5.0);
        assert_eq!(a[(1, 1)], 5.0);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_rows_shape_check() {
        Mat::from_rows(2, 2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn display_formats() {
        let s = Mat::identity(2).to_string();
        assert!(s.contains("1.00000"));
    }

    /// Deterministic pseudo-random SPD matrix with the given lower
    /// bandwidth, returned in both dense and banded form.
    fn random_banded_spd(n: usize, bw: usize, seed: u64) -> (Mat, BandedMat) {
        let mut dense = Mat::zeros(n, n);
        let mut banded = BandedMat::zeros(n, bw);
        let mut v = seed;
        let mut next = || {
            v = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((v >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..n {
            for j in i.saturating_sub(bw)..i {
                let x = next();
                dense[(i, j)] = x;
                dense[(j, i)] = x;
                *banded.at_mut(i, j) = x;
            }
            // Diagonal dominance keeps it SPD for any band contents.
            let d = 2.0 * (bw as f64 + 1.0) + next().abs();
            dense[(i, i)] = d;
            *banded.at_mut(i, i) = d;
        }
        (dense, banded)
    }

    #[test]
    fn banded_cholesky_bitwise_matches_dense_on_banded_input() {
        for (n, bw) in [(6, 1), (9, 2), (17, 3), (33, 1)] {
            let (dense, mut banded) = random_banded_spd(n, bw, 42 + n as u64);
            let rhs: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let dense_x = dense.cholesky().unwrap().solve(&rhs);
            assert!(banded.cholesky_in_place());
            let banded_x = banded.solve(&rhs);
            // Not just close: the skipped dense terms are exact ±0.0
            // products, so the two factorizations are the same
            // arithmetic and the results are bit-identical.
            assert_eq!(dense_x, banded_x, "n={n} bw={bw}");
        }
    }

    #[test]
    fn banded_solve_roundtrip() {
        let (_, banded) = random_banded_spd(12, 2, 7);
        let x_true: Vec<f64> = (0..12).map(|i| 0.5 * i as f64 - 3.0).collect();
        let rhs = banded.matvec(&x_true);
        let mut f = banded.clone();
        assert!(f.cholesky_in_place());
        let x = f.solve(&rhs);
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-9, "{x:?} vs {x_true:?}");
        }
    }

    #[test]
    fn banded_cholesky_rejects_indefinite() {
        let mut b = BandedMat::zeros(3, 1);
        *b.at_mut(0, 0) = 1.0;
        *b.at_mut(1, 0) = 2.0; // off-diagonal dominates → not PD
        *b.at_mut(1, 1) = 1.0;
        *b.at_mut(2, 2) = 1.0;
        assert!(!b.cholesky_in_place());
    }

    #[test]
    fn banded_rank1_and_diagonal_match_dense() {
        let n = 8;
        let bw = 2;
        let mut dense = Mat::zeros(n, n);
        let mut banded = BandedMat::zeros(n, bw);
        let mut u = vec![0.0; n];
        u[3] = 1.5;
        u[4] = -0.5;
        u[5] = 2.0;
        dense.rank1_update(&u, 0.7);
        banded.rank1_update_span(&u, 0.7, 3, 5);
        dense.add_diagonal(4.0);
        banded.add_diagonal(4.0);
        for i in 0..n {
            for j in i.saturating_sub(bw)..=i {
                assert_eq!(dense[(i, j)], banded.at(i, j), "({i},{j})");
            }
        }
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.3 + 1.0).collect();
        let yd = dense.matvec(&x);
        let yb = banded.matvec(&x);
        for (a, b) in yd.iter().zip(&yb) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn scratch_cholesky_matches_consuming_cholesky() {
        let (dense, _) = random_banded_spd(7, 3, 99);
        let rhs = vec![1.0; 7];
        let via_consume = dense.clone().cholesky().unwrap().solve(&rhs);
        let mut scratch = Mat::zeros(7, 7);
        scratch.copy_from(&dense);
        assert!(scratch.cholesky_in_place());
        let mut via_scratch = rhs.clone();
        scratch.chol_solve_into(&mut via_scratch);
        assert_eq!(via_consume, via_scratch);
    }

    #[test]
    fn scratch_ridge_retry_matches_clone_per_attempt_on_near_singular() {
        // A nearly singular SPD-ish matrix: both the old clone-per-retry
        // loop and the new scratch-buffer loop must escalate to the same
        // ridge and produce bit-identical directions.
        let n = 4;
        let mut h = Mat::zeros(n, n);
        // rank-1 (singular) plus a tiny diagonal that still fails PD.
        h.rank1_update(&[1.0, 1.0, 1.0, 1.0], 1.0);
        h.add_diagonal(-1e-18);
        let g = vec![1.0, 2.0, 3.0, 4.0];

        let reference = {
            let mut d = None;
            let mut ridge = 0.0;
            for _ in 0..8 {
                let mut hr = h.clone();
                if ridge > 0.0 {
                    hr.add_diagonal(ridge);
                }
                if let Some(chol) = hr.cholesky() {
                    d = Some(chol.solve(&g));
                    break;
                }
                ridge = if ridge == 0.0 { 1e-12 } else { ridge * 100.0 };
            }
            d.unwrap()
        };

        let scratch_based = {
            let mut scratch = Mat::zeros(n, n);
            let mut d = None;
            let mut ridge = 0.0;
            for _ in 0..8 {
                scratch.copy_from(&h);
                if ridge > 0.0 {
                    scratch.add_diagonal(ridge);
                }
                if scratch.cholesky_in_place() {
                    let mut sol = g.clone();
                    scratch.chol_solve_into(&mut sol);
                    d = Some(sol);
                    break;
                }
                ridge = if ridge == 0.0 { 1e-12 } else { ridge * 100.0 };
            }
            d.unwrap()
        };
        assert_eq!(reference, scratch_based);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be < n")]
    fn banded_bandwidth_checked() {
        BandedMat::zeros(3, 3);
    }
}
