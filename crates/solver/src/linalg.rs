//! Small dense linear algebra.
//!
//! The interior-point method solves Newton systems `H d = -g` where `H`
//! is symmetric positive definite and tiny (dimension = number of
//! pipeline stages, single digits in practice). A dense row-major matrix
//! with an in-place Cholesky factorization is the right tool; pulling in
//! a full linear-algebra crate would be far heavier than the problem.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `n × n` or `m × n` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Mat {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Add `value` to every diagonal entry (ridge regularization).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Rank-1 update: `self += scale · u uᵀ` (square matrices only).
    pub fn rank1_update(&mut self, u: &[f64], scale: f64) {
        assert_eq!(self.rows, self.cols, "rank1_update needs a square matrix");
        assert_eq!(u.len(), self.rows, "vector length mismatch");
        for i in 0..self.rows {
            if u[i] == 0.0 {
                continue;
            }
            let su = scale * u[i];
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (j, r) in row.iter_mut().enumerate() {
                *r += su * u[j];
            }
        }
    }

    /// Matrix–vector product `self · x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = dot(row, x);
        }
        y
    }

    /// In-place Cholesky factorization `A = L Lᵀ` (lower triangle).
    ///
    /// Returns `None` if the matrix is not (numerically) positive
    /// definite. Only the lower triangle of the result is meaningful.
    pub fn cholesky(mut self) -> Option<Chol> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        for j in 0..n {
            let mut d = self[(j, j)];
            for k in 0..j {
                d -= self[(j, k)] * self[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return None;
            }
            let d = d.sqrt();
            self[(j, j)] = d;
            for i in (j + 1)..n {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= self[(i, k)] * self[(j, k)];
                }
                self[(i, j)] = s / d;
            }
        }
        Some(Chol { l: self })
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A Cholesky factorization, ready to solve linear systems.
#[derive(Debug, Clone)]
pub struct Chol {
    l: Mat,
}

impl Chol {
    /// Solve `A x = b` where `A = L Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows;
        assert_eq!(b.len(), n, "dimension mismatch");
        // Forward substitution: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.l[(k, i)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        y
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` (AXPY).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let a = Mat::identity(3);
        let chol = a.cholesky().unwrap();
        let x = chol.solve(&[1.0, 2.0, 3.0]);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn cholesky_solve_known_system() {
        // A = [[4,2],[2,3]], b = [2,1] → x = [0.5, 0]
        let a = Mat::from_rows(2, 2, &[4.0, 2.0, 2.0, 3.0]);
        let x = a.cholesky().unwrap().solve(&[2.0, 1.0]);
        assert!((x[0] - 0.5).abs() < 1e-12, "{x:?}");
        assert!(x[1].abs() < 1e-12, "{x:?}");
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigvals 3, -1
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn cholesky_rejects_nan() {
        let a = Mat::from_rows(1, 1, &[f64::NAN]);
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn solve_roundtrip_random_spd() {
        // Build SPD as Bᵀ B + I for a fixed pseudo-random B.
        let n = 5;
        let mut b = Mat::zeros(n, n);
        let mut v = 1u64;
        for i in 0..n {
            for j in 0..n {
                v = v
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b[(i, j)] = ((v >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            }
        }
        let mut a = Mat::identity(n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[(k, i)] * b[(k, j)];
                }
                a[(i, j)] += s;
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let rhs = a.matvec(&x_true);
        let x = a.cholesky().unwrap().solve(&rhs);
        for (xa, xb) in x.iter().zip(&x_true) {
            assert!((xa - xb).abs() < 1e-9, "{x:?} vs {x_true:?}");
        }
    }

    #[test]
    fn rank1_update_matches_manual() {
        let mut a = Mat::zeros(2, 2);
        a.rank1_update(&[1.0, 2.0], 3.0);
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(0, 1)], 6.0);
        assert_eq!(a[(1, 0)], 6.0);
        assert_eq!(a[(1, 1)], 12.0);
    }

    #[test]
    fn add_diagonal() {
        let mut a = Mat::zeros(2, 2);
        a.add_diagonal(5.0);
        assert_eq!(a[(0, 0)], 5.0);
        assert_eq!(a[(1, 1)], 5.0);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_rows_shape_check() {
        Mat::from_rows(2, 2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn display_formats() {
        let s = Mat::identity(2).to_string();
        assert!(s.contains("1.00000"));
    }
}
