//! Linear inequality constraint sets.
//!
//! A [`ConstraintSet`] is a list of half-spaces `a·x ≤ b` over a fixed
//! dimension. The enforced-waits problem builds one of these from the
//! pipeline's stability and deadline constraints plus the lower bounds
//! `x_i ≥ t_i` (encoded as `-x_i ≤ -t_i`).

use serde::{Deserialize, Serialize};

/// One half-space constraint `coeffs · x ≤ rhs`, with a label for
/// diagnostics (infeasibility reports name the violated constraint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Coefficient vector `a`.
    pub coeffs: Vec<f64>,
    /// Right-hand side `b`.
    pub rhs: f64,
    /// Human-readable name (e.g. `"deadline"`, `"edge 2→3 stability"`).
    pub label: String,
}

impl Constraint {
    /// Build a constraint `coeffs · x ≤ rhs`.
    pub fn new(coeffs: Vec<f64>, rhs: f64, label: impl Into<String>) -> Self {
        Constraint {
            coeffs,
            rhs,
            label: label.into(),
        }
    }

    /// Signed slack `rhs − a·x`; nonnegative iff satisfied.
    pub fn slack(&self, x: &[f64]) -> f64 {
        self.rhs - crate::linalg::dot(&self.coeffs, x)
    }
}

/// A set of linear inequality constraints over `dim` variables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConstraintSet {
    dim: usize,
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// Empty set over `dim` variables.
    pub fn new(dim: usize) -> Self {
        ConstraintSet {
            dim,
            constraints: Vec::new(),
        }
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Add `coeffs · x ≤ rhs`.
    ///
    /// # Panics
    /// Panics if `coeffs.len() != dim` or any coefficient is non-finite.
    pub fn push(&mut self, coeffs: Vec<f64>, rhs: f64, label: impl Into<String>) {
        assert_eq!(coeffs.len(), self.dim, "constraint dimension mismatch");
        assert!(
            coeffs.iter().all(|c| c.is_finite()) && rhs.is_finite(),
            "non-finite constraint data"
        );
        self.constraints.push(Constraint::new(coeffs, rhs, label));
    }

    /// Add an upper bound `x_i ≤ ub`.
    pub fn push_upper_bound(&mut self, i: usize, ub: f64, label: impl Into<String>) {
        let mut c = vec![0.0; self.dim];
        c[i] = 1.0;
        self.push(c, ub, label);
    }

    /// Add a lower bound `x_i ≥ lb` (stored as `−x_i ≤ −lb`).
    pub fn push_lower_bound(&mut self, i: usize, lb: f64, label: impl Into<String>) {
        let mut c = vec![0.0; self.dim];
        c[i] = -1.0;
        self.push(c, -lb, label);
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// True if every constraint holds at `x` within tolerance `tol`
    /// (violations up to `tol` are accepted).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        self.constraints.iter().all(|c| c.slack(x) >= -tol)
    }

    /// Worst violation at `x`: `max_j (a_j·x − b_j)`, negative when
    /// strictly feasible. Returns 0 for an empty set.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        self.constraints
            .iter()
            .map(|c| -c.slack(x))
            .fold(0.0_f64.min(f64::NEG_INFINITY), f64::max)
            .max(if self.constraints.is_empty() {
                0.0
            } else {
                f64::NEG_INFINITY
            })
    }

    /// Constraints violated at `x` beyond tolerance, for diagnostics.
    pub fn violated<'a>(&'a self, x: &'a [f64], tol: f64) -> impl Iterator<Item = &'a Constraint> {
        self.constraints.iter().filter(move |c| c.slack(x) < -tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_sign_convention() {
        let c = Constraint::new(vec![1.0, 1.0], 3.0, "sum");
        assert_eq!(c.slack(&[1.0, 1.0]), 1.0); // satisfied with room
        assert_eq!(c.slack(&[2.0, 2.0]), -1.0); // violated
    }

    #[test]
    fn feasibility_check() {
        let mut cs = ConstraintSet::new(2);
        cs.push(vec![1.0, 0.0], 5.0, "x0 <= 5");
        cs.push_lower_bound(1, 1.0, "x1 >= 1");
        assert!(cs.is_feasible(&[4.0, 2.0], 0.0));
        assert!(!cs.is_feasible(&[6.0, 2.0], 0.0));
        assert!(!cs.is_feasible(&[4.0, 0.5], 0.0));
        assert!(
            cs.is_feasible(&[5.0 + 1e-9, 1.0], 1e-6),
            "tolerance accepted"
        );
    }

    #[test]
    fn bounds_helpers() {
        let mut cs = ConstraintSet::new(3);
        cs.push_upper_bound(2, 10.0, "ub");
        cs.push_lower_bound(0, 2.0, "lb");
        assert_eq!(cs.len(), 2);
        assert_eq!(cs.constraints()[0].coeffs, vec![0.0, 0.0, 1.0]);
        assert_eq!(cs.constraints()[1].coeffs, vec![-1.0, 0.0, 0.0]);
        assert_eq!(cs.constraints()[1].rhs, -2.0);
    }

    #[test]
    fn max_violation_reports_worst() {
        let mut cs = ConstraintSet::new(1);
        cs.push_upper_bound(0, 1.0, "a");
        cs.push_upper_bound(0, 2.0, "b");
        assert!((cs.max_violation(&[4.0]) - 3.0).abs() < 1e-12);
        assert!(cs.max_violation(&[0.0]) < 0.0);
    }

    #[test]
    fn violated_lists_names() {
        let mut cs = ConstraintSet::new(1);
        cs.push_upper_bound(0, 1.0, "tight");
        cs.push_upper_bound(0, 100.0, "loose");
        let names: Vec<_> = cs.violated(&[5.0], 1e-9).map(|c| c.label.clone()).collect();
        assert_eq!(names, vec!["tight".to_string()]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_checked() {
        let mut cs = ConstraintSet::new(2);
        cs.push(vec![1.0], 0.0, "bad");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_rejected() {
        let mut cs = ConstraintSet::new(1);
        cs.push(vec![f64::NAN], 0.0, "bad");
    }
}
