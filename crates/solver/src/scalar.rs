//! One-dimensional continuous search: bisection root-finding and
//! golden-section minimization.
//!
//! These are used for tuning scalar design parameters (e.g. the
//! water-filling multiplier λ in the specialized Fig.-1 solver, and
//! continuous relaxations of the block size `M`).

/// Find a root of `f` on `[lo, hi]` by bisection.
///
/// Requires `f(lo)` and `f(hi)` to have opposite signs (a sign change
/// bracket). Returns the midpoint of the final bracket after `iters`
/// halvings (53 iterations exhausts `f64` precision).
///
/// # Panics
/// Panics if `lo >= hi` or the bracket does not straddle a sign change.
pub fn bisect(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, iters: usize) -> f64 {
    assert!(lo < hi, "empty bracket");
    let (mut lo, mut hi) = (lo, hi);
    let flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return lo;
    }
    if fhi == 0.0 {
        return hi;
    }
    assert!(
        flo.signum() != fhi.signum(),
        "bisect bracket does not straddle a root: f({lo}) = {flo}, f({hi}) = {fhi}"
    );
    let neg_lo = flo < 0.0;
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if fm == 0.0 {
            return mid;
        }
        if (fm < 0.0) == neg_lo {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Minimize a unimodal `f` on `[lo, hi]` by golden-section search.
///
/// Returns `(argmin, min)`. For strictly unimodal functions the result is
/// within `tol` of the true minimizer.
pub fn golden_section(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, tol: f64) -> (f64, f64) {
    assert!(lo <= hi, "empty interval");
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a) > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    (x, f(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 80);
        assert!((root - 2.0_f64.sqrt()).abs() < 1e-12, "{root}");
    }

    #[test]
    fn bisect_handles_decreasing_function() {
        let root = bisect(|x| 1.0 - x, 0.0, 5.0, 80);
        assert!((root - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bisect_exact_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 10), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 10), 1.0);
    }

    #[test]
    #[should_panic(expected = "straddle")]
    fn bisect_rejects_bad_bracket() {
        bisect(|x| x * x + 1.0, -1.0, 1.0, 10);
    }

    #[test]
    fn golden_section_quadratic() {
        let (x, v) = golden_section(|x| (x - 3.0).powi(2) + 1.0, 0.0, 10.0, 1e-9);
        assert!((x - 3.0).abs() < 1e-6, "{x}");
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn golden_section_boundary_minimum() {
        let (x, _) = golden_section(|x| x, 2.0, 5.0, 1e-9);
        assert!((x - 2.0).abs() < 1e-6, "{x}");
    }

    #[test]
    fn golden_section_degenerate_interval() {
        let (x, v) = golden_section(|x| x * x, 4.0, 4.0, 1e-9);
        assert_eq!(x, 4.0);
        assert_eq!(v, 16.0);
    }
}
