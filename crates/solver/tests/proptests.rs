//! Property-based tests for the optimization toolkit.

use proptest::prelude::*;
use solver::convex::{find_interior_point, minimize, ConvexProblem, SolverOptions};
use solver::integer::{minimize_scan, minimize_unimodal};
use solver::linalg::Mat;
use solver::linear::ConstraintSet;
use solver::scalar::{bisect, golden_section};

/// Separable quadratic Σ (x_i − c_i)² for solver tests.
struct Quadratic {
    center: Vec<f64>,
}
impl ConvexProblem for Quadratic {
    fn dim(&self) -> usize {
        self.center.len()
    }
    fn value(&self, x: &[f64]) -> f64 {
        x.iter()
            .zip(&self.center)
            .map(|(xi, ci)| (xi - ci).powi(2))
            .sum()
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        for i in 0..x.len() {
            g[i] = 2.0 * (x[i] - self.center[i]);
        }
    }
    fn hessian(&self, _x: &[f64], h: &mut Mat) {
        for i in 0..h.rows() {
            h[(i, i)] = 2.0;
        }
    }
}

proptest! {
    #[test]
    fn golden_section_finds_quadratic_minimum(c in -50.0..50.0f64, half_width in 1.0..100.0f64) {
        let lo = c - half_width;
        let hi = c + half_width;
        let (x, v) = golden_section(|x| (x - c) * (x - c), lo, hi, 1e-10);
        prop_assert!((x - c).abs() < 1e-6, "argmin {x} vs {c}");
        prop_assert!((0.0..1e-10).contains(&v));
    }

    #[test]
    fn bisect_finds_root_of_shifted_cubic(r in -10.0..10.0f64) {
        // f(x) = (x - r)^3 is monotone with a root at r.
        let root = bisect(|x| (x - r).powi(3), r - 20.0, r + 30.0, 100);
        prop_assert!((root - r).abs() < 1e-9, "{root} vs {r}");
    }

    #[test]
    fn scan_result_never_beaten_by_any_point(
        seed in 0u64..1000,
        lo in 0u64..50,
        span in 1u64..200,
    ) {
        let hi = lo + span;
        let f = |m: u64| {
            // Deterministic pseudo-random objective with some infeasible
            // points.
            let h = m.wrapping_mul(seed.wrapping_mul(2654435761).wrapping_add(97));
            if h % 7 == 0 { None } else { Some(((h >> 3) % 1000) as f64) }
        };
        if let Some(best) = minimize_scan(lo, hi, f) {
            for m in lo..=hi {
                if let Some(v) = f(m) {
                    prop_assert!(best.value <= v, "m={m} beats the scan result");
                }
            }
            prop_assert_eq!(f(best.arg), Some(best.value));
        } else {
            for m in lo..=hi {
                prop_assert!(f(m).is_none());
            }
        }
    }

    #[test]
    fn unimodal_matches_scan_on_convex_integer_objectives(
        center in 0.0..2000.0f64,
        scale in 0.01..10.0f64,
        hi in 100u64..2000,
    ) {
        let f = |m: u64| Some(scale * (m as f64 - center).powi(2));
        let a = minimize_scan(1, hi, f).unwrap();
        let b = minimize_unimodal(1, hi, 4, f).unwrap();
        prop_assert_eq!(a.arg, b.arg);
    }

    #[test]
    fn interior_point_solution_dominates_random_feasible_points(
        cx in -5.0..5.0f64,
        cy in -5.0..5.0f64,
        budget in 2.0..20.0f64,
        probe_a in 0.0..1.0f64,
        probe_b in 0.0..1.0f64,
    ) {
        // min (x-cx)² + (y-cy)²  s.t.  x + y ≤ budget, x ≥ -10, y ≥ -10.
        let p = Quadratic { center: vec![cx, cy] };
        let mut cs = ConstraintSet::new(2);
        cs.push(vec![1.0, 1.0], budget, "budget");
        cs.push_lower_bound(0, -10.0, "x lb");
        cs.push_lower_bound(1, -10.0, "y lb");
        let x0 = find_interior_point(&cs, &[0.0, 0.0], 100.0, &SolverOptions::default()).unwrap();
        let sol = minimize(&p, &cs, &x0, &SolverOptions::default()).unwrap();
        prop_assert!(cs.is_feasible(&sol.x, 1e-7), "{:?}", sol.x);
        // Compare against random feasible probes (strictly inside).
        let px = -10.0 + probe_a * (budget + 9.0);
        let py_max = budget - px;
        let py = -10.0 + probe_b * (py_max + 9.99);
        if cs.is_feasible(&[px, py], 0.0) {
            prop_assert!(
                sol.value <= p.value(&[px, py]) + 1e-6,
                "probe ({px},{py}) beats solver: {} vs {}",
                p.value(&[px, py]),
                sol.value
            );
        }
    }

    #[test]
    fn cholesky_solve_residual_is_small(
        diag in prop::collection::vec(0.5..10.0f64, 2..6),
        rhs_seed in 0u64..100,
    ) {
        // SPD matrix: diag + small symmetric perturbation.
        let n = diag.len();
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = diag[i] + n as f64; // diagonally dominant
            for j in 0..i {
                let v = (((i * 31 + j * 17) % 7) as f64 - 3.0) / 10.0;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let b: Vec<f64> = (0..n).map(|i| ((rhs_seed as usize + i) % 11) as f64 - 5.0).collect();
        let x = a.clone().cholesky().expect("diagonally dominant is SPD").solve(&b);
        let ax = a.matvec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            prop_assert!((axi - bi).abs() < 1e-8, "residual too big");
        }
    }
}
