//! The paper's evaluation, end to end, on the BLAST pipeline:
//!
//! 1. regenerate Table 1 — both the paper's constants and a freshly
//!    *measured* variant from synthetic sequences run through real
//!    seed/extend/filter/align computations and SIMT kernels;
//! 2. calibrate the backlog factors `b_i` the way §6.2 does;
//! 3. compare the two strategies across a slice of the (τ0, D) grid.
//!
//! Run with:
//! ```text
//! cargo run --release -p rtsdf --example blast_realtime
//! ```

use rtsdf::blast::{self, MeasurementConfig};
use rtsdf::core::comparison::{compare_at, SweepConfig};
use rtsdf::prelude::*;
use rtsdf::sim::calibration::{calibrate_enforced, CalibrationConfig};

fn main() {
    // ---- Table 1: paper constants vs. measured-from-synthetic-data ----
    let paper = blast::paper_table1();
    println!("Table 1 (paper, GTX 2080):");
    for row in &paper.rows {
        println!(
            "  {:<18} t = {:>6.0} cycles   g = {}",
            row.name,
            row.service_time,
            row.mean_gain.map_or("N/A".into(), |g| format!("{g:.4}")),
        );
    }

    println!();
    println!("Table 1 (measured on the simulated SIMT device, synthetic genome):");
    let (measured_pipeline, measured) =
        blast::measure_pipeline(&MeasurementConfig::default()).expect("measurement succeeds");
    for row in &measured.rows {
        println!(
            "  {:<18} t = {:>6.0} cycles   g = {}",
            row.name,
            row.service_time,
            row.mean_gain.map_or("N/A".into(), |g| format!("{g:.4}")),
        );
    }

    // ---- §6.2 calibration of the backlog factors ----------------------
    let pipeline = blast::paper_pipeline();
    println!();
    println!("calibrating backlog factors (scaled-down §6.2 methodology)...");
    let grid = vec![
        RtParams::new(5.0, 1e5).unwrap(),
        RtParams::new(20.0, 2e5).unwrap(),
    ];
    let result = calibrate_enforced(&pipeline, &CalibrationConfig::quick(grid));
    println!(
        "  calibrated b = {:?} in {} round(s), converged = {}",
        result.b,
        result.rounds.len(),
        result.converged
    );
    println!("  (the paper's full-scale calibration arrived at b = [1, 3, 9, 6])");

    // ---- Strategy comparison across operating points -------------------
    println!();
    println!("strategy comparison (active fraction; lower is better):");
    println!(
        "  {:>6} {:>9} | {:>10} {:>10} {:>10}",
        "tau0", "D", "enforced", "monolith", "difference"
    );
    let cfg = SweepConfig::paper_blast();
    for &tau0 in &[4.0, 10.0, 25.0, 60.0, 100.0] {
        for &d in &[3e4, 1e5, 3.5e5] {
            let cell = compare_at(&pipeline, RtParams::new(tau0, d).unwrap(), &cfg);
            let fmt = |x: Option<f64>| x.map_or("infeas".into(), |v| format!("{v:10.4}"));
            println!(
                "  {tau0:>6} {d:>9.0} | {} {} {}",
                fmt(cell.enforced),
                fmt(cell.monolithic),
                cell.difference()
                    .map_or("      n/a".into(), |v| format!("{v:+10.4}")),
            );
        }
    }
    println!();
    println!("(positive difference = enforced waits uses less of the processor)");

    // ---- Sanity: simulate the measured pipeline too --------------------
    let params = RtParams::new(30.0, 3e5).unwrap();
    if let Ok(sched) = EnforcedWaitsProblem::new(
        &measured_pipeline,
        params,
        EnforcedWaitsProblem::optimistic_backlog(&measured_pipeline),
    )
    .solve(SolveMethod::WaterFilling)
    {
        let m = simulate_enforced(
            &measured_pipeline,
            &sched,
            params.deadline,
            &SimConfig::quick(params.tau0, 1, 10_000),
        );
        println!(
            "measured-variant pipeline simulated at tau0=30, D=3e5: active {:.4} (predicted {:.4}), miss rate {:.4}",
            m.active_fraction, sched.active_fraction, m.miss_rate()
        );
    }
}
