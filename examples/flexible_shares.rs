//! Flexible processor shares: the §7 future-work extension.
//!
//! The paper fixes each node's processor share at 1/N. This example
//! shows what giving the scheduler control over the shares buys: a
//! wider feasible region (deadlines below the equal-share minimum) and
//! lower utilization at tight deadlines — and that the two designs
//! coincide once deadline slack is plentiful.
//!
//! Run with:
//! ```text
//! cargo run --release -p rtsdf --example flexible_shares
//! ```

use rtsdf::core::flexible::{with_service_times, FlexibleSharesProblem};
use rtsdf::core::frontier::enforced_min_deadline;
use rtsdf::prelude::*;

fn main() {
    let pipeline = rtsdf::blast::paper_pipeline();
    let b = vec![1.0, 3.0, 9.0, 6.0];
    let tau0 = 10.0;

    let equal_min = enforced_min_deadline(&pipeline, &b, tau0).expect("sustainable rate");
    println!("BLAST pipeline at tau0 = {tau0} cycles/item");
    println!("equal-share (paper) minimum feasible deadline: {equal_min:.0} cycles");
    println!();

    println!(
        "{:>9}  {:>14}  {:>16}  {:>30}",
        "D", "equal shares", "flexible shares", "flexible share split"
    );
    for d in [1.7e4, 2.0e4, equal_min * 1.02, 3e4, 6e4, 1.5e5] {
        let params = RtParams::new(tau0, d).unwrap();
        let prob = FlexibleSharesProblem::new(&pipeline, params, b.clone());
        let equal = prob.equal_share_baseline().ok();
        let flexible = prob.solve().ok();
        println!(
            "{d:>9.0}  {:>14}  {:>16}  {:>30}",
            equal.map_or("infeasible".into(), |v| format!("{v:.4}")),
            flexible
                .as_ref()
                .map_or("infeasible".into(), |s| format!("{:.4}", s.utilization)),
            flexible.as_ref().map_or("-".into(), |s| format!(
                "{:?}",
                s.shares
                    .iter()
                    .map(|x| (x * 100.0).round() / 100.0)
                    .collect::<Vec<_>>()
            )),
        );
    }

    // Validate a below-equal-minimum flexible schedule in simulation.
    let d = 2.0e4;
    let params = RtParams::new(tau0, d).unwrap();
    let sched = FlexibleSharesProblem::new(&pipeline, params, b.clone())
        .solve()
        .expect("feasible for flexible shares");
    println!();
    println!("at D = {d:.0} (below the equal-share minimum!) the flexible design gives each");
    println!(
        "stage exactly its period as service time; shares: {:?}",
        sched
            .shares
            .iter()
            .map(|x| (x * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    let realized = with_service_times(&pipeline, &sched.service_times);
    let wait_schedule = WaitSchedule {
        waits: vec![0.0; pipeline.len()],
        periods: sched.periods.clone(),
        active_fraction: sched.utilization,
        backlog_factors: b,
        latency_bound: sched.latency_bound,
        method: SolveMethod::WaterFilling,
        telemetry: None,
    };
    let report = run_seeds_enforced(
        &realized,
        &wait_schedule,
        d,
        &SimConfig::quick(tau0, 0, 8_000),
        8,
    );
    println!(
        "simulated 8 seeds x 8k items: miss-free {:.0}%, worst miss rate {:.3}%",
        100.0 * report.miss_free_fraction(),
        100.0 * report.worst_miss_rate()
    );
}
