//! Gamma-ray burst detection under a hard relay deadline.
//!
//! The paper's introduction motivates bounded-latency streaming with an
//! orbiting gamma-ray telescope: each photon event must be fully
//! processed quickly enough that a detected burst can be relayed to
//! ground instruments while still observable. This example synthesizes
//! that pipeline, schedules it with enforced waits, stress-tests the
//! schedule across many seeds, and shows the a-priori backlog estimate
//! from the bulk-queue theory next to the empirically calibrated one.
//!
//! Run with:
//! ```text
//! cargo run --release -p rtsdf --example gamma_ray_burst
//! ```

use rtsdf::apps::gamma::{synthesize, GammaConfig};
use rtsdf::prelude::*;
use rtsdf::queueing::estimate::{estimate_backlog_factors, EstimateConfig};
use rtsdf::sim::calibration::{calibrate_enforced, CalibrationConfig};

fn main() {
    // Synthesize the instrument pipeline: gains are *measured* from a
    // stream of synthetic photon events.
    let config = GammaConfig::default();
    let pipeline = synthesize(&config, 2024).expect("valid pipeline");
    println!(
        "gamma-ray pipeline (gains measured over {} events):",
        config.events
    );
    for (node, g_total) in pipeline.nodes().iter().zip(pipeline.total_gains()) {
        println!(
            "  {:<14} t = {:>6.0}  g = {:.4}  (traffic per photon: {:.4})",
            node.name,
            node.service_time,
            node.mean_gain(),
            g_total
        );
    }

    // Photons arrive every ~40 cycles; the burst alert must be out
    // within 60k cycles.
    let params = RtParams::new(40.0, 6e4).unwrap();

    // Calibrate backlog factors empirically (§6.2 methodology).
    println!();
    println!("calibrating backlog factors empirically...");
    let calib = calibrate_enforced(&pipeline, &CalibrationConfig::quick(vec![params]));
    println!(
        "  empirical b = {:?} (converged: {})",
        calib.b, calib.converged
    );

    // Schedule with the calibrated factors.
    let sched = EnforcedWaitsProblem::new(&pipeline, params, calib.b.clone())
        .solve(SolveMethod::WaterFilling)
        .expect("feasible");
    println!();
    println!("enforced-waits schedule:");
    for (i, w) in sched.waits.iter().enumerate() {
        println!("  node {i}: wait {w:.0} cycles");
    }
    println!("  predicted active fraction {:.4}", sched.active_fraction);

    // A-priori estimate from bulk-service queueing theory (the paper's
    // future work, §7) for comparison.
    let est = estimate_backlog_factors(
        &pipeline,
        &sched.periods,
        params.tau0,
        &EstimateConfig::default(),
    );
    println!(
        "  a-priori queueing-theory b = {:?}",
        est.iter().map(|e| e.b).collect::<Vec<_>>()
    );

    // Stress across seeds, the paper's schedulability statistic.
    println!();
    println!("stress test: 20 seeds x 10 000 photons...");
    let report = run_seeds_enforced(
        &pipeline,
        &sched,
        params.deadline,
        &SimConfig::quick(params.tau0, 0, 10_000),
        20,
    );
    println!(
        "  miss-free seeds: {:.0}%  worst per-seed miss rate: {:.4}%",
        100.0 * report.miss_free_fraction(),
        100.0 * report.worst_miss_rate()
    );
    println!(
        "  mean measured active fraction: {:.4}",
        report.mean_active_fraction()
    );

    // How much processor time did enforced waiting return to the
    // system relative to the monolithic baseline?
    match MonolithicProblem::new(&pipeline, params, 1.0, 1.0).solve() {
        Ok(mono) => println!(
            "  monolithic baseline would occupy {:.4} — enforced waits frees {:+.1}% of the processor",
            mono.active_fraction,
            100.0 * (mono.active_fraction - sched.active_fraction)
        ),
        Err(e) => println!("  monolithic baseline infeasible here ({e})"),
    }
}
