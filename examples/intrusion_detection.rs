//! Network intrusion detection under bursty traffic.
//!
//! IDS sensors face the worst of both worlds: tight per-packet latency
//! budgets (the forwarding decision cannot wait) and heavy-tailed,
//! *bursty* arrivals. This example synthesizes a Snort-like cascade,
//! schedules it both ways, and shows how burstiness interacts with the
//! monolithic strategy's worst-case scale parameter `S` — the paper's
//! §5 knob for sustained non-average behaviour.
//!
//! Run with:
//! ```text
//! cargo run --release -p rtsdf --example intrusion_detection
//! ```

use rtsdf::apps::ids::{synthesize, IdsConfig};
use rtsdf::model::ArrivalProcess;
use rtsdf::prelude::*;

fn main() {
    let config = IdsConfig::default();
    let pipeline = synthesize(&config, 7).expect("valid pipeline");
    println!(
        "IDS cascade (gains measured over {} packets):",
        config.packets
    );
    for node in pipeline.nodes() {
        println!(
            "  {:<14} t = {:>6.0}  g = {:.4}",
            node.name,
            node.service_time,
            node.mean_gain()
        );
    }

    // Packets at one per 60 cycles on average, 80k-cycle verdict budget.
    let params = RtParams::new(60.0, 8e4).unwrap();
    let b = EnforcedWaitsProblem::optimistic_backlog(&pipeline);
    let enforced = EnforcedWaitsProblem::new(&pipeline, params, b)
        .solve(SolveMethod::WaterFilling)
        .expect("feasible");
    println!();
    println!(
        "enforced waits: active fraction {:.4} (waits {:?})",
        enforced.active_fraction,
        enforced.waits.iter().map(|w| w.round()).collect::<Vec<_>>()
    );

    // The monolithic strategy under increasing worst-case scale S: the
    // knob that prices in sustained bursts.
    println!();
    println!("monolithic baseline vs. worst-case scale S:");
    for s in [1.0, 1.5, 2.0, 3.0] {
        match MonolithicProblem::new(&pipeline, params, 1.0, s).solve() {
            Ok(m) => println!(
                "  S = {s:3.1}: M = {:>5}, active fraction {:.4}",
                m.block_size, m.active_fraction
            ),
            Err(_) => println!("  S = {s:3.1}: infeasible (deadline cannot absorb the margin)"),
        }
    }

    // Simulate both under *bursty* arrivals with the same long-run rate
    // as the design point. The enforced-waits design assumed periodic
    // arrivals — burstiness is exactly the stress its b-factors must
    // absorb.
    println!();
    println!("simulation under bursty arrivals (same mean rate):");
    let bursty = ArrivalProcess::Bursty {
        tau_on: 20.0,
        on_mean: 2_000.0,
        off_mean: 4_000.0,
    };
    println!(
        "  burst structure: {:.0}-cycle spacing inside bursts, mean rate 1/{:.0}",
        20.0,
        bursty.mean_interarrival()
    );
    let mut cfg = SimConfig::quick(params.tau0, 3, 20_000);
    cfg.arrivals = bursty;

    let m_enf = simulate_enforced(&pipeline, &enforced, params.deadline, &cfg);
    println!(
        "  enforced waits: active {:.4}, miss rate {:.3}%, max backlog (vectors) {:?}",
        m_enf.active_fraction,
        100.0 * m_enf.miss_rate(),
        m_enf
            .max_backlog_vectors
            .iter()
            .map(|b| (b * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );

    if let Ok(mono) = MonolithicProblem::new(&pipeline, params, 1.0, 1.0).solve() {
        let m_mono = simulate_monolithic(&pipeline, &mono, params.deadline, &cfg);
        println!(
            "  monolithic:     active {:.4}, miss rate {:.3}%",
            m_mono.active_fraction,
            100.0 * m_mono.miss_rate()
        );
        println!();
        println!(
            "verdict: under bursts, enforced waits held {} of the processor vs monolithic's {}",
            format_args!("{:.1}%", 100.0 * m_enf.active_fraction),
            format_args!("{:.1}%", 100.0 * m_mono.active_fraction),
        );
    }
}
