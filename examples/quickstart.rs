//! Quickstart: define a small irregular pipeline, optimize both
//! scheduling strategies, and validate the chosen schedule in the
//! discrete-event simulator.
//!
//! Run with:
//! ```text
//! cargo run --release -p rtsdf --example quickstart
//! ```

use rtsdf::prelude::*;

fn main() {
    // A three-stage pipeline: a filter, an expander, and an expensive
    // final stage — the shape that makes SIMD scheduling interesting.
    let pipeline = PipelineSpecBuilder::new(64)
        .stage("prefilter", 120.0, GainModel::Bernoulli { p: 0.5 })
        .stage(
            "expand",
            400.0,
            GainModel::CensoredPoisson { mean: 2.5, cap: 8 },
        )
        .stage("finalize", 900.0, GainModel::Deterministic { k: 1 })
        .build()
        .expect("valid pipeline");

    // Operating point: one item every 30 cycles, 40 000-cycle deadline.
    let params = RtParams::new(30.0, 4e4).expect("valid parameters");
    println!(
        "pipeline: {} stages, v = {}",
        pipeline.len(),
        pipeline.vector_width()
    );
    println!(
        "operating point: tau0 = {}, D = {}",
        params.tau0, params.deadline
    );
    println!();

    // --- Strategy 1: enforced waits (the paper's contribution) -------
    let b = EnforcedWaitsProblem::optimistic_backlog(&pipeline);
    let problem = EnforcedWaitsProblem::new(&pipeline, params, b);
    let enforced = problem
        .solve(SolveMethod::WaterFilling)
        .expect("feasible operating point");
    println!("enforced waits:");
    for (i, (w, x)) in enforced.waits.iter().zip(&enforced.periods).enumerate() {
        println!("  node {i}: wait {w:8.1} cycles  (fires every {x:8.1})");
    }
    println!(
        "  predicted active fraction: {:.4}",
        enforced.active_fraction
    );

    // Certify optimality via the KKT conditions — an independent check
    // on whichever solver produced the schedule.
    let report = rtsdf::core::kkt::verify_kkt(&problem, &enforced.periods, 1e-5);
    println!(
        "  KKT certificate: stationarity {:.2e}, active constraints: {:?}",
        report.stationarity_residual, report.active
    );
    println!();

    // --- Strategy 2: monolithic batching (the baseline) --------------
    let monolithic = MonolithicProblem::new(&pipeline, params, 1.0, 1.0)
        .solve()
        .expect("feasible operating point");
    println!("monolithic baseline:");
    println!("  block size M = {}", monolithic.block_size);
    println!(
        "  predicted active fraction: {:.4}",
        monolithic.active_fraction
    );
    println!();

    // --- Validate in simulation --------------------------------------
    let config = SimConfig::quick(params.tau0, 7, 20_000);
    let measured = simulate_enforced(&pipeline, &enforced, params.deadline, &config);
    println!("simulation of the enforced-waits schedule (20 000 items):");
    println!(
        "  measured active fraction: {:.4} (predicted {:.4})",
        measured.active_fraction, enforced.active_fraction
    );
    println!(
        "  deadline misses: {} / {} ({:.3}%)",
        measured.deadline_misses,
        measured.items_arrived,
        100.0 * measured.miss_rate()
    );
    println!(
        "  mean lane occupancy per node: {:?}",
        measured
            .occupancy
            .iter()
            .map(|o| (o.mean_occupancy() * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  p50/p99-ish latency: mean {:.0} cycles, max {:.0} cycles",
        measured.latency.mean(),
        measured.latency.max().unwrap_or(0.0)
    );

    let winner = if enforced.active_fraction < monolithic.active_fraction {
        "enforced waits"
    } else {
        "monolithic"
    };
    println!();
    println!(
        "verdict at this operating point: {winner} wins ({:.4} vs {:.4})",
        enforced.active_fraction, monolithic.active_fraction
    );
}
