//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Provides `Criterion`, `criterion_group!` / `criterion_main!`,
//! `Bencher::{iter, iter_batched}`, benchmark groups with `throughput`,
//! and `black_box`. Measurement is a simple calibrated loop (warm-up,
//! then timed batches) reporting mean / min wall time per iteration —
//! far simpler than the real criterion's statistics, but adequate for
//! the relative comparisons this workspace's benches make, and fully
//! offline.
//!
//! Environment knobs:
//! * `CRITERION_MEASURE_MS` — target measurement window per benchmark
//!   in milliseconds (default 300).
//! * `CRITERION_FILTER` — only run benchmarks whose id contains this
//!   substring (the real binary's positional filter is also honored).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim times each routine
/// invocation individually, so the variants behave identically; the
/// type exists for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Declared throughput of a benchmark, folded into the report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing collector handed to `bench_function` closures.
pub struct Bencher {
    target: Duration,
    /// (total elapsed, iterations) accumulated by the measurement loop.
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            target,
            samples: Vec::new(),
        }
    }

    /// Time `routine` repeatedly until the measurement window is full.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that takes a
        // measurable slice of the window.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = self.target;
        let rounds = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..rounds {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let rounds = (self.target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..rounds {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self) -> Option<(Duration, Duration, usize)> {
        if self.samples.is_empty() {
            return None;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("non-empty");
        Some((mean, min, self.samples.len()))
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// One finished benchmark's timing summary, retained by the driver so
/// harness-less benches can post-process their numbers (e.g. into a run
/// manifest) instead of re-parsing stdout.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Full benchmark id (group-qualified).
    pub id: String,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Minimum wall time per iteration, nanoseconds.
    pub min_ns: f64,
    /// Number of timed iterations.
    pub samples: usize,
}

/// The benchmark driver.
pub struct Criterion {
    target: Duration,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(300);
        // Accept either the env knob or the conventional positional
        // filter argument (skipping flags such as `--bench`).
        let filter = std::env::var("CRITERION_FILTER")
            .ok()
            .or_else(|| std::env::args().skip(1).find(|a| !a.starts_with('-')));
        Criterion {
            target: Duration::from_millis(ms),
            filter,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Run one benchmark and print its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher::new(self.target);
        f(&mut b);
        match b.report() {
            Some((mean, min, n)) => {
                println!(
                    "bench {id:<40} mean {:>12}  min {:>12}  ({n} iters)",
                    fmt_duration(mean),
                    fmt_duration(min)
                );
                self.results.push(BenchResult {
                    id,
                    mean_ns: mean.as_nanos() as f64,
                    min_ns: min.as_nanos() as f64,
                    samples: n,
                });
            }
            None => println!("bench {id:<40} (no samples)"),
        }
        self
    }

    /// Replace the benchmark id filter. Benches that parse their own
    /// CLI arguments (e.g. `--grid 4x4`) use this to override the
    /// default's positional-argument sniffing, which would otherwise
    /// treat a flag's value as a filter.
    pub fn with_filter(mut self, filter: Option<String>) -> Self {
        self.filter = filter;
        self
    }

    /// Timing summaries of every benchmark run so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Drain and return the accumulated timing summaries.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// API-compatibility no-op (the shim configures via env vars).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named collection of benchmarks sharing throughput metadata.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        if let Some(Throughput::Elements(n) | Throughput::Bytes(n)) = self.throughput {
            self.criterion.bench_function(format!("{full} (x{n})"), f);
        } else {
            self.criterion.bench_function(full, f);
        }
        self
    }

    /// Finish the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}

    /// API-compatibility no-op.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// API-compatibility knob: scales the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.target = d;
        self
    }
}

/// Bundle benchmark functions into a group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn results_are_recorded_and_drainable() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default().with_filter(None);
        c.bench_function("recorded", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.id, "recorded");
        assert!(r.mean_ns > 0.0);
        assert!(r.min_ns <= r.mean_ns);
        assert!(r.samples > 0);
        let drained = c.take_results();
        assert_eq!(drained.len(), 1);
        assert!(c.results().is_empty());
    }

    #[test]
    fn with_filter_skips_nonmatching_ids() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default().with_filter(Some("match".into()));
        c.bench_function("other", |b| b.iter(|| black_box(0)));
        c.bench_function("matching", |b| b.iter(|| black_box(0)));
        let ids: Vec<&str> = c.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["matching"]);
    }

    #[test]
    fn groups_and_batched_iter_work() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3, 4],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}
