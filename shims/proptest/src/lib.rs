//! Offline vendored property-testing harness.
//!
//! Presents the slice of the `proptest` API this workspace uses —
//! `proptest! { #![proptest_config(...)] #[test] fn f(x in strategy) {...} }`,
//! `prop_assert*!`, `prop_assume!`, `prop_oneof!`, `Just`,
//! `prop::collection::vec`, range strategies, `.prop_map` — on top of a
//! simple deterministic sampler. Unlike the real proptest there is **no
//! shrinking**: a failing case reports the sampled inputs and the
//! deterministic case seed instead.

pub mod strategy {
    //! Strategies: composable random value generators.

    use rand::Rng;

    /// The RNG handed to strategies; deterministic per test case.
    pub type TestRng = rand::rngs::StdRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discard generated values failing `f` (resampling; gives up
        /// after a bounded number of tries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }

        /// Chain a dependent strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// `prop_filter` combinator.
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive samples: {}",
                self.whence
            );
        }
    }

    /// `prop_flat_map` combinator.
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// An inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case-count configuration and failure plumbing.

    /// Subset of proptest's run configuration: the number of cases.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property is false for these inputs.
        Fail(String),
        /// The inputs don't satisfy a `prop_assume!` precondition.
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform `true` / `false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The `prop::bool::ANY` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// `prop::` module namespace (mirrors `proptest::prelude::prop`).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

#[doc(hidden)]
pub mod __rt {
    //! Macro plumbing: re-exports so `proptest!` works in crates that
    //! don't themselves depend on `rand`.
    pub use rand;
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`

    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a boolean property inside `proptest!`, with optional message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Assert inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skip cases whose inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Define property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(0f64..1.0, 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rejected: u32 = 0;
                for __case in 0..__config.cases {
                    // Deterministic per-case seed: failures are
                    // reproducible by rerunning the same binary.
                    let mut __rng = <$crate::strategy::TestRng as $crate::__rt::rand::SeedableRng>::seed_from_u64(
                        0xC0FF_EE00_u64 ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut __inputs = String::new();
                    $(
                        let __v = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                        __inputs.push_str(&format!(
                            "\n    {} = {:?}", stringify!($pat), __v
                        ));
                        let $pat = __v;
                    )+
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            __rejected += 1;
                            if __rejected > __config.cases * 16 {
                                panic!(
                                    "property `{}`: too many prop_assume! rejections",
                                    stringify!($name),
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "property `{}` failed at case {}/{}: {}\n  inputs:{}",
                                stringify!($name), __case, __config.cases, __msg, __inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_respects_size_band(v in prop::collection::vec(0u8..4, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_map_compose(
            g in prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2)],
            (a, b) in (0u8..3, 0u8..3),
        ) {
            prop_assert!(g == 1 || (20..40).contains(&g));
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
