//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand` it actually uses: [`RngCore`],
//! [`SeedableRng`], the extension trait [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`, `fill`), and [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64). The surface is call-compatible with `rand` 0.8 for the
//! code in this repository; it is **not** a general-purpose replacement.

use core::fmt;

/// Error type carried by [`RngCore::try_fill_bytes`].
///
/// The vendored generators are infallible, so this is only ever
/// constructed by downstream code that needs a placeholder.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw 32/64-bit output and byte
/// filling. Matches `rand::RngCore` (0.8).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible byte filling; infallible for all generators here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsRef<[u8]> + AsMut<[u8]>;

    /// Build from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single `u64`, expanded with SplitMix64 (the same
    /// convention rand 0.8 uses for `seed_from_u64`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that `Rng::gen` can produce from raw bits.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random bits, like rand's `Standard`.
    #[inline]
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::gen_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::gen_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Unbiased uniform draw in `[0, n)` via Lemire-style rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % n;
        }
    }
}

/// Convenience extension trait over [`RngCore`]; blanket-implemented.
pub trait Rng: RngCore {
    /// Draw a value of an inferred type (`u8`, `f64`, `bool`, ...).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }

    /// Draw uniformly from a half-open or inclusive range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_in(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::gen_standard(self) < p
    }

    /// Fill a byte slice with random data.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Standard generators.

    use super::{Error, RngCore, SeedableRng};

    /// xoshiro256++ — a fast, high-quality 256-bit generator. Stands in
    /// for `rand::rngs::StdRng`; deterministic given a seed, with no
    /// cross-version stability promises (same contract as `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&x[..n]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
