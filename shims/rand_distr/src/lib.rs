//! Offline vendored subset of `rand_distr`: the [`Distribution`] trait
//! and the [`Poisson`] distribution (the only one this workspace uses).

use rand::{Rng, RngCore};

/// A distribution that can be sampled with any [`RngCore`].
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error building a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoissonError;

impl core::fmt::Display for PoissonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("lambda must be finite and > 0")
    }
}

impl std::error::Error for PoissonError {}

/// Poisson distribution with rate `lambda`, sampled as `f64` counts
/// (matching `rand_distr::Poisson<f64>`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
    /// `exp(-lambda)`, the Knuth-loop termination threshold. Computed
    /// once at construction so batch sampling pays no transcendental
    /// per draw.
    limit: f64,
}

impl Poisson {
    /// Create a Poisson distribution; `lambda` must be finite and `> 0`.
    pub fn new(lambda: f64) -> Result<Poisson, PoissonError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Poisson {
                lambda,
                limit: (-lambda).exp(),
            })
        } else {
            Err(PoissonError)
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth's product-of-uniforms method; exact and fast for the
            // small means this workspace uses (BLAST extend stage ~1.9).
            let limit = self.limit;
            let mut count = 0u64;
            let mut prod: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            while prod > limit {
                count += 1;
                prod *= rng.gen::<f64>().max(f64::MIN_POSITIVE);
            }
            count as f64
        } else {
            // Normal approximation with continuity correction for large
            // lambda (not exercised by the paper pipelines, kept sane).
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let v: f64 = rng.gen();
            let z = (-2.0 * u.ln()).sqrt() * (2.0 * core::f64::consts::PI * v).cos();
            (self.lambda + self.lambda.sqrt() * z).round().max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_lambda() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(1.9).is_ok());
    }

    #[test]
    fn small_lambda_mean_matches() {
        let p = Poisson::new(1.92).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| p.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.92).abs() < 0.02, "mean {mean}");
    }
}
