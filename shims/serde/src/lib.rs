//! Offline vendored serde facade.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors a minimal serde-compatible surface: `#[derive(Serialize,
//! Deserialize)]` (re-exported from the sibling `serde_derive` proc
//! macro) and the [`Serialize`] / [`Deserialize`] traits, defined
//! directly over an in-memory JSON [`Value`] tree instead of the real
//! serde's visitor architecture. The `serde_json` shim builds its
//! `to_string` / `from_str` / `json!` API on top of this tree.
//!
//! Only the shapes this repository actually derives are supported:
//! named-field structs (optionally generic), newtype structs, and enums
//! with unit / newtype / struct variants, encoded with serde's
//! externally-tagged convention.

use core::fmt;

/// Error produced by serialization or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// An order-preserving string-keyed map (what `serde_json::Map` is to
/// `serde_json::Value`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert, replacing any existing entry with the same key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(core::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// An in-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (negative integers parse here).
    I64(i64),
    /// Unsigned integer (nonnegative integers parse here).
    U64(u64),
    /// Floating-point number; non-finite values serialize as `null`.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Map),
}

impl Value {
    /// Numeric view as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// Unsigned view, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) if x >= 0 => Some(x as u64),
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Some(x as u64),
            _ => None,
        }
    }

    /// Signed view, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) if x <= i64::MAX as u64 => Some(x as i64),
            Value::F64(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => Some(x as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Write compact JSON into `out`.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(x) => out.push_str(&x.to_string()),
            Value::U64(x) => out.push_str(&x.to_string()),
            Value::F64(x) => write_f64(*x, out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Write pretty JSON (2-space indent) into `out`.
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + STEP);
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(m) if !m.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + STEP);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push(' ');
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` prints the shortest representation that round-trips,
        // and always includes a decimal point or exponent.
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Member access; returns `Null` for non-objects / missing keys,
    /// like `serde_json`.
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Value {
        Value::U64(x)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Value {
        Value::I64(x)
    }
}

/// Convert a value into the JSON [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruct a value from the JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from a [`Value`], with a descriptive error on shape
    /// mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub use serde_derive::{Deserialize, Serialize};

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v}")))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(x)
                    .map_err(|_| Error::custom(format!("integer {x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v}")))?;
                <$t>::try_from(x)
                    .map_err(|_| Error::custom(format!("integer {x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(f64::NAN),
            _ => v
                .as_f64()
                .ok_or_else(|| Error::custom(format!("expected number, got {v}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected single-char string, got {v}")))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!(
                "expected single-char string, got {v}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N} elements, got {got}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected tuple array, got {v}")))?;
                let expected = [$($n),+].len();
                if a.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of {expected} elements, got {}",
                        a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .cloned()
            .ok_or_else(|| Error::custom(format!("expected object, got {v}")))
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v}")))?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v}")))?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
