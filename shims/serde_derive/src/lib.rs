//! Offline vendored `#[derive(Serialize, Deserialize)]`.
//!
//! The real `serde_derive` needs `syn`/`quote`, which are unavailable in
//! this offline build environment, so this crate parses the item's token
//! stream by hand and emits impls of the shim `serde::Serialize` /
//! `serde::Deserialize` traits (which operate on `serde::Value`).
//!
//! Supported shapes — exactly what this workspace derives:
//! * structs with named fields (optionally with simple type generics),
//! * newtype / tuple structs,
//! * enums whose variants are unit, newtype, tuple, or struct-like,
//!   encoded with serde's externally-tagged convention.
//!
//! Field-level `#[serde(default)]`, `#[serde(default = "path")]` and
//! `#[serde(skip_serializing_if = "path")]` are honored (they are what
//! lets new optional telemetry fields leave existing manifests
//! byte-identical); any other `#[serde(...)]` attribute is rejected
//! loudly rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A named struct (or struct-variant) field plus its honored serde
/// attributes.
#[derive(Debug)]
struct Field {
    name: String,
    /// `skip_serializing_if = "path"`: call `path(&self.field)` and omit
    /// the key when it returns true.
    skip_if: Option<String>,
    /// `default` / `default = "path"`: value to use when the key is
    /// absent from the input (instead of deserializing `Null`).
    default: Option<FieldDefault>,
}

#[derive(Debug)]
enum FieldDefault {
    /// `#[serde(default)]` → `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]` → `path()`.
    Path(String),
}

#[derive(Debug)]
enum Item {
    /// Named-field struct: field identifiers in declaration order.
    Struct {
        name: String,
        generics: Vec<String>,
        fields: Vec<Field>,
    },
    /// Tuple struct with `arity` unnamed fields.
    TupleStruct {
        name: String,
        generics: Vec<String>,
        arity: usize,
    },
    Enum {
        name: String,
        generics: Vec<String>,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i);

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                generics,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    generics,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                generics,
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body for {name}, found {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

/// Skip outer attributes (including doc comments) and visibility
/// qualifiers. Rejects `#[serde(...)]` here — item-, variant- and
/// tuple-level serde attributes are not honored by this shim (named
/// fields get theirs parsed by [`skip_attrs_collect_serde`]).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let inner = g.stream().to_string();
                    if inner.starts_with("serde") {
                        panic!("#[serde(...)] attributes are not supported by the vendored serde_derive shim in this position: {inner}");
                    }
                }
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) / pub(in ...)
                    }
                }
            }
            _ => return,
        }
    }
}

/// Like [`skip_attrs_and_vis`] but for named fields: honored
/// `#[serde(...)]` arguments (`default`, `default = "path"`,
/// `skip_serializing_if = "path"`) are collected instead of rejected;
/// anything else inside a serde attribute still panics loudly.
fn skip_attrs_collect_serde(
    tokens: &[TokenTree],
    i: &mut usize,
) -> (Option<String>, Option<FieldDefault>) {
    let mut skip_if = None;
    let mut default = None;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let attr: Vec<TokenTree> = g.stream().into_iter().collect();
                    let is_serde = matches!(
                        attr.first(),
                        Some(TokenTree::Ident(id)) if id.to_string() == "serde"
                    );
                    if is_serde {
                        let args = match attr.get(1) {
                            Some(TokenTree::Group(args))
                                if args.delimiter() == Delimiter::Parenthesis =>
                            {
                                args.stream()
                            }
                            other => panic!("malformed #[serde ...] attribute: {other:?}"),
                        };
                        parse_serde_field_args(args, &mut skip_if, &mut default);
                    }
                }
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) / pub(in ...)
                    }
                }
            }
            _ => return (skip_if, default),
        }
    }
}

/// Parse the comma-separated arguments of a field-level `#[serde(...)]`.
fn parse_serde_field_args(
    args: TokenStream,
    skip_if: &mut Option<String>,
    default: &mut Option<FieldDefault>,
) {
    let tokens: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            other => panic!("unsupported serde attribute argument: {other}"),
        };
        i += 1;
        let value = match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Literal(lit)) => {
                        i += 1;
                        let s = lit.to_string();
                        Some(s.trim_matches('"').to_string())
                    }
                    other => panic!("expected string literal after `{key} =`, found {other:?}"),
                }
            }
            _ => None,
        };
        match (key.as_str(), value) {
            ("default", None) => *default = Some(FieldDefault::Trait),
            ("default", Some(path)) => *default = Some(FieldDefault::Path(path)),
            ("skip_serializing_if", Some(path)) => *skip_if = Some(path),
            (other, _) => panic!(
                "serde attribute `{other}` is not supported by the vendored serde_derive shim"
            ),
        }
    }
}

/// Parse `<T, U>` after a type name; returns the parameter identifiers.
/// Bounds, defaults, lifetimes and const generics are not supported
/// (nothing in this workspace derives serde on such types).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            *i += 1;
        }
        _ => return params,
    }
    let mut depth = 1usize;
    let mut expecting_param = true;
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                expecting_param = true;
            }
            Some(TokenTree::Ident(id)) if expecting_param && depth == 1 => {
                params.push(id.to_string());
                expecting_param = false;
            }
            Some(_) => {}
            None => panic!("unterminated generics"),
        }
        *i += 1;
    }
    params
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (skip_if, default) = skip_attrs_collect_serde(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name,
            skip_if,
            default,
        });
        // Trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    fields
}

/// Advance past one type, stopping at a top-level `,` (angle-bracket
/// depth aware; parenthesized/bracketed types arrive as single groups).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0usize;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth = depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                panic!("enum discriminants are not supported by the serde_derive shim");
            }
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn impl_header(trait_name: &str, name: &str, generics: &[String]) -> String {
    if generics.is_empty() {
        format!("impl ::serde::{trait_name} for {name}")
    } else {
        let bounded: Vec<String> = generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        format!(
            "impl<{}> ::serde::{trait_name} for {name}<{}>",
            bounded.join(", "),
            generics.join(", ")
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            generics,
            fields,
        } => {
            let mut body = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                let fname = &f.name;
                let insert = format!(
                    "m.insert(\"{fname}\".to_string(), ::serde::Serialize::to_value(&self.{fname}));\n"
                );
                match &f.skip_if {
                    Some(path) => {
                        body.push_str(&format!("if !{path}(&self.{fname}) {{ {insert} }}\n"))
                    }
                    None => body.push_str(&insert),
                }
            }
            body.push_str("::serde::Value::Object(m)");
            format!(
                "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
                impl_header("Serialize", name, generics)
            )
        }
        Item::TupleStruct {
            name,
            generics,
            arity,
        } => {
            let body = match arity {
                0 => "::serde::Value::Null".to_string(),
                1 => "::serde::Serialize::to_value(&self.0)".to_string(),
                n => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
            };
            format!(
                "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
                impl_header("Serialize", name, generics)
            )
        }
        Item::Enum {
            name,
            generics,
            variants,
        } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => {{ let mut m = ::serde::Map::new(); \
                         m.insert(\"{vn}\".to_string(), ::serde::Serialize::to_value(x0)); \
                         ::serde::Value::Object(m) }}\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{ let mut m = ::serde::Map::new(); \
                             m.insert(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}])); \
                             ::serde::Value::Object(m) }}\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                        for f in fields {
                            let fname = &f.name;
                            let insert = format!(
                                "fm.insert(\"{fname}\".to_string(), ::serde::Serialize::to_value({fname}));\n"
                            );
                            match &f.skip_if {
                                Some(path) => {
                                    inner.push_str(&format!("if !{path}({fname}) {{ {insert} }}\n"))
                                }
                                None => inner.push_str(&insert),
                            }
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ {inner} \
                             let mut m = ::serde::Map::new(); \
                             m.insert(\"{vn}\".to_string(), ::serde::Value::Object(fm)); \
                             ::serde::Value::Object(m) }}\n"
                        ));
                    }
                }
            }
            format!(
                "{} {{ fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}",
                impl_header("Serialize", name, generics)
            )
        }
    }
}

/// Emit one `field: <expr>,` line reconstructing a named field from the
/// map binding `map_var`, honoring a `default` attribute for absent
/// keys.
fn field_from_value(owner: &str, f: &Field, map_var: &str) -> String {
    let fname = &f.name;
    let from = format!(
        "::serde::Deserialize::from_value(v)\
         .map_err(|e| ::serde::Error::custom(format!(\"{owner}.{fname}: {{e}}\")))?"
    );
    match &f.default {
        None => format!(
            "{fname}: {{ let v = {map_var}.get(\"{fname}\").unwrap_or(&::serde::Value::Null); {from} }},\n"
        ),
        Some(FieldDefault::Trait) => format!(
            "{fname}: match {map_var}.get(\"{fname}\") {{ Some(v) => {from}, None => Default::default() }},\n"
        ),
        Some(FieldDefault::Path(path)) => format!(
            "{fname}: match {map_var}.get(\"{fname}\") {{ Some(v) => {from}, None => {path}() }},\n"
        ),
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            generics,
            fields,
        } => {
            let mut body = format!(
                "let m = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"expected object for {name}, got {{v}}\")))?;\n"
            );
            let mut ctor = String::new();
            for f in fields {
                ctor.push_str(&field_from_value(name, f, "m"));
            }
            body.push_str(&format!("Ok({name} {{ {ctor} }})"));
            format!(
                "{} {{ fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }} }}",
                impl_header("Deserialize", name, generics)
            )
        }
        Item::TupleStruct {
            name,
            generics,
            arity,
        } => {
            let body = match arity {
                0 => format!("let _ = v; Ok({name})"),
                1 => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
                n => {
                    let mut b = format!(
                        "let a = v.as_array().ok_or_else(|| ::serde::Error::custom(\
                         format!(\"expected array for {name}, got {{v}}\")))?;\n\
                         if a.len() != {n} {{ return Err(::serde::Error::custom(\
                         format!(\"expected {n} elements for {name}, got {{}}\", a.len()))); }}\n"
                    );
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&a[{k}])?"))
                        .collect();
                    b.push_str(&format!("Ok({name}({}))", elems.join(", ")));
                    b
                }
            };
            format!(
                "{} {{ fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }} }}",
                impl_header("Deserialize", name, generics)
            )
        }
        Item::Enum {
            name,
            generics,
            variants,
        } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&a[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let a = inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(format!(\"expected array for {name}::{vn}\")))?; \
                             if a.len() != {n} {{ return Err(::serde::Error::custom(format!(\
                             \"expected {n} elements for {name}::{vn}, got {{}}\", a.len()))); }} \
                             return Ok({name}::{vn}({})); }}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let mut ctor = String::new();
                        for f in fields {
                            ctor.push_str(&field_from_value(&format!("{name}::{vn}"), f, "fm"));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let fm = inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(format!(\"expected object for {name}::{vn}\")))?; \
                             return Ok({name}::{vn} {{ {ctor} }}); }}\n"
                        ));
                    }
                }
            }
            let body = format!(
                "if let Some(tag) = v.as_str() {{ match tag {{ {unit_arms} \
                 other => return Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant: {{other}}\"))), }} }}\n\
                 if let Some(m) = v.as_object() {{ \
                 if m.len() == 1 {{ \
                 let (tag, inner) = m.iter().next().expect(\"len checked\"); \
                 match tag.as_str() {{ {tagged_arms} \
                 other => return Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant: {{other}}\"))), }} }} }}\n\
                 Err(::serde::Error::custom(format!(\"cannot deserialize {name} from {{v}}\")))"
            );
            format!(
                "{} {{ fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }} }}",
                impl_header("Deserialize", name, generics)
            )
        }
    }
}
