//! Offline vendored subset of the `serde_json` API, built on the shim
//! `serde` crate's [`Value`] tree: [`to_string`], [`to_string_pretty`],
//! [`to_value`], [`from_str`], the [`json!`] macro, and re-exported
//! [`Value`] / [`Map`] types.

pub use serde::{Map, Value};

/// Serialization / deserialization error (re-exported from the serde
/// shim so both layers share one type).
pub type Error = serde::Error;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().write_compact(&mut out);
    Ok(out)
}

/// Serialize to a pretty JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().write_pretty(&mut out, 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T> {
    T::from_value(v)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

/// Build a [`Value`] from a JSON-ish literal. Supports object literals
/// with string-literal keys, array literals, and arbitrary serializable
/// Rust expressions as values — the subset this workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($k:literal : $v:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($k.to_string(), $crate::to_value(&$v).expect("json! value")); )*
        $crate::Value::Object(m)
    }};
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$v).expect("json! value") ),* ])
    };
    ($v:expr) => { $crate::to_value(&$v).expect("json! value") };
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than corrupt.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = text.chars().next().expect("non-empty checked");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let src = r#"{"a":[1,2.5,-3],"b":"x\ny","c":true,"d":null,"e":{"k":1e5}}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_i64(), Some(-3));
        assert_eq!(v["b"].as_str(), Some("x\ny"));
        assert_eq!(v["c"].as_bool(), Some(true));
        assert!(v["d"].is_null());
        assert_eq!(v["e"]["k"].as_f64(), Some(1e5));
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({
            "name": "x",
            "xs": vec![1.0f64, 2.0],
            "nested": json!({"k": 3u32}),
        });
        assert_eq!(v["name"].as_str(), Some("x"));
        assert_eq!(v["xs"][1].as_f64(), Some(2.0));
        assert_eq!(v["nested"]["k"].as_u64(), Some(3));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"a": 1u8, "b": vec!["x", "y"]});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        let xs = [0.1, 1.0 / 3.0, 1e-300, 2753.0, f64::MAX];
        for x in xs {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "{s}");
        }
    }
}
