/root/repo/target/debug/deps/ablation-0a2b3f3c6eaf0ca7.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-0a2b3f3c6eaf0ca7: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
