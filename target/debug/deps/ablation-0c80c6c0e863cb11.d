/root/repo/target/debug/deps/ablation-0c80c6c0e863cb11.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-0c80c6c0e863cb11.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
