/root/repo/target/debug/deps/ablation-2dbe67300d8887f4.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-2dbe67300d8887f4.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
