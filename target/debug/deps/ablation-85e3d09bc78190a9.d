/root/repo/target/debug/deps/ablation-85e3d09bc78190a9.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-85e3d09bc78190a9: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
