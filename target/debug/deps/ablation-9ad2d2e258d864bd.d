/root/repo/target/debug/deps/ablation-9ad2d2e258d864bd.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-9ad2d2e258d864bd.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
