/root/repo/target/debug/deps/ablation-d1b416b1df92a028.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-d1b416b1df92a028: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
