/root/repo/target/debug/deps/ablation-f6d56de9bb496a06.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-f6d56de9bb496a06: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
