/root/repo/target/debug/deps/agreement-00c4a37af9ff96f3.d: crates/bench/src/bin/agreement.rs

/root/repo/target/debug/deps/agreement-00c4a37af9ff96f3: crates/bench/src/bin/agreement.rs

crates/bench/src/bin/agreement.rs:
