/root/repo/target/debug/deps/agreement-329a0f07d1c571e4.d: crates/bench/src/bin/agreement.rs Cargo.toml

/root/repo/target/debug/deps/libagreement-329a0f07d1c571e4.rmeta: crates/bench/src/bin/agreement.rs Cargo.toml

crates/bench/src/bin/agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
