/root/repo/target/debug/deps/agreement-3b0975cb2f221f54.d: crates/bench/src/bin/agreement.rs Cargo.toml

/root/repo/target/debug/deps/libagreement-3b0975cb2f221f54.rmeta: crates/bench/src/bin/agreement.rs Cargo.toml

crates/bench/src/bin/agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
