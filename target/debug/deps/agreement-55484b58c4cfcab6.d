/root/repo/target/debug/deps/agreement-55484b58c4cfcab6.d: crates/bench/src/bin/agreement.rs

/root/repo/target/debug/deps/agreement-55484b58c4cfcab6: crates/bench/src/bin/agreement.rs

crates/bench/src/bin/agreement.rs:
