/root/repo/target/debug/deps/agreement-6ac2f5d538e3c64e.d: crates/bench/src/bin/agreement.rs Cargo.toml

/root/repo/target/debug/deps/libagreement-6ac2f5d538e3c64e.rmeta: crates/bench/src/bin/agreement.rs Cargo.toml

crates/bench/src/bin/agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
