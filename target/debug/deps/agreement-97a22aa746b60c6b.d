/root/repo/target/debug/deps/agreement-97a22aa746b60c6b.d: crates/bench/src/bin/agreement.rs

/root/repo/target/debug/deps/agreement-97a22aa746b60c6b: crates/bench/src/bin/agreement.rs

crates/bench/src/bin/agreement.rs:
