/root/repo/target/debug/deps/agreement-97a6c900b6d977c4.d: crates/bench/src/bin/agreement.rs

/root/repo/target/debug/deps/agreement-97a6c900b6d977c4: crates/bench/src/bin/agreement.rs

crates/bench/src/bin/agreement.rs:
