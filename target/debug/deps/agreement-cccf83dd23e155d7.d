/root/repo/target/debug/deps/agreement-cccf83dd23e155d7.d: crates/bench/src/bin/agreement.rs Cargo.toml

/root/repo/target/debug/deps/libagreement-cccf83dd23e155d7.rmeta: crates/bench/src/bin/agreement.rs Cargo.toml

crates/bench/src/bin/agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
