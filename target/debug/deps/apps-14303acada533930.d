/root/repo/target/debug/deps/apps-14303acada533930.d: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/kernels.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs

/root/repo/target/debug/deps/libapps-14303acada533930.rlib: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/kernels.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs

/root/repo/target/debug/deps/libapps-14303acada533930.rmeta: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/kernels.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs

crates/apps/src/lib.rs:
crates/apps/src/cascade.rs:
crates/apps/src/kernels.rs:
crates/apps/src/gamma.rs:
crates/apps/src/ids.rs:
