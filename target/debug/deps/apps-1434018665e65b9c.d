/root/repo/target/debug/deps/apps-1434018665e65b9c.d: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libapps-1434018665e65b9c.rmeta: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/cascade.rs:
crates/apps/src/gamma.rs:
crates/apps/src/ids.rs:
crates/apps/src/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
