/root/repo/target/debug/deps/apps-3c54c74d3988d027.d: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs

/root/repo/target/debug/deps/libapps-3c54c74d3988d027.rlib: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs

/root/repo/target/debug/deps/libapps-3c54c74d3988d027.rmeta: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs

crates/apps/src/lib.rs:
crates/apps/src/cascade.rs:
crates/apps/src/gamma.rs:
crates/apps/src/ids.rs:
crates/apps/src/kernels.rs:
