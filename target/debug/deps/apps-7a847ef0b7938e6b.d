/root/repo/target/debug/deps/apps-7a847ef0b7938e6b.d: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs

/root/repo/target/debug/deps/apps-7a847ef0b7938e6b: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs

crates/apps/src/lib.rs:
crates/apps/src/cascade.rs:
crates/apps/src/gamma.rs:
crates/apps/src/ids.rs:
crates/apps/src/kernels.rs:
