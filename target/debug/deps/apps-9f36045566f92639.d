/root/repo/target/debug/deps/apps-9f36045566f92639.d: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libapps-9f36045566f92639.rmeta: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/cascade.rs:
crates/apps/src/gamma.rs:
crates/apps/src/ids.rs:
crates/apps/src/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
