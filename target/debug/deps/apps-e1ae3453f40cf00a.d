/root/repo/target/debug/deps/apps-e1ae3453f40cf00a.d: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libapps-e1ae3453f40cf00a.rmeta: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/cascade.rs:
crates/apps/src/gamma.rs:
crates/apps/src/ids.rs:
crates/apps/src/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
