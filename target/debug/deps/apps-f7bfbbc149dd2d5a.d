/root/repo/target/debug/deps/apps-f7bfbbc149dd2d5a.d: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs

/root/repo/target/debug/deps/apps-f7bfbbc149dd2d5a: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs

crates/apps/src/lib.rs:
crates/apps/src/cascade.rs:
crates/apps/src/gamma.rs:
crates/apps/src/ids.rs:
crates/apps/src/kernels.rs:
