/root/repo/target/debug/deps/apps_integration-01a7390da3f0dcba.d: crates/rtsdf/../../tests/apps_integration.rs Cargo.toml

/root/repo/target/debug/deps/libapps_integration-01a7390da3f0dcba.rmeta: crates/rtsdf/../../tests/apps_integration.rs Cargo.toml

crates/rtsdf/../../tests/apps_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
