/root/repo/target/debug/deps/apps_integration-214b6f7ce18f75e6.d: crates/rtsdf/../../tests/apps_integration.rs

/root/repo/target/debug/deps/apps_integration-214b6f7ce18f75e6: crates/rtsdf/../../tests/apps_integration.rs

crates/rtsdf/../../tests/apps_integration.rs:
