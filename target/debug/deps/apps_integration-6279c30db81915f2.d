/root/repo/target/debug/deps/apps_integration-6279c30db81915f2.d: crates/rtsdf/../../tests/apps_integration.rs

/root/repo/target/debug/deps/apps_integration-6279c30db81915f2: crates/rtsdf/../../tests/apps_integration.rs

crates/rtsdf/../../tests/apps_integration.rs:
