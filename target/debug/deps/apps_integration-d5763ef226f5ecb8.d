/root/repo/target/debug/deps/apps_integration-d5763ef226f5ecb8.d: crates/rtsdf/../../tests/apps_integration.rs Cargo.toml

/root/repo/target/debug/deps/libapps_integration-d5763ef226f5ecb8.rmeta: crates/rtsdf/../../tests/apps_integration.rs Cargo.toml

crates/rtsdf/../../tests/apps_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
