/root/repo/target/debug/deps/apriori_b-2737b2c0f96e9a35.d: crates/bench/src/bin/apriori_b.rs

/root/repo/target/debug/deps/apriori_b-2737b2c0f96e9a35: crates/bench/src/bin/apriori_b.rs

crates/bench/src/bin/apriori_b.rs:
