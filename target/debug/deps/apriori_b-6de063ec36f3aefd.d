/root/repo/target/debug/deps/apriori_b-6de063ec36f3aefd.d: crates/bench/src/bin/apriori_b.rs

/root/repo/target/debug/deps/apriori_b-6de063ec36f3aefd: crates/bench/src/bin/apriori_b.rs

crates/bench/src/bin/apriori_b.rs:
