/root/repo/target/debug/deps/apriori_b-980771b2632bed70.d: crates/bench/src/bin/apriori_b.rs

/root/repo/target/debug/deps/apriori_b-980771b2632bed70: crates/bench/src/bin/apriori_b.rs

crates/bench/src/bin/apriori_b.rs:
