/root/repo/target/debug/deps/apriori_b-9a46cc8b6ecca8d1.d: crates/bench/src/bin/apriori_b.rs Cargo.toml

/root/repo/target/debug/deps/libapriori_b-9a46cc8b6ecca8d1.rmeta: crates/bench/src/bin/apriori_b.rs Cargo.toml

crates/bench/src/bin/apriori_b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
