/root/repo/target/debug/deps/apriori_b-c69ac1c370978a6f.d: crates/bench/src/bin/apriori_b.rs

/root/repo/target/debug/deps/apriori_b-c69ac1c370978a6f: crates/bench/src/bin/apriori_b.rs

crates/bench/src/bin/apriori_b.rs:
