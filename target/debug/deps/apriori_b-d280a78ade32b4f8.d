/root/repo/target/debug/deps/apriori_b-d280a78ade32b4f8.d: crates/bench/src/bin/apriori_b.rs Cargo.toml

/root/repo/target/debug/deps/libapriori_b-d280a78ade32b4f8.rmeta: crates/bench/src/bin/apriori_b.rs Cargo.toml

crates/bench/src/bin/apriori_b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
