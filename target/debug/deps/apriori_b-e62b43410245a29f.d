/root/repo/target/debug/deps/apriori_b-e62b43410245a29f.d: crates/bench/src/bin/apriori_b.rs Cargo.toml

/root/repo/target/debug/deps/libapriori_b-e62b43410245a29f.rmeta: crates/bench/src/bin/apriori_b.rs Cargo.toml

crates/bench/src/bin/apriori_b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
