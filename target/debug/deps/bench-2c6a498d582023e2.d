/root/repo/target/debug/deps/bench-2c6a498d582023e2.d: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs Cargo.toml

/root/repo/target/debug/deps/libbench-2c6a498d582023e2.rmeta: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
crates/bench/src/manifest.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
