/root/repo/target/debug/deps/bench-2e74716c881e8671.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-2e74716c881e8671.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-2e74716c881e8671.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
