/root/repo/target/debug/deps/bench-3d73f23a8a7b8f9b.d: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs

/root/repo/target/debug/deps/bench-3d73f23a8a7b8f9b: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
crates/bench/src/manifest.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
