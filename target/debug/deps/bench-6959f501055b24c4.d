/root/repo/target/debug/deps/bench-6959f501055b24c4.d: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs

/root/repo/target/debug/deps/libbench-6959f501055b24c4.rlib: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs

/root/repo/target/debug/deps/libbench-6959f501055b24c4.rmeta: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
crates/bench/src/manifest.rs:
