/root/repo/target/debug/deps/bench-74485f811469f08c.d: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs Cargo.toml

/root/repo/target/debug/deps/libbench-74485f811469f08c.rmeta: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
crates/bench/src/manifest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
