/root/repo/target/debug/deps/bench-828eaa6410378346.d: crates/bench/src/lib.rs crates/bench/src/manifest.rs Cargo.toml

/root/repo/target/debug/deps/libbench-828eaa6410378346.rmeta: crates/bench/src/lib.rs crates/bench/src/manifest.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/manifest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
