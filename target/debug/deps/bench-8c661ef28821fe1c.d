/root/repo/target/debug/deps/bench-8c661ef28821fe1c.d: crates/bench/src/lib.rs crates/bench/src/manifest.rs

/root/repo/target/debug/deps/bench-8c661ef28821fe1c: crates/bench/src/lib.rs crates/bench/src/manifest.rs

crates/bench/src/lib.rs:
crates/bench/src/manifest.rs:
