/root/repo/target/debug/deps/bench-c9108f2cac4256d2.d: crates/bench/src/lib.rs crates/bench/src/manifest.rs

/root/repo/target/debug/deps/libbench-c9108f2cac4256d2.rlib: crates/bench/src/lib.rs crates/bench/src/manifest.rs

/root/repo/target/debug/deps/libbench-c9108f2cac4256d2.rmeta: crates/bench/src/lib.rs crates/bench/src/manifest.rs

crates/bench/src/lib.rs:
crates/bench/src/manifest.rs:
