/root/repo/target/debug/deps/bench-ceb5605c32047e19.d: crates/bench/src/lib.rs crates/bench/src/manifest.rs Cargo.toml

/root/repo/target/debug/deps/libbench-ceb5605c32047e19.rmeta: crates/bench/src/lib.rs crates/bench/src/manifest.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/manifest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
