/root/repo/target/debug/deps/bench-da725d1f0ffc0e75.d: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs

/root/repo/target/debug/deps/bench-da725d1f0ffc0e75: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
crates/bench/src/manifest.rs:
