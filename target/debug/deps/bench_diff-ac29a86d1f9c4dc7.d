/root/repo/target/debug/deps/bench_diff-ac29a86d1f9c4dc7.d: crates/bench/src/bin/bench_diff.rs Cargo.toml

/root/repo/target/debug/deps/libbench_diff-ac29a86d1f9c4dc7.rmeta: crates/bench/src/bin/bench_diff.rs Cargo.toml

crates/bench/src/bin/bench_diff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
