/root/repo/target/debug/deps/bench_diff-c3f7b839492b39d5.d: crates/bench/src/bin/bench_diff.rs

/root/repo/target/debug/deps/bench_diff-c3f7b839492b39d5: crates/bench/src/bin/bench_diff.rs

crates/bench/src/bin/bench_diff.rs:
