/root/repo/target/debug/deps/blast-0d50b05edf165d33.d: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs

/root/repo/target/debug/deps/libblast-0d50b05edf165d33.rlib: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs

/root/repo/target/debug/deps/libblast-0d50b05edf165d33.rmeta: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs

crates/blast/src/lib.rs:
crates/blast/src/index.rs:
crates/blast/src/kernels.rs:
crates/blast/src/pipeline.rs:
crates/blast/src/sequence.rs:
crates/blast/src/stages.rs:
