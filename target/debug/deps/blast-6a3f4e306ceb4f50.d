/root/repo/target/debug/deps/blast-6a3f4e306ceb4f50.d: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs Cargo.toml

/root/repo/target/debug/deps/libblast-6a3f4e306ceb4f50.rmeta: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs Cargo.toml

crates/blast/src/lib.rs:
crates/blast/src/index.rs:
crates/blast/src/kernels.rs:
crates/blast/src/pipeline.rs:
crates/blast/src/sequence.rs:
crates/blast/src/stages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
