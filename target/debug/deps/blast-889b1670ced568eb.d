/root/repo/target/debug/deps/blast-889b1670ced568eb.d: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs

/root/repo/target/debug/deps/libblast-889b1670ced568eb.rlib: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs

/root/repo/target/debug/deps/libblast-889b1670ced568eb.rmeta: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs

crates/blast/src/lib.rs:
crates/blast/src/index.rs:
crates/blast/src/kernels.rs:
crates/blast/src/pipeline.rs:
crates/blast/src/sequence.rs:
crates/blast/src/stages.rs:
