/root/repo/target/debug/deps/blast-b0d584103cec39e7.d: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs

/root/repo/target/debug/deps/blast-b0d584103cec39e7: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs

crates/blast/src/lib.rs:
crates/blast/src/index.rs:
crates/blast/src/kernels.rs:
crates/blast/src/pipeline.rs:
crates/blast/src/sequence.rs:
crates/blast/src/stages.rs:
