/root/repo/target/debug/deps/calibrate-8f331ba6903c72d4.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-8f331ba6903c72d4: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
