/root/repo/target/debug/deps/calibrate-9b76fd9274a171f8.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-9b76fd9274a171f8: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
