/root/repo/target/debug/deps/calibrate-a13239a94da7cd55.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-a13239a94da7cd55: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
