/root/repo/target/debug/deps/calibrate-a9d1f0dcd74a3707.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-a9d1f0dcd74a3707.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
