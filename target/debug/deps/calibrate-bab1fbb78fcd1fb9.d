/root/repo/target/debug/deps/calibrate-bab1fbb78fcd1fb9.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-bab1fbb78fcd1fb9.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
