/root/repo/target/debug/deps/calibrate-f9aa433f05e0a5d9.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-f9aa433f05e0a5d9: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
