/root/repo/target/debug/deps/cli_integration-13566055ce7fe719.d: crates/cli/tests/cli_integration.rs

/root/repo/target/debug/deps/cli_integration-13566055ce7fe719: crates/cli/tests/cli_integration.rs

crates/cli/tests/cli_integration.rs:
