/root/repo/target/debug/deps/cli_integration-af14dc0de5aa501d.d: crates/cli/tests/cli_integration.rs

/root/repo/target/debug/deps/cli_integration-af14dc0de5aa501d: crates/cli/tests/cli_integration.rs

crates/cli/tests/cli_integration.rs:
