/root/repo/target/debug/deps/cli_integration-e7250ea41d8c3b11.d: crates/cli/tests/cli_integration.rs Cargo.toml

/root/repo/target/debug/deps/libcli_integration-e7250ea41d8c3b11.rmeta: crates/cli/tests/cli_integration.rs Cargo.toml

crates/cli/tests/cli_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
