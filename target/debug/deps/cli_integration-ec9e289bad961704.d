/root/repo/target/debug/deps/cli_integration-ec9e289bad961704.d: crates/cli/tests/cli_integration.rs

/root/repo/target/debug/deps/cli_integration-ec9e289bad961704: crates/cli/tests/cli_integration.rs

crates/cli/tests/cli_integration.rs:
