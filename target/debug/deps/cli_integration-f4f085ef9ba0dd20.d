/root/repo/target/debug/deps/cli_integration-f4f085ef9ba0dd20.d: crates/cli/tests/cli_integration.rs Cargo.toml

/root/repo/target/debug/deps/libcli_integration-f4f085ef9ba0dd20.rmeta: crates/cli/tests/cli_integration.rs Cargo.toml

crates/cli/tests/cli_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
