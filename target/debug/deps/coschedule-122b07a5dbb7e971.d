/root/repo/target/debug/deps/coschedule-122b07a5dbb7e971.d: crates/bench/src/bin/coschedule.rs

/root/repo/target/debug/deps/coschedule-122b07a5dbb7e971: crates/bench/src/bin/coschedule.rs

crates/bench/src/bin/coschedule.rs:
