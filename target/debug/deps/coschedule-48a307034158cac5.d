/root/repo/target/debug/deps/coschedule-48a307034158cac5.d: crates/bench/src/bin/coschedule.rs

/root/repo/target/debug/deps/coschedule-48a307034158cac5: crates/bench/src/bin/coschedule.rs

crates/bench/src/bin/coschedule.rs:
