/root/repo/target/debug/deps/coschedule-8646765022c5471f.d: crates/bench/src/bin/coschedule.rs Cargo.toml

/root/repo/target/debug/deps/libcoschedule-8646765022c5471f.rmeta: crates/bench/src/bin/coschedule.rs Cargo.toml

crates/bench/src/bin/coschedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
