/root/repo/target/debug/deps/coschedule-b1aa26c554fdc1d4.d: crates/bench/src/bin/coschedule.rs Cargo.toml

/root/repo/target/debug/deps/libcoschedule-b1aa26c554fdc1d4.rmeta: crates/bench/src/bin/coschedule.rs Cargo.toml

crates/bench/src/bin/coschedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
