/root/repo/target/debug/deps/coschedule-b6f77baa65ef35d0.d: crates/bench/src/bin/coschedule.rs

/root/repo/target/debug/deps/coschedule-b6f77baa65ef35d0: crates/bench/src/bin/coschedule.rs

crates/bench/src/bin/coschedule.rs:
