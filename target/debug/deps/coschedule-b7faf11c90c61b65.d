/root/repo/target/debug/deps/coschedule-b7faf11c90c61b65.d: crates/bench/src/bin/coschedule.rs Cargo.toml

/root/repo/target/debug/deps/libcoschedule-b7faf11c90c61b65.rmeta: crates/bench/src/bin/coschedule.rs Cargo.toml

crates/bench/src/bin/coschedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
