/root/repo/target/debug/deps/coschedule-c4472c897af3079d.d: crates/bench/src/bin/coschedule.rs Cargo.toml

/root/repo/target/debug/deps/libcoschedule-c4472c897af3079d.rmeta: crates/bench/src/bin/coschedule.rs Cargo.toml

crates/bench/src/bin/coschedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
