/root/repo/target/debug/deps/coschedule-ca0614b49cf20b1f.d: crates/bench/src/bin/coschedule.rs

/root/repo/target/debug/deps/coschedule-ca0614b49cf20b1f: crates/bench/src/bin/coschedule.rs

crates/bench/src/bin/coschedule.rs:
