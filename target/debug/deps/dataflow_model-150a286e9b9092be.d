/root/repo/target/debug/deps/dataflow_model-150a286e9b9092be.d: crates/dataflow-model/src/lib.rs crates/dataflow-model/src/analysis.rs crates/dataflow-model/src/arrival.rs crates/dataflow-model/src/error.rs crates/dataflow-model/src/gain.rs crates/dataflow-model/src/node.rs crates/dataflow-model/src/params.rs crates/dataflow-model/src/pipeline.rs

/root/repo/target/debug/deps/dataflow_model-150a286e9b9092be: crates/dataflow-model/src/lib.rs crates/dataflow-model/src/analysis.rs crates/dataflow-model/src/arrival.rs crates/dataflow-model/src/error.rs crates/dataflow-model/src/gain.rs crates/dataflow-model/src/node.rs crates/dataflow-model/src/params.rs crates/dataflow-model/src/pipeline.rs

crates/dataflow-model/src/lib.rs:
crates/dataflow-model/src/analysis.rs:
crates/dataflow-model/src/arrival.rs:
crates/dataflow-model/src/error.rs:
crates/dataflow-model/src/gain.rs:
crates/dataflow-model/src/node.rs:
crates/dataflow-model/src/params.rs:
crates/dataflow-model/src/pipeline.rs:
