/root/repo/target/debug/deps/dataflow_model-1b1e12910e92ff1c.d: crates/dataflow-model/src/lib.rs crates/dataflow-model/src/analysis.rs crates/dataflow-model/src/arrival.rs crates/dataflow-model/src/error.rs crates/dataflow-model/src/gain.rs crates/dataflow-model/src/node.rs crates/dataflow-model/src/params.rs crates/dataflow-model/src/pipeline.rs

/root/repo/target/debug/deps/libdataflow_model-1b1e12910e92ff1c.rlib: crates/dataflow-model/src/lib.rs crates/dataflow-model/src/analysis.rs crates/dataflow-model/src/arrival.rs crates/dataflow-model/src/error.rs crates/dataflow-model/src/gain.rs crates/dataflow-model/src/node.rs crates/dataflow-model/src/params.rs crates/dataflow-model/src/pipeline.rs

/root/repo/target/debug/deps/libdataflow_model-1b1e12910e92ff1c.rmeta: crates/dataflow-model/src/lib.rs crates/dataflow-model/src/analysis.rs crates/dataflow-model/src/arrival.rs crates/dataflow-model/src/error.rs crates/dataflow-model/src/gain.rs crates/dataflow-model/src/node.rs crates/dataflow-model/src/params.rs crates/dataflow-model/src/pipeline.rs

crates/dataflow-model/src/lib.rs:
crates/dataflow-model/src/analysis.rs:
crates/dataflow-model/src/arrival.rs:
crates/dataflow-model/src/error.rs:
crates/dataflow-model/src/gain.rs:
crates/dataflow-model/src/node.rs:
crates/dataflow-model/src/params.rs:
crates/dataflow-model/src/pipeline.rs:
