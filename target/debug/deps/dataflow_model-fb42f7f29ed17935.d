/root/repo/target/debug/deps/dataflow_model-fb42f7f29ed17935.d: crates/dataflow-model/src/lib.rs crates/dataflow-model/src/analysis.rs crates/dataflow-model/src/arrival.rs crates/dataflow-model/src/error.rs crates/dataflow-model/src/gain.rs crates/dataflow-model/src/node.rs crates/dataflow-model/src/params.rs crates/dataflow-model/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libdataflow_model-fb42f7f29ed17935.rmeta: crates/dataflow-model/src/lib.rs crates/dataflow-model/src/analysis.rs crates/dataflow-model/src/arrival.rs crates/dataflow-model/src/error.rs crates/dataflow-model/src/gain.rs crates/dataflow-model/src/node.rs crates/dataflow-model/src/params.rs crates/dataflow-model/src/pipeline.rs Cargo.toml

crates/dataflow-model/src/lib.rs:
crates/dataflow-model/src/analysis.rs:
crates/dataflow-model/src/arrival.rs:
crates/dataflow-model/src/error.rs:
crates/dataflow-model/src/gain.rs:
crates/dataflow-model/src/node.rs:
crates/dataflow-model/src/params.rs:
crates/dataflow-model/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
