/root/repo/target/debug/deps/des-7b5e3f85be25e607.d: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

/root/repo/target/debug/deps/libdes-7b5e3f85be25e607.rlib: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

/root/repo/target/debug/deps/libdes-7b5e3f85be25e607.rmeta: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

crates/des/src/lib.rs:
crates/des/src/calendar.rs:
crates/des/src/clock.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/trace.rs:
