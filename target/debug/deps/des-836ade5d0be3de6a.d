/root/repo/target/debug/deps/des-836ade5d0be3de6a.d: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/obs.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdes-836ade5d0be3de6a.rmeta: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/obs.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs Cargo.toml

crates/des/src/lib.rs:
crates/des/src/calendar.rs:
crates/des/src/clock.rs:
crates/des/src/obs.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
