/root/repo/target/debug/deps/des-96411281091c1457.d: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/obs.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

/root/repo/target/debug/deps/libdes-96411281091c1457.rlib: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/obs.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

/root/repo/target/debug/deps/libdes-96411281091c1457.rmeta: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/obs.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

crates/des/src/lib.rs:
crates/des/src/calendar.rs:
crates/des/src/clock.rs:
crates/des/src/obs.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/trace.rs:
