/root/repo/target/debug/deps/des-bbf989c92b881cd5.d: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

/root/repo/target/debug/deps/des-bbf989c92b881cd5: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

crates/des/src/lib.rs:
crates/des/src/calendar.rs:
crates/des/src/clock.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/trace.rs:
