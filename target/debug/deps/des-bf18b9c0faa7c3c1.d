/root/repo/target/debug/deps/des-bf18b9c0faa7c3c1.d: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/obs.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

/root/repo/target/debug/deps/des-bf18b9c0faa7c3c1: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/obs.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

crates/des/src/lib.rs:
crates/des/src/calendar.rs:
crates/des/src/clock.rs:
crates/des/src/obs.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/trace.rs:
