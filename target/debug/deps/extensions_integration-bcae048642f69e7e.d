/root/repo/target/debug/deps/extensions_integration-bcae048642f69e7e.d: crates/rtsdf/../../tests/extensions_integration.rs

/root/repo/target/debug/deps/extensions_integration-bcae048642f69e7e: crates/rtsdf/../../tests/extensions_integration.rs

crates/rtsdf/../../tests/extensions_integration.rs:
