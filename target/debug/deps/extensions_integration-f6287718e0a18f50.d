/root/repo/target/debug/deps/extensions_integration-f6287718e0a18f50.d: crates/rtsdf/../../tests/extensions_integration.rs Cargo.toml

/root/repo/target/debug/deps/libextensions_integration-f6287718e0a18f50.rmeta: crates/rtsdf/../../tests/extensions_integration.rs Cargo.toml

crates/rtsdf/../../tests/extensions_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
