/root/repo/target/debug/deps/extensions_integration-f8a836fd2b43d35b.d: crates/rtsdf/../../tests/extensions_integration.rs

/root/repo/target/debug/deps/extensions_integration-f8a836fd2b43d35b: crates/rtsdf/../../tests/extensions_integration.rs

crates/rtsdf/../../tests/extensions_integration.rs:
