/root/repo/target/debug/deps/extensions_integration-fcdf442fc19c9734.d: crates/rtsdf/../../tests/extensions_integration.rs Cargo.toml

/root/repo/target/debug/deps/libextensions_integration-fcdf442fc19c9734.rmeta: crates/rtsdf/../../tests/extensions_integration.rs Cargo.toml

crates/rtsdf/../../tests/extensions_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
