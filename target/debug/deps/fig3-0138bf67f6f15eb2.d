/root/repo/target/debug/deps/fig3-0138bf67f6f15eb2.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-0138bf67f6f15eb2.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
