/root/repo/target/debug/deps/fig3-19b73a0a98cb8a8f.d: crates/bench/benches/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-19b73a0a98cb8a8f.rmeta: crates/bench/benches/fig3.rs Cargo.toml

crates/bench/benches/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
