/root/repo/target/debug/deps/fig3-260082e712d41ecd.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-260082e712d41ecd: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
