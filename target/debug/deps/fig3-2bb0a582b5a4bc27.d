/root/repo/target/debug/deps/fig3-2bb0a582b5a4bc27.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-2bb0a582b5a4bc27: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
