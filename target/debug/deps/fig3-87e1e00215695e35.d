/root/repo/target/debug/deps/fig3-87e1e00215695e35.d: crates/bench/benches/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-87e1e00215695e35.rmeta: crates/bench/benches/fig3.rs Cargo.toml

crates/bench/benches/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
