/root/repo/target/debug/deps/fig3-99f8874cf399df67.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-99f8874cf399df67: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
