/root/repo/target/debug/deps/fig3-b1d0d7ddefd7f4ba.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-b1d0d7ddefd7f4ba: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
