/root/repo/target/debug/deps/fig3-fb3ea1d5538f5e2f.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-fb3ea1d5538f5e2f.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
