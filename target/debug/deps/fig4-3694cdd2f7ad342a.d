/root/repo/target/debug/deps/fig4-3694cdd2f7ad342a.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-3694cdd2f7ad342a: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
