/root/repo/target/debug/deps/fig4-45c4f9cd29f5806c.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-45c4f9cd29f5806c.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
