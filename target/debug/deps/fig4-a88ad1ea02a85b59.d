/root/repo/target/debug/deps/fig4-a88ad1ea02a85b59.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-a88ad1ea02a85b59: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
