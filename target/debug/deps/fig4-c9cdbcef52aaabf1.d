/root/repo/target/debug/deps/fig4-c9cdbcef52aaabf1.d: crates/bench/benches/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-c9cdbcef52aaabf1.rmeta: crates/bench/benches/fig4.rs Cargo.toml

crates/bench/benches/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
