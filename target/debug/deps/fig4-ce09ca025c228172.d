/root/repo/target/debug/deps/fig4-ce09ca025c228172.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-ce09ca025c228172: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
