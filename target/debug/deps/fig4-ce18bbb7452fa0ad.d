/root/repo/target/debug/deps/fig4-ce18bbb7452fa0ad.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-ce18bbb7452fa0ad: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
