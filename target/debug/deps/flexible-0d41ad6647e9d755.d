/root/repo/target/debug/deps/flexible-0d41ad6647e9d755.d: crates/bench/src/bin/flexible.rs Cargo.toml

/root/repo/target/debug/deps/libflexible-0d41ad6647e9d755.rmeta: crates/bench/src/bin/flexible.rs Cargo.toml

crates/bench/src/bin/flexible.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
