/root/repo/target/debug/deps/flexible-2675b6ea915ae328.d: crates/bench/src/bin/flexible.rs Cargo.toml

/root/repo/target/debug/deps/libflexible-2675b6ea915ae328.rmeta: crates/bench/src/bin/flexible.rs Cargo.toml

crates/bench/src/bin/flexible.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
