/root/repo/target/debug/deps/flexible-52e0e900bc5ad88e.d: crates/bench/src/bin/flexible.rs

/root/repo/target/debug/deps/flexible-52e0e900bc5ad88e: crates/bench/src/bin/flexible.rs

crates/bench/src/bin/flexible.rs:
