/root/repo/target/debug/deps/flexible-53c57f610a21896b.d: crates/bench/src/bin/flexible.rs

/root/repo/target/debug/deps/flexible-53c57f610a21896b: crates/bench/src/bin/flexible.rs

crates/bench/src/bin/flexible.rs:
