/root/repo/target/debug/deps/flexible-58d365e07a808c8a.d: crates/bench/src/bin/flexible.rs

/root/repo/target/debug/deps/flexible-58d365e07a808c8a: crates/bench/src/bin/flexible.rs

crates/bench/src/bin/flexible.rs:
