/root/repo/target/debug/deps/flexible-6d8a9ee7acfb80fe.d: crates/bench/src/bin/flexible.rs Cargo.toml

/root/repo/target/debug/deps/libflexible-6d8a9ee7acfb80fe.rmeta: crates/bench/src/bin/flexible.rs Cargo.toml

crates/bench/src/bin/flexible.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
