/root/repo/target/debug/deps/flexible-abb6fbee8dce248d.d: crates/bench/src/bin/flexible.rs

/root/repo/target/debug/deps/flexible-abb6fbee8dce248d: crates/bench/src/bin/flexible.rs

crates/bench/src/bin/flexible.rs:
