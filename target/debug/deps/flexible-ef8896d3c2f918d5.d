/root/repo/target/debug/deps/flexible-ef8896d3c2f918d5.d: crates/bench/src/bin/flexible.rs Cargo.toml

/root/repo/target/debug/deps/libflexible-ef8896d3c2f918d5.rmeta: crates/bench/src/bin/flexible.rs Cargo.toml

crates/bench/src/bin/flexible.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
