/root/repo/target/debug/deps/frontier-1dad6d39f08e4de2.d: crates/bench/src/bin/frontier.rs

/root/repo/target/debug/deps/frontier-1dad6d39f08e4de2: crates/bench/src/bin/frontier.rs

crates/bench/src/bin/frontier.rs:
