/root/repo/target/debug/deps/frontier-4765f0768e77fcc1.d: crates/bench/src/bin/frontier.rs

/root/repo/target/debug/deps/frontier-4765f0768e77fcc1: crates/bench/src/bin/frontier.rs

crates/bench/src/bin/frontier.rs:
