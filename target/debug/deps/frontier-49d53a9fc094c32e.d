/root/repo/target/debug/deps/frontier-49d53a9fc094c32e.d: crates/bench/src/bin/frontier.rs Cargo.toml

/root/repo/target/debug/deps/libfrontier-49d53a9fc094c32e.rmeta: crates/bench/src/bin/frontier.rs Cargo.toml

crates/bench/src/bin/frontier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
