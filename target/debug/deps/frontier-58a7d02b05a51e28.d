/root/repo/target/debug/deps/frontier-58a7d02b05a51e28.d: crates/bench/src/bin/frontier.rs Cargo.toml

/root/repo/target/debug/deps/libfrontier-58a7d02b05a51e28.rmeta: crates/bench/src/bin/frontier.rs Cargo.toml

crates/bench/src/bin/frontier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
