/root/repo/target/debug/deps/frontier-7a54ba42f33012ee.d: crates/bench/src/bin/frontier.rs Cargo.toml

/root/repo/target/debug/deps/libfrontier-7a54ba42f33012ee.rmeta: crates/bench/src/bin/frontier.rs Cargo.toml

crates/bench/src/bin/frontier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
