/root/repo/target/debug/deps/frontier-8a5b9d1c0a530b0c.d: crates/bench/src/bin/frontier.rs

/root/repo/target/debug/deps/frontier-8a5b9d1c0a530b0c: crates/bench/src/bin/frontier.rs

crates/bench/src/bin/frontier.rs:
