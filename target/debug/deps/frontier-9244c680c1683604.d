/root/repo/target/debug/deps/frontier-9244c680c1683604.d: crates/bench/src/bin/frontier.rs Cargo.toml

/root/repo/target/debug/deps/libfrontier-9244c680c1683604.rmeta: crates/bench/src/bin/frontier.rs Cargo.toml

crates/bench/src/bin/frontier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
