/root/repo/target/debug/deps/frontier-ca2c72641f5a70af.d: crates/bench/src/bin/frontier.rs

/root/repo/target/debug/deps/frontier-ca2c72641f5a70af: crates/bench/src/bin/frontier.rs

crates/bench/src/bin/frontier.rs:
