/root/repo/target/debug/deps/obs_overhead-81111d7415c976f3.d: crates/pipeline-sim/benches/obs_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libobs_overhead-81111d7415c976f3.rmeta: crates/pipeline-sim/benches/obs_overhead.rs Cargo.toml

crates/pipeline-sim/benches/obs_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
