/root/repo/target/debug/deps/obs_overhead-b1806b6ddc02d2e6.d: crates/pipeline-sim/benches/obs_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libobs_overhead-b1806b6ddc02d2e6.rmeta: crates/pipeline-sim/benches/obs_overhead.rs Cargo.toml

crates/pipeline-sim/benches/obs_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
