/root/repo/target/debug/deps/obs_trace-06c955555eef0d3b.d: crates/obs-trace/src/lib.rs crates/obs-trace/src/chrome.rs crates/obs-trace/src/forensics.rs crates/obs-trace/src/span.rs

/root/repo/target/debug/deps/libobs_trace-06c955555eef0d3b.rlib: crates/obs-trace/src/lib.rs crates/obs-trace/src/chrome.rs crates/obs-trace/src/forensics.rs crates/obs-trace/src/span.rs

/root/repo/target/debug/deps/libobs_trace-06c955555eef0d3b.rmeta: crates/obs-trace/src/lib.rs crates/obs-trace/src/chrome.rs crates/obs-trace/src/forensics.rs crates/obs-trace/src/span.rs

crates/obs-trace/src/lib.rs:
crates/obs-trace/src/chrome.rs:
crates/obs-trace/src/forensics.rs:
crates/obs-trace/src/span.rs:
