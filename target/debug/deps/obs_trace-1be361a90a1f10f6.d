/root/repo/target/debug/deps/obs_trace-1be361a90a1f10f6.d: crates/obs-trace/src/lib.rs crates/obs-trace/src/chrome.rs crates/obs-trace/src/forensics.rs crates/obs-trace/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libobs_trace-1be361a90a1f10f6.rmeta: crates/obs-trace/src/lib.rs crates/obs-trace/src/chrome.rs crates/obs-trace/src/forensics.rs crates/obs-trace/src/span.rs Cargo.toml

crates/obs-trace/src/lib.rs:
crates/obs-trace/src/chrome.rs:
crates/obs-trace/src/forensics.rs:
crates/obs-trace/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
