/root/repo/target/debug/deps/obs_trace-9b608bb9aa57186e.d: crates/obs-trace/src/lib.rs crates/obs-trace/src/chrome.rs crates/obs-trace/src/forensics.rs crates/obs-trace/src/span.rs

/root/repo/target/debug/deps/obs_trace-9b608bb9aa57186e: crates/obs-trace/src/lib.rs crates/obs-trace/src/chrome.rs crates/obs-trace/src/forensics.rs crates/obs-trace/src/span.rs

crates/obs-trace/src/lib.rs:
crates/obs-trace/src/chrome.rs:
crates/obs-trace/src/forensics.rs:
crates/obs-trace/src/span.rs:
