/root/repo/target/debug/deps/paper_claims-0ffefd816b5b6e29.d: crates/rtsdf/../../tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-0ffefd816b5b6e29.rmeta: crates/rtsdf/../../tests/paper_claims.rs Cargo.toml

crates/rtsdf/../../tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
