/root/repo/target/debug/deps/paper_claims-147e92bd222cc92e.d: crates/rtsdf/../../tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-147e92bd222cc92e.rmeta: crates/rtsdf/../../tests/paper_claims.rs Cargo.toml

crates/rtsdf/../../tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
