/root/repo/target/debug/deps/paper_claims-59e5301aa3c1ebd4.d: crates/rtsdf/../../tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-59e5301aa3c1ebd4: crates/rtsdf/../../tests/paper_claims.rs

crates/rtsdf/../../tests/paper_claims.rs:
