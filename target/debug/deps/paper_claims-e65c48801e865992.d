/root/repo/target/debug/deps/paper_claims-e65c48801e865992.d: crates/rtsdf/../../tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-e65c48801e865992: crates/rtsdf/../../tests/paper_claims.rs

crates/rtsdf/../../tests/paper_claims.rs:
