/root/repo/target/debug/deps/pipeline_sim-0fc98808137554be.d: crates/pipeline-sim/src/lib.rs crates/pipeline-sim/src/calibration.rs crates/pipeline-sim/src/config.rs crates/pipeline-sim/src/enforced.rs crates/pipeline-sim/src/item.rs crates/pipeline-sim/src/metrics.rs crates/pipeline-sim/src/monolithic.rs crates/pipeline-sim/src/runner.rs crates/pipeline-sim/src/timeline.rs crates/pipeline-sim/src/validate.rs

/root/repo/target/debug/deps/libpipeline_sim-0fc98808137554be.rlib: crates/pipeline-sim/src/lib.rs crates/pipeline-sim/src/calibration.rs crates/pipeline-sim/src/config.rs crates/pipeline-sim/src/enforced.rs crates/pipeline-sim/src/item.rs crates/pipeline-sim/src/metrics.rs crates/pipeline-sim/src/monolithic.rs crates/pipeline-sim/src/runner.rs crates/pipeline-sim/src/timeline.rs crates/pipeline-sim/src/validate.rs

/root/repo/target/debug/deps/libpipeline_sim-0fc98808137554be.rmeta: crates/pipeline-sim/src/lib.rs crates/pipeline-sim/src/calibration.rs crates/pipeline-sim/src/config.rs crates/pipeline-sim/src/enforced.rs crates/pipeline-sim/src/item.rs crates/pipeline-sim/src/metrics.rs crates/pipeline-sim/src/monolithic.rs crates/pipeline-sim/src/runner.rs crates/pipeline-sim/src/timeline.rs crates/pipeline-sim/src/validate.rs

crates/pipeline-sim/src/lib.rs:
crates/pipeline-sim/src/calibration.rs:
crates/pipeline-sim/src/config.rs:
crates/pipeline-sim/src/enforced.rs:
crates/pipeline-sim/src/item.rs:
crates/pipeline-sim/src/metrics.rs:
crates/pipeline-sim/src/monolithic.rs:
crates/pipeline-sim/src/runner.rs:
crates/pipeline-sim/src/timeline.rs:
crates/pipeline-sim/src/validate.rs:
