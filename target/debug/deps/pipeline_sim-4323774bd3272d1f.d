/root/repo/target/debug/deps/pipeline_sim-4323774bd3272d1f.d: crates/pipeline-sim/src/lib.rs crates/pipeline-sim/src/calibration.rs crates/pipeline-sim/src/config.rs crates/pipeline-sim/src/enforced.rs crates/pipeline-sim/src/item.rs crates/pipeline-sim/src/metrics.rs crates/pipeline-sim/src/monolithic.rs crates/pipeline-sim/src/runner.rs crates/pipeline-sim/src/timeline.rs crates/pipeline-sim/src/validate.rs

/root/repo/target/debug/deps/pipeline_sim-4323774bd3272d1f: crates/pipeline-sim/src/lib.rs crates/pipeline-sim/src/calibration.rs crates/pipeline-sim/src/config.rs crates/pipeline-sim/src/enforced.rs crates/pipeline-sim/src/item.rs crates/pipeline-sim/src/metrics.rs crates/pipeline-sim/src/monolithic.rs crates/pipeline-sim/src/runner.rs crates/pipeline-sim/src/timeline.rs crates/pipeline-sim/src/validate.rs

crates/pipeline-sim/src/lib.rs:
crates/pipeline-sim/src/calibration.rs:
crates/pipeline-sim/src/config.rs:
crates/pipeline-sim/src/enforced.rs:
crates/pipeline-sim/src/item.rs:
crates/pipeline-sim/src/metrics.rs:
crates/pipeline-sim/src/monolithic.rs:
crates/pipeline-sim/src/runner.rs:
crates/pipeline-sim/src/timeline.rs:
crates/pipeline-sim/src/validate.rs:
