/root/repo/target/debug/deps/pipeline_sim-6048883a9a1b69f6.d: crates/pipeline-sim/src/lib.rs crates/pipeline-sim/src/calibration.rs crates/pipeline-sim/src/config.rs crates/pipeline-sim/src/enforced.rs crates/pipeline-sim/src/item.rs crates/pipeline-sim/src/metrics.rs crates/pipeline-sim/src/monolithic.rs crates/pipeline-sim/src/runner.rs crates/pipeline-sim/src/timeline.rs crates/pipeline-sim/src/validate.rs

/root/repo/target/debug/deps/pipeline_sim-6048883a9a1b69f6: crates/pipeline-sim/src/lib.rs crates/pipeline-sim/src/calibration.rs crates/pipeline-sim/src/config.rs crates/pipeline-sim/src/enforced.rs crates/pipeline-sim/src/item.rs crates/pipeline-sim/src/metrics.rs crates/pipeline-sim/src/monolithic.rs crates/pipeline-sim/src/runner.rs crates/pipeline-sim/src/timeline.rs crates/pipeline-sim/src/validate.rs

crates/pipeline-sim/src/lib.rs:
crates/pipeline-sim/src/calibration.rs:
crates/pipeline-sim/src/config.rs:
crates/pipeline-sim/src/enforced.rs:
crates/pipeline-sim/src/item.rs:
crates/pipeline-sim/src/metrics.rs:
crates/pipeline-sim/src/monolithic.rs:
crates/pipeline-sim/src/runner.rs:
crates/pipeline-sim/src/timeline.rs:
crates/pipeline-sim/src/validate.rs:
