/root/repo/target/debug/deps/pipeline_sim-9506995495b0617d.d: crates/pipeline-sim/src/lib.rs crates/pipeline-sim/src/calibration.rs crates/pipeline-sim/src/config.rs crates/pipeline-sim/src/enforced.rs crates/pipeline-sim/src/item.rs crates/pipeline-sim/src/metrics.rs crates/pipeline-sim/src/monolithic.rs crates/pipeline-sim/src/runner.rs crates/pipeline-sim/src/timeline.rs crates/pipeline-sim/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_sim-9506995495b0617d.rmeta: crates/pipeline-sim/src/lib.rs crates/pipeline-sim/src/calibration.rs crates/pipeline-sim/src/config.rs crates/pipeline-sim/src/enforced.rs crates/pipeline-sim/src/item.rs crates/pipeline-sim/src/metrics.rs crates/pipeline-sim/src/monolithic.rs crates/pipeline-sim/src/runner.rs crates/pipeline-sim/src/timeline.rs crates/pipeline-sim/src/validate.rs Cargo.toml

crates/pipeline-sim/src/lib.rs:
crates/pipeline-sim/src/calibration.rs:
crates/pipeline-sim/src/config.rs:
crates/pipeline-sim/src/enforced.rs:
crates/pipeline-sim/src/item.rs:
crates/pipeline-sim/src/metrics.rs:
crates/pipeline-sim/src/monolithic.rs:
crates/pipeline-sim/src/runner.rs:
crates/pipeline-sim/src/timeline.rs:
crates/pipeline-sim/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
