/root/repo/target/debug/deps/pipeline_sim-a875cba45fc776ab.d: crates/pipeline-sim/src/lib.rs crates/pipeline-sim/src/calibration.rs crates/pipeline-sim/src/config.rs crates/pipeline-sim/src/enforced.rs crates/pipeline-sim/src/item.rs crates/pipeline-sim/src/metrics.rs crates/pipeline-sim/src/monolithic.rs crates/pipeline-sim/src/runner.rs crates/pipeline-sim/src/timeline.rs crates/pipeline-sim/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_sim-a875cba45fc776ab.rmeta: crates/pipeline-sim/src/lib.rs crates/pipeline-sim/src/calibration.rs crates/pipeline-sim/src/config.rs crates/pipeline-sim/src/enforced.rs crates/pipeline-sim/src/item.rs crates/pipeline-sim/src/metrics.rs crates/pipeline-sim/src/monolithic.rs crates/pipeline-sim/src/runner.rs crates/pipeline-sim/src/timeline.rs crates/pipeline-sim/src/validate.rs Cargo.toml

crates/pipeline-sim/src/lib.rs:
crates/pipeline-sim/src/calibration.rs:
crates/pipeline-sim/src/config.rs:
crates/pipeline-sim/src/enforced.rs:
crates/pipeline-sim/src/item.rs:
crates/pipeline-sim/src/metrics.rs:
crates/pipeline-sim/src/monolithic.rs:
crates/pipeline-sim/src/runner.rs:
crates/pipeline-sim/src/timeline.rs:
crates/pipeline-sim/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
