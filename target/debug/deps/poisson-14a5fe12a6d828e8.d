/root/repo/target/debug/deps/poisson-14a5fe12a6d828e8.d: crates/bench/src/bin/poisson.rs Cargo.toml

/root/repo/target/debug/deps/libpoisson-14a5fe12a6d828e8.rmeta: crates/bench/src/bin/poisson.rs Cargo.toml

crates/bench/src/bin/poisson.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
