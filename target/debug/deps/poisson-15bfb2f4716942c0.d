/root/repo/target/debug/deps/poisson-15bfb2f4716942c0.d: crates/bench/src/bin/poisson.rs Cargo.toml

/root/repo/target/debug/deps/libpoisson-15bfb2f4716942c0.rmeta: crates/bench/src/bin/poisson.rs Cargo.toml

crates/bench/src/bin/poisson.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
