/root/repo/target/debug/deps/poisson-8ae25de654bf1dfb.d: crates/bench/src/bin/poisson.rs

/root/repo/target/debug/deps/poisson-8ae25de654bf1dfb: crates/bench/src/bin/poisson.rs

crates/bench/src/bin/poisson.rs:
