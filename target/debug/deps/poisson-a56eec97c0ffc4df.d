/root/repo/target/debug/deps/poisson-a56eec97c0ffc4df.d: crates/bench/src/bin/poisson.rs Cargo.toml

/root/repo/target/debug/deps/libpoisson-a56eec97c0ffc4df.rmeta: crates/bench/src/bin/poisson.rs Cargo.toml

crates/bench/src/bin/poisson.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
