/root/repo/target/debug/deps/poisson-cf3995440020f779.d: crates/bench/src/bin/poisson.rs

/root/repo/target/debug/deps/poisson-cf3995440020f779: crates/bench/src/bin/poisson.rs

crates/bench/src/bin/poisson.rs:
