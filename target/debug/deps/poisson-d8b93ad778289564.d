/root/repo/target/debug/deps/poisson-d8b93ad778289564.d: crates/bench/src/bin/poisson.rs

/root/repo/target/debug/deps/poisson-d8b93ad778289564: crates/bench/src/bin/poisson.rs

crates/bench/src/bin/poisson.rs:
