/root/repo/target/debug/deps/poisson-e4d9ae584aa37562.d: crates/bench/src/bin/poisson.rs Cargo.toml

/root/repo/target/debug/deps/libpoisson-e4d9ae584aa37562.rmeta: crates/bench/src/bin/poisson.rs Cargo.toml

crates/bench/src/bin/poisson.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
