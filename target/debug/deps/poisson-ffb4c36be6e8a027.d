/root/repo/target/debug/deps/poisson-ffb4c36be6e8a027.d: crates/bench/src/bin/poisson.rs

/root/repo/target/debug/deps/poisson-ffb4c36be6e8a027: crates/bench/src/bin/poisson.rs

crates/bench/src/bin/poisson.rs:
