/root/repo/target/debug/deps/proptests-02caec846b300d6e.d: crates/apps/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-02caec846b300d6e.rmeta: crates/apps/tests/proptests.rs Cargo.toml

crates/apps/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
