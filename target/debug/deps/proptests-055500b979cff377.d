/root/repo/target/debug/deps/proptests-055500b979cff377.d: crates/solver/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-055500b979cff377.rmeta: crates/solver/tests/proptests.rs Cargo.toml

crates/solver/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
