/root/repo/target/debug/deps/proptests-2164fe17b9271c23.d: crates/pipeline-sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-2164fe17b9271c23: crates/pipeline-sim/tests/proptests.rs

crates/pipeline-sim/tests/proptests.rs:
