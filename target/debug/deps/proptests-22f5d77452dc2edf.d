/root/repo/target/debug/deps/proptests-22f5d77452dc2edf.d: crates/apps/tests/proptests.rs

/root/repo/target/debug/deps/proptests-22f5d77452dc2edf: crates/apps/tests/proptests.rs

crates/apps/tests/proptests.rs:
