/root/repo/target/debug/deps/proptests-356ca5a2df9a0b98.d: crates/blast/tests/proptests.rs

/root/repo/target/debug/deps/proptests-356ca5a2df9a0b98: crates/blast/tests/proptests.rs

crates/blast/tests/proptests.rs:
