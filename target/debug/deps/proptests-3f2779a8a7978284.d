/root/repo/target/debug/deps/proptests-3f2779a8a7978284.d: crates/dataflow-model/tests/proptests.rs

/root/repo/target/debug/deps/proptests-3f2779a8a7978284: crates/dataflow-model/tests/proptests.rs

crates/dataflow-model/tests/proptests.rs:
