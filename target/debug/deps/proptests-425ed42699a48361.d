/root/repo/target/debug/deps/proptests-425ed42699a48361.d: crates/pipeline-sim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-425ed42699a48361.rmeta: crates/pipeline-sim/tests/proptests.rs Cargo.toml

crates/pipeline-sim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
