/root/repo/target/debug/deps/proptests-53ccc16c8377ecd9.d: crates/apps/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-53ccc16c8377ecd9.rmeta: crates/apps/tests/proptests.rs Cargo.toml

crates/apps/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
