/root/repo/target/debug/deps/proptests-56da155de397a1eb.d: crates/solver/tests/proptests.rs

/root/repo/target/debug/deps/proptests-56da155de397a1eb: crates/solver/tests/proptests.rs

crates/solver/tests/proptests.rs:
