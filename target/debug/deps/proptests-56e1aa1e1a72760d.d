/root/repo/target/debug/deps/proptests-56e1aa1e1a72760d.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-56e1aa1e1a72760d: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
