/root/repo/target/debug/deps/proptests-62ae33d52dd81440.d: crates/pipeline-sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-62ae33d52dd81440: crates/pipeline-sim/tests/proptests.rs

crates/pipeline-sim/tests/proptests.rs:
