/root/repo/target/debug/deps/proptests-667140e857d93aaa.d: crates/apps/tests/proptests.rs

/root/repo/target/debug/deps/proptests-667140e857d93aaa: crates/apps/tests/proptests.rs

crates/apps/tests/proptests.rs:
