/root/repo/target/debug/deps/proptests-6a7871954eff114c.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6a7871954eff114c: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
