/root/repo/target/debug/deps/proptests-6ecc707c9b6e35e4.d: crates/des/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6ecc707c9b6e35e4: crates/des/tests/proptests.rs

crates/des/tests/proptests.rs:
