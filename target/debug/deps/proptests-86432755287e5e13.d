/root/repo/target/debug/deps/proptests-86432755287e5e13.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-86432755287e5e13.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
