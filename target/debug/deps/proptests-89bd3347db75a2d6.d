/root/repo/target/debug/deps/proptests-89bd3347db75a2d6.d: crates/des/tests/proptests.rs

/root/repo/target/debug/deps/proptests-89bd3347db75a2d6: crates/des/tests/proptests.rs

crates/des/tests/proptests.rs:
