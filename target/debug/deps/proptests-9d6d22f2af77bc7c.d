/root/repo/target/debug/deps/proptests-9d6d22f2af77bc7c.d: crates/queueing/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9d6d22f2af77bc7c.rmeta: crates/queueing/tests/proptests.rs Cargo.toml

crates/queueing/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
