/root/repo/target/debug/deps/proptests-a0f847c0ce00d193.d: crates/simd-device/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a0f847c0ce00d193: crates/simd-device/tests/proptests.rs

crates/simd-device/tests/proptests.rs:
