/root/repo/target/debug/deps/proptests-b824bffe94aad889.d: crates/blast/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-b824bffe94aad889.rmeta: crates/blast/tests/proptests.rs Cargo.toml

crates/blast/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
