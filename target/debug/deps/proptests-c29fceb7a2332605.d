/root/repo/target/debug/deps/proptests-c29fceb7a2332605.d: crates/dataflow-model/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c29fceb7a2332605.rmeta: crates/dataflow-model/tests/proptests.rs Cargo.toml

crates/dataflow-model/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
