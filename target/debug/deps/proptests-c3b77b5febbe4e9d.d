/root/repo/target/debug/deps/proptests-c3b77b5febbe4e9d.d: crates/des/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c3b77b5febbe4e9d.rmeta: crates/des/tests/proptests.rs Cargo.toml

crates/des/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
