/root/repo/target/debug/deps/proptests-c77b4a88b10cf833.d: crates/queueing/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c77b4a88b10cf833: crates/queueing/tests/proptests.rs

crates/queueing/tests/proptests.rs:
