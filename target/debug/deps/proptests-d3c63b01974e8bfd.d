/root/repo/target/debug/deps/proptests-d3c63b01974e8bfd.d: crates/queueing/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d3c63b01974e8bfd.rmeta: crates/queueing/tests/proptests.rs Cargo.toml

crates/queueing/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
