/root/repo/target/debug/deps/proptests-e46958795926ad36.d: crates/pipeline-sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e46958795926ad36: crates/pipeline-sim/tests/proptests.rs

crates/pipeline-sim/tests/proptests.rs:
