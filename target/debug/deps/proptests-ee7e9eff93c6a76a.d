/root/repo/target/debug/deps/proptests-ee7e9eff93c6a76a.d: crates/pipeline-sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ee7e9eff93c6a76a: crates/pipeline-sim/tests/proptests.rs

crates/pipeline-sim/tests/proptests.rs:
