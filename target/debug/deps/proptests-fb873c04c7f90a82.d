/root/repo/target/debug/deps/proptests-fb873c04c7f90a82.d: crates/simd-device/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-fb873c04c7f90a82.rmeta: crates/simd-device/tests/proptests.rs Cargo.toml

crates/simd-device/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
