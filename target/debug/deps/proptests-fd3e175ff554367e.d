/root/repo/target/debug/deps/proptests-fd3e175ff554367e.d: crates/queueing/tests/proptests.rs

/root/repo/target/debug/deps/proptests-fd3e175ff554367e: crates/queueing/tests/proptests.rs

crates/queueing/tests/proptests.rs:
