/root/repo/target/debug/deps/proptests-ff32595cc67b9729.d: crates/pipeline-sim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-ff32595cc67b9729.rmeta: crates/pipeline-sim/tests/proptests.rs Cargo.toml

crates/pipeline-sim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
