/root/repo/target/debug/deps/queueing-00c44edce529cc26.d: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

/root/repo/target/debug/deps/libqueueing-00c44edce529cc26.rlib: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

/root/repo/target/debug/deps/libqueueing-00c44edce529cc26.rmeta: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

crates/queueing/src/lib.rs:
crates/queueing/src/bulk.rs:
crates/queueing/src/estimate.rs:
crates/queueing/src/pmf.rs:
