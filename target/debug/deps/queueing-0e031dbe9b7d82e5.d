/root/repo/target/debug/deps/queueing-0e031dbe9b7d82e5.d: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs Cargo.toml

/root/repo/target/debug/deps/libqueueing-0e031dbe9b7d82e5.rmeta: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs Cargo.toml

crates/queueing/src/lib.rs:
crates/queueing/src/bulk.rs:
crates/queueing/src/estimate.rs:
crates/queueing/src/pmf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
