/root/repo/target/debug/deps/queueing-22c0812d1ea25428.d: crates/bench/benches/queueing.rs Cargo.toml

/root/repo/target/debug/deps/libqueueing-22c0812d1ea25428.rmeta: crates/bench/benches/queueing.rs Cargo.toml

crates/bench/benches/queueing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
