/root/repo/target/debug/deps/queueing-3146d75d15a4fe93.d: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs Cargo.toml

/root/repo/target/debug/deps/libqueueing-3146d75d15a4fe93.rmeta: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs Cargo.toml

crates/queueing/src/lib.rs:
crates/queueing/src/bulk.rs:
crates/queueing/src/estimate.rs:
crates/queueing/src/pmf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
