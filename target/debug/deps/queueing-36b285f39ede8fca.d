/root/repo/target/debug/deps/queueing-36b285f39ede8fca.d: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

/root/repo/target/debug/deps/queueing-36b285f39ede8fca: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

crates/queueing/src/lib.rs:
crates/queueing/src/bulk.rs:
crates/queueing/src/estimate.rs:
crates/queueing/src/pmf.rs:
