/root/repo/target/debug/deps/queueing-849c6d8a3e8789cd.d: crates/bench/benches/queueing.rs Cargo.toml

/root/repo/target/debug/deps/libqueueing-849c6d8a3e8789cd.rmeta: crates/bench/benches/queueing.rs Cargo.toml

crates/bench/benches/queueing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
