/root/repo/target/debug/deps/queueing-d69969f3cbc63d25.d: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

/root/repo/target/debug/deps/libqueueing-d69969f3cbc63d25.rlib: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

/root/repo/target/debug/deps/libqueueing-d69969f3cbc63d25.rmeta: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

crates/queueing/src/lib.rs:
crates/queueing/src/bulk.rs:
crates/queueing/src/estimate.rs:
crates/queueing/src/pmf.rs:
