/root/repo/target/debug/deps/queueing-f0410ad999ec4501.d: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

/root/repo/target/debug/deps/queueing-f0410ad999ec4501: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

crates/queueing/src/lib.rs:
crates/queueing/src/bulk.rs:
crates/queueing/src/estimate.rs:
crates/queueing/src/pmf.rs:
