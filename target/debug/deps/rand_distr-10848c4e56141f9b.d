/root/repo/target/debug/deps/rand_distr-10848c4e56141f9b.d: shims/rand_distr/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_distr-10848c4e56141f9b.rmeta: shims/rand_distr/src/lib.rs Cargo.toml

shims/rand_distr/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
