/root/repo/target/debug/deps/rand_distr-5ffe26b1f82e46d7.d: shims/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-5ffe26b1f82e46d7.rlib: shims/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-5ffe26b1f82e46d7.rmeta: shims/rand_distr/src/lib.rs

shims/rand_distr/src/lib.rs:
