/root/repo/target/debug/deps/rand_distr-9e3417f654154740.d: shims/rand_distr/src/lib.rs

/root/repo/target/debug/deps/rand_distr-9e3417f654154740: shims/rand_distr/src/lib.rs

shims/rand_distr/src/lib.rs:
