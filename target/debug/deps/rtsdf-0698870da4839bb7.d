/root/repo/target/debug/deps/rtsdf-0698870da4839bb7.d: crates/rtsdf/src/lib.rs

/root/repo/target/debug/deps/librtsdf-0698870da4839bb7.rlib: crates/rtsdf/src/lib.rs

/root/repo/target/debug/deps/librtsdf-0698870da4839bb7.rmeta: crates/rtsdf/src/lib.rs

crates/rtsdf/src/lib.rs:
