/root/repo/target/debug/deps/rtsdf-4ff2acf64905a618.d: crates/rtsdf/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librtsdf-4ff2acf64905a618.rmeta: crates/rtsdf/src/lib.rs Cargo.toml

crates/rtsdf/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
