/root/repo/target/debug/deps/rtsdf-610df1bfaed9cf39.d: crates/rtsdf/src/lib.rs

/root/repo/target/debug/deps/librtsdf-610df1bfaed9cf39.rlib: crates/rtsdf/src/lib.rs

/root/repo/target/debug/deps/librtsdf-610df1bfaed9cf39.rmeta: crates/rtsdf/src/lib.rs

crates/rtsdf/src/lib.rs:
