/root/repo/target/debug/deps/rtsdf-ba97aa01f8529754.d: crates/rtsdf/src/lib.rs

/root/repo/target/debug/deps/librtsdf-ba97aa01f8529754.rlib: crates/rtsdf/src/lib.rs

/root/repo/target/debug/deps/librtsdf-ba97aa01f8529754.rmeta: crates/rtsdf/src/lib.rs

crates/rtsdf/src/lib.rs:
