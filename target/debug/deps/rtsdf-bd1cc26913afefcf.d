/root/repo/target/debug/deps/rtsdf-bd1cc26913afefcf.d: crates/rtsdf/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librtsdf-bd1cc26913afefcf.rmeta: crates/rtsdf/src/lib.rs Cargo.toml

crates/rtsdf/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
