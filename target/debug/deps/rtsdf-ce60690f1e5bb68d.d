/root/repo/target/debug/deps/rtsdf-ce60690f1e5bb68d.d: crates/rtsdf/src/lib.rs

/root/repo/target/debug/deps/rtsdf-ce60690f1e5bb68d: crates/rtsdf/src/lib.rs

crates/rtsdf/src/lib.rs:
