/root/repo/target/debug/deps/rtsdf-e7feded5be9a7efc.d: crates/rtsdf/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librtsdf-e7feded5be9a7efc.rmeta: crates/rtsdf/src/lib.rs Cargo.toml

crates/rtsdf/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
