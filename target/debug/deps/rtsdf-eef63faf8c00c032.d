/root/repo/target/debug/deps/rtsdf-eef63faf8c00c032.d: crates/rtsdf/src/lib.rs

/root/repo/target/debug/deps/librtsdf-eef63faf8c00c032.rlib: crates/rtsdf/src/lib.rs

/root/repo/target/debug/deps/librtsdf-eef63faf8c00c032.rmeta: crates/rtsdf/src/lib.rs

crates/rtsdf/src/lib.rs:
