/root/repo/target/debug/deps/rtsdf-f2eb59c765102e8a.d: crates/rtsdf/src/lib.rs

/root/repo/target/debug/deps/rtsdf-f2eb59c765102e8a: crates/rtsdf/src/lib.rs

crates/rtsdf/src/lib.rs:
