/root/repo/target/debug/deps/rtsdf_cli-175001749a2ae965.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rtsdf_cli-175001749a2ae965: crates/cli/src/main.rs

crates/cli/src/main.rs:
