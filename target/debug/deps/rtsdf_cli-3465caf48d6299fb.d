/root/repo/target/debug/deps/rtsdf_cli-3465caf48d6299fb.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/librtsdf_cli-3465caf48d6299fb.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/librtsdf_cli-3465caf48d6299fb.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
