/root/repo/target/debug/deps/rtsdf_cli-3e8f9910c6ce840d.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/librtsdf_cli-3e8f9910c6ce840d.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
