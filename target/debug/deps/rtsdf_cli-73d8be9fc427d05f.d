/root/repo/target/debug/deps/rtsdf_cli-73d8be9fc427d05f.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librtsdf_cli-73d8be9fc427d05f.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
