/root/repo/target/debug/deps/rtsdf_cli-7d4ffa888b389278.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librtsdf_cli-7d4ffa888b389278.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
