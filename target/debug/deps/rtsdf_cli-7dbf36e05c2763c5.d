/root/repo/target/debug/deps/rtsdf_cli-7dbf36e05c2763c5.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/librtsdf_cli-7dbf36e05c2763c5.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/librtsdf_cli-7dbf36e05c2763c5.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
