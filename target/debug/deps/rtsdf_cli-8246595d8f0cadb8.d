/root/repo/target/debug/deps/rtsdf_cli-8246595d8f0cadb8.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rtsdf_cli-8246595d8f0cadb8: crates/cli/src/main.rs

crates/cli/src/main.rs:
