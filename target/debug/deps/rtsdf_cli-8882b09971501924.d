/root/repo/target/debug/deps/rtsdf_cli-8882b09971501924.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rtsdf_cli-8882b09971501924: crates/cli/src/main.rs

crates/cli/src/main.rs:
