/root/repo/target/debug/deps/rtsdf_cli-8fc3ea057920ef02.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rtsdf_cli-8fc3ea057920ef02: crates/cli/src/main.rs

crates/cli/src/main.rs:
