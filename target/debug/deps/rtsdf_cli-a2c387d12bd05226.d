/root/repo/target/debug/deps/rtsdf_cli-a2c387d12bd05226.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/rtsdf_cli-a2c387d12bd05226: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
