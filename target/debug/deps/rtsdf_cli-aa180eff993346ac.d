/root/repo/target/debug/deps/rtsdf_cli-aa180eff993346ac.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librtsdf_cli-aa180eff993346ac.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
