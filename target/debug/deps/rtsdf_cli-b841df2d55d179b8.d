/root/repo/target/debug/deps/rtsdf_cli-b841df2d55d179b8.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/rtsdf_cli-b841df2d55d179b8: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
