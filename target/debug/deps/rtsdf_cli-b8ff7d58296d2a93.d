/root/repo/target/debug/deps/rtsdf_cli-b8ff7d58296d2a93.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librtsdf_cli-b8ff7d58296d2a93.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
