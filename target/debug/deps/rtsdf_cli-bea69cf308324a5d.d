/root/repo/target/debug/deps/rtsdf_cli-bea69cf308324a5d.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/rtsdf_cli-bea69cf308324a5d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
