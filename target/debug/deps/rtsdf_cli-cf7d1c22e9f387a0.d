/root/repo/target/debug/deps/rtsdf_cli-cf7d1c22e9f387a0.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rtsdf_cli-cf7d1c22e9f387a0: crates/cli/src/main.rs

crates/cli/src/main.rs:
