/root/repo/target/debug/deps/rtsdf_cli-d4ef8b46f6ab45d7.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/librtsdf_cli-d4ef8b46f6ab45d7.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
