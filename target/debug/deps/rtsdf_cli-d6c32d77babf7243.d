/root/repo/target/debug/deps/rtsdf_cli-d6c32d77babf7243.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/librtsdf_cli-d6c32d77babf7243.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/librtsdf_cli-d6c32d77babf7243.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
