/root/repo/target/debug/deps/rtsdf_cli-da8a7896bff4c742.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/librtsdf_cli-da8a7896bff4c742.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
