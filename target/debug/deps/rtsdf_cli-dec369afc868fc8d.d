/root/repo/target/debug/deps/rtsdf_cli-dec369afc868fc8d.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rtsdf_cli-dec369afc868fc8d: crates/cli/src/main.rs

crates/cli/src/main.rs:
