/root/repo/target/debug/deps/rtsdf_cli-e9ad264241eb2c40.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rtsdf_cli-e9ad264241eb2c40: crates/cli/src/main.rs

crates/cli/src/main.rs:
