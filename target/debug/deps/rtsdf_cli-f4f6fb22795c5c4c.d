/root/repo/target/debug/deps/rtsdf_cli-f4f6fb22795c5c4c.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/librtsdf_cli-f4f6fb22795c5c4c.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/librtsdf_cli-f4f6fb22795c5c4c.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
