/root/repo/target/debug/deps/rtsdf_cli-f8aaf7fb76276e56.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/librtsdf_cli-f8aaf7fb76276e56.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
