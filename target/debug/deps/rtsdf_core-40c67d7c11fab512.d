/root/repo/target/debug/deps/rtsdf_core-40c67d7c11fab512.d: crates/core/src/lib.rs crates/core/src/comparison.rs crates/core/src/coschedule.rs crates/core/src/enforced.rs crates/core/src/feasibility.rs crates/core/src/flexible.rs crates/core/src/frontier.rs crates/core/src/kkt.rs crates/core/src/monolithic.rs crates/core/src/schedule.rs crates/core/src/telemetry.rs

/root/repo/target/debug/deps/rtsdf_core-40c67d7c11fab512: crates/core/src/lib.rs crates/core/src/comparison.rs crates/core/src/coschedule.rs crates/core/src/enforced.rs crates/core/src/feasibility.rs crates/core/src/flexible.rs crates/core/src/frontier.rs crates/core/src/kkt.rs crates/core/src/monolithic.rs crates/core/src/schedule.rs crates/core/src/telemetry.rs

crates/core/src/lib.rs:
crates/core/src/comparison.rs:
crates/core/src/coschedule.rs:
crates/core/src/enforced.rs:
crates/core/src/feasibility.rs:
crates/core/src/flexible.rs:
crates/core/src/frontier.rs:
crates/core/src/kkt.rs:
crates/core/src/monolithic.rs:
crates/core/src/schedule.rs:
crates/core/src/telemetry.rs:
