/root/repo/target/debug/deps/rtsdf_core-49d2acc6a88bd6d9.d: crates/core/src/lib.rs crates/core/src/comparison.rs crates/core/src/coschedule.rs crates/core/src/enforced.rs crates/core/src/feasibility.rs crates/core/src/flexible.rs crates/core/src/frontier.rs crates/core/src/kkt.rs crates/core/src/monolithic.rs crates/core/src/schedule.rs crates/core/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/librtsdf_core-49d2acc6a88bd6d9.rmeta: crates/core/src/lib.rs crates/core/src/comparison.rs crates/core/src/coschedule.rs crates/core/src/enforced.rs crates/core/src/feasibility.rs crates/core/src/flexible.rs crates/core/src/frontier.rs crates/core/src/kkt.rs crates/core/src/monolithic.rs crates/core/src/schedule.rs crates/core/src/telemetry.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/comparison.rs:
crates/core/src/coschedule.rs:
crates/core/src/enforced.rs:
crates/core/src/feasibility.rs:
crates/core/src/flexible.rs:
crates/core/src/frontier.rs:
crates/core/src/kkt.rs:
crates/core/src/monolithic.rs:
crates/core/src/schedule.rs:
crates/core/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
