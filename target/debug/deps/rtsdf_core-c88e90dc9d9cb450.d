/root/repo/target/debug/deps/rtsdf_core-c88e90dc9d9cb450.d: crates/core/src/lib.rs crates/core/src/comparison.rs crates/core/src/coschedule.rs crates/core/src/enforced.rs crates/core/src/feasibility.rs crates/core/src/flexible.rs crates/core/src/frontier.rs crates/core/src/kkt.rs crates/core/src/monolithic.rs crates/core/src/schedule.rs crates/core/src/telemetry.rs

/root/repo/target/debug/deps/librtsdf_core-c88e90dc9d9cb450.rlib: crates/core/src/lib.rs crates/core/src/comparison.rs crates/core/src/coschedule.rs crates/core/src/enforced.rs crates/core/src/feasibility.rs crates/core/src/flexible.rs crates/core/src/frontier.rs crates/core/src/kkt.rs crates/core/src/monolithic.rs crates/core/src/schedule.rs crates/core/src/telemetry.rs

/root/repo/target/debug/deps/librtsdf_core-c88e90dc9d9cb450.rmeta: crates/core/src/lib.rs crates/core/src/comparison.rs crates/core/src/coschedule.rs crates/core/src/enforced.rs crates/core/src/feasibility.rs crates/core/src/flexible.rs crates/core/src/frontier.rs crates/core/src/kkt.rs crates/core/src/monolithic.rs crates/core/src/schedule.rs crates/core/src/telemetry.rs

crates/core/src/lib.rs:
crates/core/src/comparison.rs:
crates/core/src/coschedule.rs:
crates/core/src/enforced.rs:
crates/core/src/feasibility.rs:
crates/core/src/flexible.rs:
crates/core/src/frontier.rs:
crates/core/src/kkt.rs:
crates/core/src/monolithic.rs:
crates/core/src/schedule.rs:
crates/core/src/telemetry.rs:
