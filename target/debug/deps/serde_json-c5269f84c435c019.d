/root/repo/target/debug/deps/serde_json-c5269f84c435c019.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c5269f84c435c019.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c5269f84c435c019.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
