/root/repo/target/debug/deps/simd_device-85c67f2df8629c6f.d: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs

/root/repo/target/debug/deps/libsimd_device-85c67f2df8629c6f.rlib: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs

/root/repo/target/debug/deps/libsimd_device-85c67f2df8629c6f.rmeta: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs

crates/simd-device/src/lib.rs:
crates/simd-device/src/batch.rs:
crates/simd-device/src/machine.rs:
crates/simd-device/src/occupancy.rs:
crates/simd-device/src/share.rs:
