/root/repo/target/debug/deps/simd_device-ba241ff51d69e542.d: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs Cargo.toml

/root/repo/target/debug/deps/libsimd_device-ba241ff51d69e542.rmeta: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs Cargo.toml

crates/simd-device/src/lib.rs:
crates/simd-device/src/batch.rs:
crates/simd-device/src/machine.rs:
crates/simd-device/src/occupancy.rs:
crates/simd-device/src/share.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
