/root/repo/target/debug/deps/simd_device-e1ec2b25b4fef9ec.d: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs

/root/repo/target/debug/deps/simd_device-e1ec2b25b4fef9ec: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs

crates/simd-device/src/lib.rs:
crates/simd-device/src/batch.rs:
crates/simd-device/src/machine.rs:
crates/simd-device/src/occupancy.rs:
crates/simd-device/src/share.rs:
