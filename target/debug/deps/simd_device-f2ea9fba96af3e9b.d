/root/repo/target/debug/deps/simd_device-f2ea9fba96af3e9b.d: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs

/root/repo/target/debug/deps/libsimd_device-f2ea9fba96af3e9b.rlib: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs

/root/repo/target/debug/deps/libsimd_device-f2ea9fba96af3e9b.rmeta: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs

crates/simd-device/src/lib.rs:
crates/simd-device/src/batch.rs:
crates/simd-device/src/machine.rs:
crates/simd-device/src/occupancy.rs:
crates/simd-device/src/share.rs:
