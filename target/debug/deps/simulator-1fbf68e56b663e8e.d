/root/repo/target/debug/deps/simulator-1fbf68e56b663e8e.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-1fbf68e56b663e8e.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
