/root/repo/target/debug/deps/simulator-8e5d102866feb404.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-8e5d102866feb404.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
