/root/repo/target/debug/deps/simulator_integration-0529480f706942ec.d: crates/rtsdf/../../tests/simulator_integration.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_integration-0529480f706942ec.rmeta: crates/rtsdf/../../tests/simulator_integration.rs Cargo.toml

crates/rtsdf/../../tests/simulator_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
