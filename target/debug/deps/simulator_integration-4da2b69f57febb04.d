/root/repo/target/debug/deps/simulator_integration-4da2b69f57febb04.d: crates/rtsdf/../../tests/simulator_integration.rs

/root/repo/target/debug/deps/simulator_integration-4da2b69f57febb04: crates/rtsdf/../../tests/simulator_integration.rs

crates/rtsdf/../../tests/simulator_integration.rs:
