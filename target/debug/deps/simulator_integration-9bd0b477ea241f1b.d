/root/repo/target/debug/deps/simulator_integration-9bd0b477ea241f1b.d: crates/rtsdf/../../tests/simulator_integration.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_integration-9bd0b477ea241f1b.rmeta: crates/rtsdf/../../tests/simulator_integration.rs Cargo.toml

crates/rtsdf/../../tests/simulator_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
