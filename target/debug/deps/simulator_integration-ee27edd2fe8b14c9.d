/root/repo/target/debug/deps/simulator_integration-ee27edd2fe8b14c9.d: crates/rtsdf/../../tests/simulator_integration.rs

/root/repo/target/debug/deps/simulator_integration-ee27edd2fe8b14c9: crates/rtsdf/../../tests/simulator_integration.rs

crates/rtsdf/../../tests/simulator_integration.rs:
