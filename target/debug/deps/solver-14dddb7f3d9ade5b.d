/root/repo/target/debug/deps/solver-14dddb7f3d9ade5b.d: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs

/root/repo/target/debug/deps/libsolver-14dddb7f3d9ade5b.rlib: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs

/root/repo/target/debug/deps/libsolver-14dddb7f3d9ade5b.rmeta: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs

crates/solver/src/lib.rs:
crates/solver/src/bnb.rs:
crates/solver/src/convex.rs:
crates/solver/src/integer.rs:
crates/solver/src/linalg.rs:
crates/solver/src/linear.rs:
crates/solver/src/scalar.rs:
