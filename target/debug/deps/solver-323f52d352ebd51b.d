/root/repo/target/debug/deps/solver-323f52d352ebd51b.d: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs Cargo.toml

/root/repo/target/debug/deps/libsolver-323f52d352ebd51b.rmeta: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs Cargo.toml

crates/solver/src/lib.rs:
crates/solver/src/bnb.rs:
crates/solver/src/convex.rs:
crates/solver/src/integer.rs:
crates/solver/src/linalg.rs:
crates/solver/src/linear.rs:
crates/solver/src/scalar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
