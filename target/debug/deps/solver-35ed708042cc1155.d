/root/repo/target/debug/deps/solver-35ed708042cc1155.d: crates/bench/benches/solver.rs Cargo.toml

/root/repo/target/debug/deps/libsolver-35ed708042cc1155.rmeta: crates/bench/benches/solver.rs Cargo.toml

crates/bench/benches/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
