/root/repo/target/debug/deps/solver-547501b63d1dc10c.d: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs

/root/repo/target/debug/deps/libsolver-547501b63d1dc10c.rlib: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs

/root/repo/target/debug/deps/libsolver-547501b63d1dc10c.rmeta: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs

crates/solver/src/lib.rs:
crates/solver/src/bnb.rs:
crates/solver/src/convex.rs:
crates/solver/src/integer.rs:
crates/solver/src/linalg.rs:
crates/solver/src/linear.rs:
crates/solver/src/scalar.rs:
