/root/repo/target/debug/deps/solver-e15b0200b04fdcb8.d: crates/bench/benches/solver.rs Cargo.toml

/root/repo/target/debug/deps/libsolver-e15b0200b04fdcb8.rmeta: crates/bench/benches/solver.rs Cargo.toml

crates/bench/benches/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
