/root/repo/target/debug/deps/solver-e81fd723084a2324.d: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs

/root/repo/target/debug/deps/solver-e81fd723084a2324: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs

crates/solver/src/lib.rs:
crates/solver/src/bnb.rs:
crates/solver/src/convex.rs:
crates/solver/src/integer.rs:
crates/solver/src/linalg.rs:
crates/solver/src/linear.rs:
crates/solver/src/scalar.rs:
