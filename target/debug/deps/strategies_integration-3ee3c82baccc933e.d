/root/repo/target/debug/deps/strategies_integration-3ee3c82baccc933e.d: crates/rtsdf/../../tests/strategies_integration.rs Cargo.toml

/root/repo/target/debug/deps/libstrategies_integration-3ee3c82baccc933e.rmeta: crates/rtsdf/../../tests/strategies_integration.rs Cargo.toml

crates/rtsdf/../../tests/strategies_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
