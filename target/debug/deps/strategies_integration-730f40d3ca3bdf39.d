/root/repo/target/debug/deps/strategies_integration-730f40d3ca3bdf39.d: crates/rtsdf/../../tests/strategies_integration.rs Cargo.toml

/root/repo/target/debug/deps/libstrategies_integration-730f40d3ca3bdf39.rmeta: crates/rtsdf/../../tests/strategies_integration.rs Cargo.toml

crates/rtsdf/../../tests/strategies_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
