/root/repo/target/debug/deps/strategies_integration-8957d4b97c57e334.d: crates/rtsdf/../../tests/strategies_integration.rs

/root/repo/target/debug/deps/strategies_integration-8957d4b97c57e334: crates/rtsdf/../../tests/strategies_integration.rs

crates/rtsdf/../../tests/strategies_integration.rs:
