/root/repo/target/debug/deps/strategies_integration-def9f16ad2728497.d: crates/rtsdf/../../tests/strategies_integration.rs

/root/repo/target/debug/deps/strategies_integration-def9f16ad2728497: crates/rtsdf/../../tests/strategies_integration.rs

crates/rtsdf/../../tests/strategies_integration.rs:
