/root/repo/target/debug/deps/table1-000ad86f53e21135.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-000ad86f53e21135.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
