/root/repo/target/debug/deps/table1-3300784d59ed7a64.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3300784d59ed7a64: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
