/root/repo/target/debug/deps/table1-69a80eeebb444fbf.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-69a80eeebb444fbf: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
