/root/repo/target/debug/deps/table1-978be5dbe7579b9d.d: crates/bench/benches/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-978be5dbe7579b9d.rmeta: crates/bench/benches/table1.rs Cargo.toml

crates/bench/benches/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
