/root/repo/target/debug/deps/table1-9afc7e1d3e11cacc.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-9afc7e1d3e11cacc.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
