/root/repo/target/debug/deps/table1-c0f0819692659ba8.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c0f0819692659ba8: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
