/root/repo/target/debug/deps/table1-f171e0531dd6596c.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f171e0531dd6596c: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
