/root/repo/target/debug/examples/blast_realtime-5d7828073acec47e.d: crates/rtsdf/../../examples/blast_realtime.rs Cargo.toml

/root/repo/target/debug/examples/libblast_realtime-5d7828073acec47e.rmeta: crates/rtsdf/../../examples/blast_realtime.rs Cargo.toml

crates/rtsdf/../../examples/blast_realtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
