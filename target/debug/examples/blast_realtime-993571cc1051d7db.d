/root/repo/target/debug/examples/blast_realtime-993571cc1051d7db.d: crates/rtsdf/../../examples/blast_realtime.rs

/root/repo/target/debug/examples/blast_realtime-993571cc1051d7db: crates/rtsdf/../../examples/blast_realtime.rs

crates/rtsdf/../../examples/blast_realtime.rs:
