/root/repo/target/debug/examples/blast_realtime-99b94b6df779fc85.d: crates/rtsdf/../../examples/blast_realtime.rs Cargo.toml

/root/repo/target/debug/examples/libblast_realtime-99b94b6df779fc85.rmeta: crates/rtsdf/../../examples/blast_realtime.rs Cargo.toml

crates/rtsdf/../../examples/blast_realtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
