/root/repo/target/debug/examples/blast_realtime-b0796f2fbe5263f1.d: crates/rtsdf/../../examples/blast_realtime.rs

/root/repo/target/debug/examples/blast_realtime-b0796f2fbe5263f1: crates/rtsdf/../../examples/blast_realtime.rs

crates/rtsdf/../../examples/blast_realtime.rs:
