/root/repo/target/debug/examples/flexible_shares-30fe0d1bd574249c.d: crates/rtsdf/../../examples/flexible_shares.rs

/root/repo/target/debug/examples/flexible_shares-30fe0d1bd574249c: crates/rtsdf/../../examples/flexible_shares.rs

crates/rtsdf/../../examples/flexible_shares.rs:
