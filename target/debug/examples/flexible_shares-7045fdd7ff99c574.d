/root/repo/target/debug/examples/flexible_shares-7045fdd7ff99c574.d: crates/rtsdf/../../examples/flexible_shares.rs Cargo.toml

/root/repo/target/debug/examples/libflexible_shares-7045fdd7ff99c574.rmeta: crates/rtsdf/../../examples/flexible_shares.rs Cargo.toml

crates/rtsdf/../../examples/flexible_shares.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
