/root/repo/target/debug/examples/flexible_shares-9a8f077bca3366f7.d: crates/rtsdf/../../examples/flexible_shares.rs Cargo.toml

/root/repo/target/debug/examples/libflexible_shares-9a8f077bca3366f7.rmeta: crates/rtsdf/../../examples/flexible_shares.rs Cargo.toml

crates/rtsdf/../../examples/flexible_shares.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
