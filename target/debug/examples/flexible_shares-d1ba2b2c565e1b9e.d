/root/repo/target/debug/examples/flexible_shares-d1ba2b2c565e1b9e.d: crates/rtsdf/../../examples/flexible_shares.rs

/root/repo/target/debug/examples/flexible_shares-d1ba2b2c565e1b9e: crates/rtsdf/../../examples/flexible_shares.rs

crates/rtsdf/../../examples/flexible_shares.rs:
