/root/repo/target/debug/examples/gamma_ray_burst-2bb7ef470a51ca0b.d: crates/rtsdf/../../examples/gamma_ray_burst.rs Cargo.toml

/root/repo/target/debug/examples/libgamma_ray_burst-2bb7ef470a51ca0b.rmeta: crates/rtsdf/../../examples/gamma_ray_burst.rs Cargo.toml

crates/rtsdf/../../examples/gamma_ray_burst.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
