/root/repo/target/debug/examples/gamma_ray_burst-a3d6ac8d8a824021.d: crates/rtsdf/../../examples/gamma_ray_burst.rs

/root/repo/target/debug/examples/gamma_ray_burst-a3d6ac8d8a824021: crates/rtsdf/../../examples/gamma_ray_burst.rs

crates/rtsdf/../../examples/gamma_ray_burst.rs:
