/root/repo/target/debug/examples/gamma_ray_burst-c9125b9a40461748.d: crates/rtsdf/../../examples/gamma_ray_burst.rs

/root/repo/target/debug/examples/gamma_ray_burst-c9125b9a40461748: crates/rtsdf/../../examples/gamma_ray_burst.rs

crates/rtsdf/../../examples/gamma_ray_burst.rs:
