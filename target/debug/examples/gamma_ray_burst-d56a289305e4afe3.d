/root/repo/target/debug/examples/gamma_ray_burst-d56a289305e4afe3.d: crates/rtsdf/../../examples/gamma_ray_burst.rs Cargo.toml

/root/repo/target/debug/examples/libgamma_ray_burst-d56a289305e4afe3.rmeta: crates/rtsdf/../../examples/gamma_ray_burst.rs Cargo.toml

crates/rtsdf/../../examples/gamma_ray_burst.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
