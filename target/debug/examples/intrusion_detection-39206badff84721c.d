/root/repo/target/debug/examples/intrusion_detection-39206badff84721c.d: crates/rtsdf/../../examples/intrusion_detection.rs

/root/repo/target/debug/examples/intrusion_detection-39206badff84721c: crates/rtsdf/../../examples/intrusion_detection.rs

crates/rtsdf/../../examples/intrusion_detection.rs:
