/root/repo/target/debug/examples/intrusion_detection-64a73fb843c43232.d: crates/rtsdf/../../examples/intrusion_detection.rs Cargo.toml

/root/repo/target/debug/examples/libintrusion_detection-64a73fb843c43232.rmeta: crates/rtsdf/../../examples/intrusion_detection.rs Cargo.toml

crates/rtsdf/../../examples/intrusion_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
