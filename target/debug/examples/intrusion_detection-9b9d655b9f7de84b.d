/root/repo/target/debug/examples/intrusion_detection-9b9d655b9f7de84b.d: crates/rtsdf/../../examples/intrusion_detection.rs Cargo.toml

/root/repo/target/debug/examples/libintrusion_detection-9b9d655b9f7de84b.rmeta: crates/rtsdf/../../examples/intrusion_detection.rs Cargo.toml

crates/rtsdf/../../examples/intrusion_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
