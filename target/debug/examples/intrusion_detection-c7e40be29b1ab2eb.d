/root/repo/target/debug/examples/intrusion_detection-c7e40be29b1ab2eb.d: crates/rtsdf/../../examples/intrusion_detection.rs

/root/repo/target/debug/examples/intrusion_detection-c7e40be29b1ab2eb: crates/rtsdf/../../examples/intrusion_detection.rs

crates/rtsdf/../../examples/intrusion_detection.rs:
