/root/repo/target/debug/examples/quickstart-36265e90969b0ddc.d: crates/rtsdf/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-36265e90969b0ddc.rmeta: crates/rtsdf/../../examples/quickstart.rs Cargo.toml

crates/rtsdf/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
