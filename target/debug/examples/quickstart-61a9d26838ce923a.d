/root/repo/target/debug/examples/quickstart-61a9d26838ce923a.d: crates/rtsdf/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-61a9d26838ce923a: crates/rtsdf/../../examples/quickstart.rs

crates/rtsdf/../../examples/quickstart.rs:
