/root/repo/target/debug/examples/quickstart-6b940d1dcdeec535.d: crates/rtsdf/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-6b940d1dcdeec535.rmeta: crates/rtsdf/../../examples/quickstart.rs Cargo.toml

crates/rtsdf/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
