/root/repo/target/debug/examples/quickstart-d385466de911d778.d: crates/rtsdf/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d385466de911d778: crates/rtsdf/../../examples/quickstart.rs

crates/rtsdf/../../examples/quickstart.rs:
