/root/repo/target/debug/librand_distr.rlib: /root/repo/shims/rand/src/lib.rs /root/repo/shims/rand_distr/src/lib.rs
