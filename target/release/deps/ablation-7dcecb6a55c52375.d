/root/repo/target/release/deps/ablation-7dcecb6a55c52375.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-7dcecb6a55c52375: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
