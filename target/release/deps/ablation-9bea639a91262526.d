/root/repo/target/release/deps/ablation-9bea639a91262526.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-9bea639a91262526: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
