/root/repo/target/release/deps/ablation-d8848742c9cb58d3.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-d8848742c9cb58d3: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
