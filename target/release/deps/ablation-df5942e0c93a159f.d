/root/repo/target/release/deps/ablation-df5942e0c93a159f.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-df5942e0c93a159f: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
