/root/repo/target/release/deps/agreement-9bdd190c2a5dfde8.d: crates/bench/src/bin/agreement.rs

/root/repo/target/release/deps/agreement-9bdd190c2a5dfde8: crates/bench/src/bin/agreement.rs

crates/bench/src/bin/agreement.rs:
