/root/repo/target/release/deps/agreement-a2a4bf03ff1d18ba.d: crates/bench/src/bin/agreement.rs

/root/repo/target/release/deps/agreement-a2a4bf03ff1d18ba: crates/bench/src/bin/agreement.rs

crates/bench/src/bin/agreement.rs:
