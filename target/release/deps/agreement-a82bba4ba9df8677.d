/root/repo/target/release/deps/agreement-a82bba4ba9df8677.d: crates/bench/src/bin/agreement.rs

/root/repo/target/release/deps/agreement-a82bba4ba9df8677: crates/bench/src/bin/agreement.rs

crates/bench/src/bin/agreement.rs:
