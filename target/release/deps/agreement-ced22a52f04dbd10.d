/root/repo/target/release/deps/agreement-ced22a52f04dbd10.d: crates/bench/src/bin/agreement.rs

/root/repo/target/release/deps/agreement-ced22a52f04dbd10: crates/bench/src/bin/agreement.rs

crates/bench/src/bin/agreement.rs:
