/root/repo/target/release/deps/apps-a3eeecd4c244b7d3.d: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/kernels.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs

/root/repo/target/release/deps/apps-a3eeecd4c244b7d3: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/kernels.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs

crates/apps/src/lib.rs:
crates/apps/src/cascade.rs:
crates/apps/src/kernels.rs:
crates/apps/src/gamma.rs:
crates/apps/src/ids.rs:
