/root/repo/target/release/deps/apps-c086f5b047dfad81.d: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs

/root/repo/target/release/deps/libapps-c086f5b047dfad81.rlib: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs

/root/repo/target/release/deps/libapps-c086f5b047dfad81.rmeta: crates/apps/src/lib.rs crates/apps/src/cascade.rs crates/apps/src/gamma.rs crates/apps/src/ids.rs crates/apps/src/kernels.rs

crates/apps/src/lib.rs:
crates/apps/src/cascade.rs:
crates/apps/src/gamma.rs:
crates/apps/src/ids.rs:
crates/apps/src/kernels.rs:
