/root/repo/target/release/deps/apps_integration-1d888c2311fb8c61.d: crates/rtsdf/../../tests/apps_integration.rs

/root/repo/target/release/deps/apps_integration-1d888c2311fb8c61: crates/rtsdf/../../tests/apps_integration.rs

crates/rtsdf/../../tests/apps_integration.rs:
