/root/repo/target/release/deps/apriori_b-10661d1dabc199d8.d: crates/bench/src/bin/apriori_b.rs

/root/repo/target/release/deps/apriori_b-10661d1dabc199d8: crates/bench/src/bin/apriori_b.rs

crates/bench/src/bin/apriori_b.rs:
