/root/repo/target/release/deps/apriori_b-23e78653dae58249.d: crates/bench/src/bin/apriori_b.rs

/root/repo/target/release/deps/apriori_b-23e78653dae58249: crates/bench/src/bin/apriori_b.rs

crates/bench/src/bin/apriori_b.rs:
