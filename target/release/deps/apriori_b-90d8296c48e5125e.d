/root/repo/target/release/deps/apriori_b-90d8296c48e5125e.d: crates/bench/src/bin/apriori_b.rs

/root/repo/target/release/deps/apriori_b-90d8296c48e5125e: crates/bench/src/bin/apriori_b.rs

crates/bench/src/bin/apriori_b.rs:
