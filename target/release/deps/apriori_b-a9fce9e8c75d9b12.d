/root/repo/target/release/deps/apriori_b-a9fce9e8c75d9b12.d: crates/bench/src/bin/apriori_b.rs

/root/repo/target/release/deps/apriori_b-a9fce9e8c75d9b12: crates/bench/src/bin/apriori_b.rs

crates/bench/src/bin/apriori_b.rs:
