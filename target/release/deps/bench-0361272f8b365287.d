/root/repo/target/release/deps/bench-0361272f8b365287.d: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs

/root/repo/target/release/deps/libbench-0361272f8b365287.rlib: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs

/root/repo/target/release/deps/libbench-0361272f8b365287.rmeta: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
crates/bench/src/manifest.rs:
