/root/repo/target/release/deps/bench-48ed840c8f325eb0.d: crates/bench/src/lib.rs crates/bench/src/manifest.rs

/root/repo/target/release/deps/libbench-48ed840c8f325eb0.rlib: crates/bench/src/lib.rs crates/bench/src/manifest.rs

/root/repo/target/release/deps/libbench-48ed840c8f325eb0.rmeta: crates/bench/src/lib.rs crates/bench/src/manifest.rs

crates/bench/src/lib.rs:
crates/bench/src/manifest.rs:
