/root/repo/target/release/deps/bench-a9da91a5daec2b65.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/bench-a9da91a5daec2b65: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
