/root/repo/target/release/deps/bench-f8c6f81904ff0bcd.d: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs

/root/repo/target/release/deps/libbench-f8c6f81904ff0bcd.rlib: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs

/root/repo/target/release/deps/libbench-f8c6f81904ff0bcd.rmeta: crates/bench/src/lib.rs crates/bench/src/diff.rs crates/bench/src/manifest.rs

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
crates/bench/src/manifest.rs:
