/root/repo/target/release/deps/bench_diff-49b1825f70bde38e.d: crates/bench/src/bin/bench_diff.rs

/root/repo/target/release/deps/bench_diff-49b1825f70bde38e: crates/bench/src/bin/bench_diff.rs

crates/bench/src/bin/bench_diff.rs:
