/root/repo/target/release/deps/bench_diff-c5a072acbe0bc0e0.d: crates/bench/src/bin/bench_diff.rs

/root/repo/target/release/deps/bench_diff-c5a072acbe0bc0e0: crates/bench/src/bin/bench_diff.rs

crates/bench/src/bin/bench_diff.rs:
