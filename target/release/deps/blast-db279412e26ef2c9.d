/root/repo/target/release/deps/blast-db279412e26ef2c9.d: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs

/root/repo/target/release/deps/libblast-db279412e26ef2c9.rlib: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs

/root/repo/target/release/deps/libblast-db279412e26ef2c9.rmeta: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs

crates/blast/src/lib.rs:
crates/blast/src/index.rs:
crates/blast/src/kernels.rs:
crates/blast/src/pipeline.rs:
crates/blast/src/sequence.rs:
crates/blast/src/stages.rs:
