/root/repo/target/release/deps/blast-f22ea7913d585eb0.d: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs

/root/repo/target/release/deps/blast-f22ea7913d585eb0: crates/blast/src/lib.rs crates/blast/src/index.rs crates/blast/src/kernels.rs crates/blast/src/pipeline.rs crates/blast/src/sequence.rs crates/blast/src/stages.rs

crates/blast/src/lib.rs:
crates/blast/src/index.rs:
crates/blast/src/kernels.rs:
crates/blast/src/pipeline.rs:
crates/blast/src/sequence.rs:
crates/blast/src/stages.rs:
