/root/repo/target/release/deps/calibrate-1e5f75eb300308c3.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-1e5f75eb300308c3: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
