/root/repo/target/release/deps/calibrate-3bf39688d674eaa6.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-3bf39688d674eaa6: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
