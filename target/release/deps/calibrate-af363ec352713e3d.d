/root/repo/target/release/deps/calibrate-af363ec352713e3d.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-af363ec352713e3d: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
