/root/repo/target/release/deps/calibrate-b57850bca67c4c1e.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-b57850bca67c4c1e: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
