/root/repo/target/release/deps/cli_integration-56c8d883e74621d4.d: crates/cli/tests/cli_integration.rs

/root/repo/target/release/deps/cli_integration-56c8d883e74621d4: crates/cli/tests/cli_integration.rs

crates/cli/tests/cli_integration.rs:
