/root/repo/target/release/deps/coschedule-053287bc8fd6bb75.d: crates/bench/src/bin/coschedule.rs

/root/repo/target/release/deps/coschedule-053287bc8fd6bb75: crates/bench/src/bin/coschedule.rs

crates/bench/src/bin/coschedule.rs:
