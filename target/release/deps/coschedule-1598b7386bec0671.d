/root/repo/target/release/deps/coschedule-1598b7386bec0671.d: crates/bench/src/bin/coschedule.rs

/root/repo/target/release/deps/coschedule-1598b7386bec0671: crates/bench/src/bin/coschedule.rs

crates/bench/src/bin/coschedule.rs:
