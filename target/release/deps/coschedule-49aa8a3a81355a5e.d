/root/repo/target/release/deps/coschedule-49aa8a3a81355a5e.d: crates/bench/src/bin/coschedule.rs

/root/repo/target/release/deps/coschedule-49aa8a3a81355a5e: crates/bench/src/bin/coschedule.rs

crates/bench/src/bin/coschedule.rs:
