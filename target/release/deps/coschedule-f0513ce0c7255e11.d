/root/repo/target/release/deps/coschedule-f0513ce0c7255e11.d: crates/bench/src/bin/coschedule.rs

/root/repo/target/release/deps/coschedule-f0513ce0c7255e11: crates/bench/src/bin/coschedule.rs

crates/bench/src/bin/coschedule.rs:
