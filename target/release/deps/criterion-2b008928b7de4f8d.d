/root/repo/target/release/deps/criterion-2b008928b7de4f8d.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-2b008928b7de4f8d: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
