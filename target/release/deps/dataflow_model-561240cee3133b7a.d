/root/repo/target/release/deps/dataflow_model-561240cee3133b7a.d: crates/dataflow-model/src/lib.rs crates/dataflow-model/src/analysis.rs crates/dataflow-model/src/arrival.rs crates/dataflow-model/src/error.rs crates/dataflow-model/src/gain.rs crates/dataflow-model/src/node.rs crates/dataflow-model/src/params.rs crates/dataflow-model/src/pipeline.rs

/root/repo/target/release/deps/libdataflow_model-561240cee3133b7a.rlib: crates/dataflow-model/src/lib.rs crates/dataflow-model/src/analysis.rs crates/dataflow-model/src/arrival.rs crates/dataflow-model/src/error.rs crates/dataflow-model/src/gain.rs crates/dataflow-model/src/node.rs crates/dataflow-model/src/params.rs crates/dataflow-model/src/pipeline.rs

/root/repo/target/release/deps/libdataflow_model-561240cee3133b7a.rmeta: crates/dataflow-model/src/lib.rs crates/dataflow-model/src/analysis.rs crates/dataflow-model/src/arrival.rs crates/dataflow-model/src/error.rs crates/dataflow-model/src/gain.rs crates/dataflow-model/src/node.rs crates/dataflow-model/src/params.rs crates/dataflow-model/src/pipeline.rs

crates/dataflow-model/src/lib.rs:
crates/dataflow-model/src/analysis.rs:
crates/dataflow-model/src/arrival.rs:
crates/dataflow-model/src/error.rs:
crates/dataflow-model/src/gain.rs:
crates/dataflow-model/src/node.rs:
crates/dataflow-model/src/params.rs:
crates/dataflow-model/src/pipeline.rs:
