/root/repo/target/release/deps/dataflow_model-b95c6ed374d9c67b.d: crates/dataflow-model/src/lib.rs crates/dataflow-model/src/analysis.rs crates/dataflow-model/src/arrival.rs crates/dataflow-model/src/error.rs crates/dataflow-model/src/gain.rs crates/dataflow-model/src/node.rs crates/dataflow-model/src/params.rs crates/dataflow-model/src/pipeline.rs

/root/repo/target/release/deps/dataflow_model-b95c6ed374d9c67b: crates/dataflow-model/src/lib.rs crates/dataflow-model/src/analysis.rs crates/dataflow-model/src/arrival.rs crates/dataflow-model/src/error.rs crates/dataflow-model/src/gain.rs crates/dataflow-model/src/node.rs crates/dataflow-model/src/params.rs crates/dataflow-model/src/pipeline.rs

crates/dataflow-model/src/lib.rs:
crates/dataflow-model/src/analysis.rs:
crates/dataflow-model/src/arrival.rs:
crates/dataflow-model/src/error.rs:
crates/dataflow-model/src/gain.rs:
crates/dataflow-model/src/node.rs:
crates/dataflow-model/src/params.rs:
crates/dataflow-model/src/pipeline.rs:
