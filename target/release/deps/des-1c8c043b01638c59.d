/root/repo/target/release/deps/des-1c8c043b01638c59.d: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

/root/repo/target/release/deps/des-1c8c043b01638c59: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

crates/des/src/lib.rs:
crates/des/src/calendar.rs:
crates/des/src/clock.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/trace.rs:
