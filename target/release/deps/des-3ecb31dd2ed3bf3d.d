/root/repo/target/release/deps/des-3ecb31dd2ed3bf3d.d: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/obs.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

/root/repo/target/release/deps/libdes-3ecb31dd2ed3bf3d.rlib: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/obs.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

/root/repo/target/release/deps/libdes-3ecb31dd2ed3bf3d.rmeta: crates/des/src/lib.rs crates/des/src/calendar.rs crates/des/src/clock.rs crates/des/src/obs.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/trace.rs

crates/des/src/lib.rs:
crates/des/src/calendar.rs:
crates/des/src/clock.rs:
crates/des/src/obs.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/trace.rs:
