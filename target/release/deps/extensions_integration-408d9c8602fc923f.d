/root/repo/target/release/deps/extensions_integration-408d9c8602fc923f.d: crates/rtsdf/../../tests/extensions_integration.rs

/root/repo/target/release/deps/extensions_integration-408d9c8602fc923f: crates/rtsdf/../../tests/extensions_integration.rs

crates/rtsdf/../../tests/extensions_integration.rs:
