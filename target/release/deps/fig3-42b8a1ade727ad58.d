/root/repo/target/release/deps/fig3-42b8a1ade727ad58.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-42b8a1ade727ad58: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
