/root/repo/target/release/deps/fig3-5126d9a649a819c9.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-5126d9a649a819c9: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
