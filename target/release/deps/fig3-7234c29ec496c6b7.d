/root/repo/target/release/deps/fig3-7234c29ec496c6b7.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-7234c29ec496c6b7: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
