/root/repo/target/release/deps/fig3-be00ec6d85ac472c.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-be00ec6d85ac472c: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
