/root/repo/target/release/deps/fig4-128eabf165bf783a.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-128eabf165bf783a: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
