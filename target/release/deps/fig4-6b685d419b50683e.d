/root/repo/target/release/deps/fig4-6b685d419b50683e.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-6b685d419b50683e: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
