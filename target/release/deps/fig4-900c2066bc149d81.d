/root/repo/target/release/deps/fig4-900c2066bc149d81.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-900c2066bc149d81: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
