/root/repo/target/release/deps/fig4-e981d5b54c5e2f8b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-e981d5b54c5e2f8b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
