/root/repo/target/release/deps/flexible-62b1a65282023229.d: crates/bench/src/bin/flexible.rs

/root/repo/target/release/deps/flexible-62b1a65282023229: crates/bench/src/bin/flexible.rs

crates/bench/src/bin/flexible.rs:
