/root/repo/target/release/deps/flexible-9a25e55d34d6c91d.d: crates/bench/src/bin/flexible.rs

/root/repo/target/release/deps/flexible-9a25e55d34d6c91d: crates/bench/src/bin/flexible.rs

crates/bench/src/bin/flexible.rs:
