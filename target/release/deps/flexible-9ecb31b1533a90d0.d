/root/repo/target/release/deps/flexible-9ecb31b1533a90d0.d: crates/bench/src/bin/flexible.rs

/root/repo/target/release/deps/flexible-9ecb31b1533a90d0: crates/bench/src/bin/flexible.rs

crates/bench/src/bin/flexible.rs:
