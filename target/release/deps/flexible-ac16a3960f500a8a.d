/root/repo/target/release/deps/flexible-ac16a3960f500a8a.d: crates/bench/src/bin/flexible.rs

/root/repo/target/release/deps/flexible-ac16a3960f500a8a: crates/bench/src/bin/flexible.rs

crates/bench/src/bin/flexible.rs:
