/root/repo/target/release/deps/frontier-1fa8a90588200763.d: crates/bench/src/bin/frontier.rs

/root/repo/target/release/deps/frontier-1fa8a90588200763: crates/bench/src/bin/frontier.rs

crates/bench/src/bin/frontier.rs:
