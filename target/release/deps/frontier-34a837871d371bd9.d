/root/repo/target/release/deps/frontier-34a837871d371bd9.d: crates/bench/src/bin/frontier.rs

/root/repo/target/release/deps/frontier-34a837871d371bd9: crates/bench/src/bin/frontier.rs

crates/bench/src/bin/frontier.rs:
