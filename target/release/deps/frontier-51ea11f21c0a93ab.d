/root/repo/target/release/deps/frontier-51ea11f21c0a93ab.d: crates/bench/src/bin/frontier.rs

/root/repo/target/release/deps/frontier-51ea11f21c0a93ab: crates/bench/src/bin/frontier.rs

crates/bench/src/bin/frontier.rs:
