/root/repo/target/release/deps/frontier-e82f3da1d35b7673.d: crates/bench/src/bin/frontier.rs

/root/repo/target/release/deps/frontier-e82f3da1d35b7673: crates/bench/src/bin/frontier.rs

crates/bench/src/bin/frontier.rs:
