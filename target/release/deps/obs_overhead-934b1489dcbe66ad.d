/root/repo/target/release/deps/obs_overhead-934b1489dcbe66ad.d: crates/pipeline-sim/benches/obs_overhead.rs

/root/repo/target/release/deps/obs_overhead-934b1489dcbe66ad: crates/pipeline-sim/benches/obs_overhead.rs

crates/pipeline-sim/benches/obs_overhead.rs:
