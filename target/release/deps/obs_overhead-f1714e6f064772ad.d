/root/repo/target/release/deps/obs_overhead-f1714e6f064772ad.d: crates/pipeline-sim/benches/obs_overhead.rs

/root/repo/target/release/deps/obs_overhead-f1714e6f064772ad: crates/pipeline-sim/benches/obs_overhead.rs

crates/pipeline-sim/benches/obs_overhead.rs:
