/root/repo/target/release/deps/obs_trace-fff8c6388008b6ff.d: crates/obs-trace/src/lib.rs crates/obs-trace/src/chrome.rs crates/obs-trace/src/forensics.rs crates/obs-trace/src/span.rs

/root/repo/target/release/deps/libobs_trace-fff8c6388008b6ff.rlib: crates/obs-trace/src/lib.rs crates/obs-trace/src/chrome.rs crates/obs-trace/src/forensics.rs crates/obs-trace/src/span.rs

/root/repo/target/release/deps/libobs_trace-fff8c6388008b6ff.rmeta: crates/obs-trace/src/lib.rs crates/obs-trace/src/chrome.rs crates/obs-trace/src/forensics.rs crates/obs-trace/src/span.rs

crates/obs-trace/src/lib.rs:
crates/obs-trace/src/chrome.rs:
crates/obs-trace/src/forensics.rs:
crates/obs-trace/src/span.rs:
