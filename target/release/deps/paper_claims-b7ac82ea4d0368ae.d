/root/repo/target/release/deps/paper_claims-b7ac82ea4d0368ae.d: crates/rtsdf/../../tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-b7ac82ea4d0368ae: crates/rtsdf/../../tests/paper_claims.rs

crates/rtsdf/../../tests/paper_claims.rs:
