/root/repo/target/release/deps/pipeline_sim-12b9ba87b94e408a.d: crates/pipeline-sim/src/lib.rs crates/pipeline-sim/src/calibration.rs crates/pipeline-sim/src/config.rs crates/pipeline-sim/src/enforced.rs crates/pipeline-sim/src/item.rs crates/pipeline-sim/src/metrics.rs crates/pipeline-sim/src/monolithic.rs crates/pipeline-sim/src/runner.rs crates/pipeline-sim/src/timeline.rs crates/pipeline-sim/src/validate.rs

/root/repo/target/release/deps/libpipeline_sim-12b9ba87b94e408a.rlib: crates/pipeline-sim/src/lib.rs crates/pipeline-sim/src/calibration.rs crates/pipeline-sim/src/config.rs crates/pipeline-sim/src/enforced.rs crates/pipeline-sim/src/item.rs crates/pipeline-sim/src/metrics.rs crates/pipeline-sim/src/monolithic.rs crates/pipeline-sim/src/runner.rs crates/pipeline-sim/src/timeline.rs crates/pipeline-sim/src/validate.rs

/root/repo/target/release/deps/libpipeline_sim-12b9ba87b94e408a.rmeta: crates/pipeline-sim/src/lib.rs crates/pipeline-sim/src/calibration.rs crates/pipeline-sim/src/config.rs crates/pipeline-sim/src/enforced.rs crates/pipeline-sim/src/item.rs crates/pipeline-sim/src/metrics.rs crates/pipeline-sim/src/monolithic.rs crates/pipeline-sim/src/runner.rs crates/pipeline-sim/src/timeline.rs crates/pipeline-sim/src/validate.rs

crates/pipeline-sim/src/lib.rs:
crates/pipeline-sim/src/calibration.rs:
crates/pipeline-sim/src/config.rs:
crates/pipeline-sim/src/enforced.rs:
crates/pipeline-sim/src/item.rs:
crates/pipeline-sim/src/metrics.rs:
crates/pipeline-sim/src/monolithic.rs:
crates/pipeline-sim/src/runner.rs:
crates/pipeline-sim/src/timeline.rs:
crates/pipeline-sim/src/validate.rs:
