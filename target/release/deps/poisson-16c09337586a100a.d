/root/repo/target/release/deps/poisson-16c09337586a100a.d: crates/bench/src/bin/poisson.rs

/root/repo/target/release/deps/poisson-16c09337586a100a: crates/bench/src/bin/poisson.rs

crates/bench/src/bin/poisson.rs:
