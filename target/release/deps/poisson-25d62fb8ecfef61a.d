/root/repo/target/release/deps/poisson-25d62fb8ecfef61a.d: crates/bench/src/bin/poisson.rs

/root/repo/target/release/deps/poisson-25d62fb8ecfef61a: crates/bench/src/bin/poisson.rs

crates/bench/src/bin/poisson.rs:
