/root/repo/target/release/deps/poisson-7df2fd86fe87fce0.d: crates/bench/src/bin/poisson.rs

/root/repo/target/release/deps/poisson-7df2fd86fe87fce0: crates/bench/src/bin/poisson.rs

crates/bench/src/bin/poisson.rs:
