/root/repo/target/release/deps/poisson-857cb1ca47cf8a94.d: crates/bench/src/bin/poisson.rs

/root/repo/target/release/deps/poisson-857cb1ca47cf8a94: crates/bench/src/bin/poisson.rs

crates/bench/src/bin/poisson.rs:
