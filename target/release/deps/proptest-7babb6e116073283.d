/root/repo/target/release/deps/proptest-7babb6e116073283.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-7babb6e116073283.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-7babb6e116073283.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
