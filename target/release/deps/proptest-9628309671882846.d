/root/repo/target/release/deps/proptest-9628309671882846.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-9628309671882846: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
