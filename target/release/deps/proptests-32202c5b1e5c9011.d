/root/repo/target/release/deps/proptests-32202c5b1e5c9011.d: crates/des/tests/proptests.rs

/root/repo/target/release/deps/proptests-32202c5b1e5c9011: crates/des/tests/proptests.rs

crates/des/tests/proptests.rs:
