/root/repo/target/release/deps/proptests-3d4b02d02455ebac.d: crates/apps/tests/proptests.rs

/root/repo/target/release/deps/proptests-3d4b02d02455ebac: crates/apps/tests/proptests.rs

crates/apps/tests/proptests.rs:
