/root/repo/target/release/deps/proptests-54ef8018cc0f4df9.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-54ef8018cc0f4df9: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
