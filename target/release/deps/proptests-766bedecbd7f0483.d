/root/repo/target/release/deps/proptests-766bedecbd7f0483.d: crates/solver/tests/proptests.rs

/root/repo/target/release/deps/proptests-766bedecbd7f0483: crates/solver/tests/proptests.rs

crates/solver/tests/proptests.rs:
