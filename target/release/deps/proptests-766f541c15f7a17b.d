/root/repo/target/release/deps/proptests-766f541c15f7a17b.d: crates/queueing/tests/proptests.rs

/root/repo/target/release/deps/proptests-766f541c15f7a17b: crates/queueing/tests/proptests.rs

crates/queueing/tests/proptests.rs:
