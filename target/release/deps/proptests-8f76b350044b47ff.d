/root/repo/target/release/deps/proptests-8f76b350044b47ff.d: crates/blast/tests/proptests.rs

/root/repo/target/release/deps/proptests-8f76b350044b47ff: crates/blast/tests/proptests.rs

crates/blast/tests/proptests.rs:
