/root/repo/target/release/deps/proptests-a60459ee5e166aeb.d: crates/dataflow-model/tests/proptests.rs

/root/repo/target/release/deps/proptests-a60459ee5e166aeb: crates/dataflow-model/tests/proptests.rs

crates/dataflow-model/tests/proptests.rs:
