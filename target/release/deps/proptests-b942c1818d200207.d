/root/repo/target/release/deps/proptests-b942c1818d200207.d: crates/pipeline-sim/tests/proptests.rs

/root/repo/target/release/deps/proptests-b942c1818d200207: crates/pipeline-sim/tests/proptests.rs

crates/pipeline-sim/tests/proptests.rs:
