/root/repo/target/release/deps/proptests-f9d7a615686cf073.d: crates/simd-device/tests/proptests.rs

/root/repo/target/release/deps/proptests-f9d7a615686cf073: crates/simd-device/tests/proptests.rs

crates/simd-device/tests/proptests.rs:
