/root/repo/target/release/deps/queueing-448211d1baaf6986.d: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

/root/repo/target/release/deps/queueing-448211d1baaf6986: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

crates/queueing/src/lib.rs:
crates/queueing/src/bulk.rs:
crates/queueing/src/estimate.rs:
crates/queueing/src/pmf.rs:
