/root/repo/target/release/deps/queueing-b76157310b2e5427.d: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

/root/repo/target/release/deps/libqueueing-b76157310b2e5427.rlib: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

/root/repo/target/release/deps/libqueueing-b76157310b2e5427.rmeta: crates/queueing/src/lib.rs crates/queueing/src/bulk.rs crates/queueing/src/estimate.rs crates/queueing/src/pmf.rs

crates/queueing/src/lib.rs:
crates/queueing/src/bulk.rs:
crates/queueing/src/estimate.rs:
crates/queueing/src/pmf.rs:
