/root/repo/target/release/deps/rand-2995a8f3192d14a2.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-2995a8f3192d14a2: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
