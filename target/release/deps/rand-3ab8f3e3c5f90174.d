/root/repo/target/release/deps/rand-3ab8f3e3c5f90174.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-3ab8f3e3c5f90174.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-3ab8f3e3c5f90174.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
