/root/repo/target/release/deps/rand_distr-34be8ebdfbb246b1.d: shims/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-34be8ebdfbb246b1.rlib: shims/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-34be8ebdfbb246b1.rmeta: shims/rand_distr/src/lib.rs

shims/rand_distr/src/lib.rs:
