/root/repo/target/release/deps/rand_distr-b46e7763fa947dbb.d: shims/rand_distr/src/lib.rs

/root/repo/target/release/deps/rand_distr-b46e7763fa947dbb: shims/rand_distr/src/lib.rs

shims/rand_distr/src/lib.rs:
