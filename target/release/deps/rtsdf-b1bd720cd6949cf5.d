/root/repo/target/release/deps/rtsdf-b1bd720cd6949cf5.d: crates/rtsdf/src/lib.rs

/root/repo/target/release/deps/librtsdf-b1bd720cd6949cf5.rlib: crates/rtsdf/src/lib.rs

/root/repo/target/release/deps/librtsdf-b1bd720cd6949cf5.rmeta: crates/rtsdf/src/lib.rs

crates/rtsdf/src/lib.rs:
