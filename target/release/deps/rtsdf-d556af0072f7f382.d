/root/repo/target/release/deps/rtsdf-d556af0072f7f382.d: crates/rtsdf/src/lib.rs

/root/repo/target/release/deps/librtsdf-d556af0072f7f382.rlib: crates/rtsdf/src/lib.rs

/root/repo/target/release/deps/librtsdf-d556af0072f7f382.rmeta: crates/rtsdf/src/lib.rs

crates/rtsdf/src/lib.rs:
