/root/repo/target/release/deps/rtsdf-e28a7f82a1ee7e42.d: crates/rtsdf/src/lib.rs

/root/repo/target/release/deps/rtsdf-e28a7f82a1ee7e42: crates/rtsdf/src/lib.rs

crates/rtsdf/src/lib.rs:
