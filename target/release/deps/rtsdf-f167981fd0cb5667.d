/root/repo/target/release/deps/rtsdf-f167981fd0cb5667.d: crates/rtsdf/src/lib.rs

/root/repo/target/release/deps/librtsdf-f167981fd0cb5667.rlib: crates/rtsdf/src/lib.rs

/root/repo/target/release/deps/librtsdf-f167981fd0cb5667.rmeta: crates/rtsdf/src/lib.rs

crates/rtsdf/src/lib.rs:
