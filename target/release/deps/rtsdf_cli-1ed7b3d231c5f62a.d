/root/repo/target/release/deps/rtsdf_cli-1ed7b3d231c5f62a.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/librtsdf_cli-1ed7b3d231c5f62a.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/librtsdf_cli-1ed7b3d231c5f62a.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
