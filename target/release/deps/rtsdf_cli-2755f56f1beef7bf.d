/root/repo/target/release/deps/rtsdf_cli-2755f56f1beef7bf.d: crates/cli/src/main.rs

/root/repo/target/release/deps/rtsdf_cli-2755f56f1beef7bf: crates/cli/src/main.rs

crates/cli/src/main.rs:
