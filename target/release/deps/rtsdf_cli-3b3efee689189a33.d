/root/repo/target/release/deps/rtsdf_cli-3b3efee689189a33.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/librtsdf_cli-3b3efee689189a33.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/librtsdf_cli-3b3efee689189a33.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
