/root/repo/target/release/deps/rtsdf_cli-7a4eb2a194fbd348.d: crates/cli/src/main.rs

/root/repo/target/release/deps/rtsdf_cli-7a4eb2a194fbd348: crates/cli/src/main.rs

crates/cli/src/main.rs:
