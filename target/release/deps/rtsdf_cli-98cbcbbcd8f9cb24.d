/root/repo/target/release/deps/rtsdf_cli-98cbcbbcd8f9cb24.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/rtsdf_cli-98cbcbbcd8f9cb24: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
