/root/repo/target/release/deps/rtsdf_cli-b4e76ba005daacd7.d: crates/cli/src/main.rs

/root/repo/target/release/deps/rtsdf_cli-b4e76ba005daacd7: crates/cli/src/main.rs

crates/cli/src/main.rs:
