/root/repo/target/release/deps/rtsdf_cli-ba0f1ac088afce5b.d: crates/cli/src/main.rs

/root/repo/target/release/deps/rtsdf_cli-ba0f1ac088afce5b: crates/cli/src/main.rs

crates/cli/src/main.rs:
