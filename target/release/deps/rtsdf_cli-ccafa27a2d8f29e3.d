/root/repo/target/release/deps/rtsdf_cli-ccafa27a2d8f29e3.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/librtsdf_cli-ccafa27a2d8f29e3.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/librtsdf_cli-ccafa27a2d8f29e3.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
