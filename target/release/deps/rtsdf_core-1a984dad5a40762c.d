/root/repo/target/release/deps/rtsdf_core-1a984dad5a40762c.d: crates/core/src/lib.rs crates/core/src/comparison.rs crates/core/src/coschedule.rs crates/core/src/enforced.rs crates/core/src/feasibility.rs crates/core/src/flexible.rs crates/core/src/frontier.rs crates/core/src/kkt.rs crates/core/src/monolithic.rs crates/core/src/schedule.rs

/root/repo/target/release/deps/rtsdf_core-1a984dad5a40762c: crates/core/src/lib.rs crates/core/src/comparison.rs crates/core/src/coschedule.rs crates/core/src/enforced.rs crates/core/src/feasibility.rs crates/core/src/flexible.rs crates/core/src/frontier.rs crates/core/src/kkt.rs crates/core/src/monolithic.rs crates/core/src/schedule.rs

crates/core/src/lib.rs:
crates/core/src/comparison.rs:
crates/core/src/coschedule.rs:
crates/core/src/enforced.rs:
crates/core/src/feasibility.rs:
crates/core/src/flexible.rs:
crates/core/src/frontier.rs:
crates/core/src/kkt.rs:
crates/core/src/monolithic.rs:
crates/core/src/schedule.rs:
