/root/repo/target/release/deps/rtsdf_core-2d216d8cf5726f85.d: crates/core/src/lib.rs crates/core/src/comparison.rs crates/core/src/coschedule.rs crates/core/src/enforced.rs crates/core/src/feasibility.rs crates/core/src/flexible.rs crates/core/src/frontier.rs crates/core/src/kkt.rs crates/core/src/monolithic.rs crates/core/src/schedule.rs crates/core/src/telemetry.rs

/root/repo/target/release/deps/librtsdf_core-2d216d8cf5726f85.rlib: crates/core/src/lib.rs crates/core/src/comparison.rs crates/core/src/coschedule.rs crates/core/src/enforced.rs crates/core/src/feasibility.rs crates/core/src/flexible.rs crates/core/src/frontier.rs crates/core/src/kkt.rs crates/core/src/monolithic.rs crates/core/src/schedule.rs crates/core/src/telemetry.rs

/root/repo/target/release/deps/librtsdf_core-2d216d8cf5726f85.rmeta: crates/core/src/lib.rs crates/core/src/comparison.rs crates/core/src/coschedule.rs crates/core/src/enforced.rs crates/core/src/feasibility.rs crates/core/src/flexible.rs crates/core/src/frontier.rs crates/core/src/kkt.rs crates/core/src/monolithic.rs crates/core/src/schedule.rs crates/core/src/telemetry.rs

crates/core/src/lib.rs:
crates/core/src/comparison.rs:
crates/core/src/coschedule.rs:
crates/core/src/enforced.rs:
crates/core/src/feasibility.rs:
crates/core/src/flexible.rs:
crates/core/src/frontier.rs:
crates/core/src/kkt.rs:
crates/core/src/monolithic.rs:
crates/core/src/schedule.rs:
crates/core/src/telemetry.rs:
