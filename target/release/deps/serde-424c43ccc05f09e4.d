/root/repo/target/release/deps/serde-424c43ccc05f09e4.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/serde-424c43ccc05f09e4: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
