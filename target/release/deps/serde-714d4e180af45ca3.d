/root/repo/target/release/deps/serde-714d4e180af45ca3.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-714d4e180af45ca3.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-714d4e180af45ca3.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
