/root/repo/target/release/deps/serde_derive-5ecefa5a46c927dc.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-5ecefa5a46c927dc.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
