/root/repo/target/release/deps/serde_derive-f0c6cdb6f4c8087f.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-f0c6cdb6f4c8087f: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
