/root/repo/target/release/deps/serde_json-3cdcc8c13c4ef35b.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-3cdcc8c13c4ef35b: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
