/root/repo/target/release/deps/serde_json-5f5d5c9bdafe30e9.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-5f5d5c9bdafe30e9.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-5f5d5c9bdafe30e9.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
