/root/repo/target/release/deps/simd_device-200b169b1d34a7c1.d: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs

/root/repo/target/release/deps/simd_device-200b169b1d34a7c1: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs

crates/simd-device/src/lib.rs:
crates/simd-device/src/batch.rs:
crates/simd-device/src/machine.rs:
crates/simd-device/src/occupancy.rs:
crates/simd-device/src/share.rs:
