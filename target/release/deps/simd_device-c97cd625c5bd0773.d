/root/repo/target/release/deps/simd_device-c97cd625c5bd0773.d: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs

/root/repo/target/release/deps/libsimd_device-c97cd625c5bd0773.rlib: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs

/root/repo/target/release/deps/libsimd_device-c97cd625c5bd0773.rmeta: crates/simd-device/src/lib.rs crates/simd-device/src/batch.rs crates/simd-device/src/machine.rs crates/simd-device/src/occupancy.rs crates/simd-device/src/share.rs

crates/simd-device/src/lib.rs:
crates/simd-device/src/batch.rs:
crates/simd-device/src/machine.rs:
crates/simd-device/src/occupancy.rs:
crates/simd-device/src/share.rs:
