/root/repo/target/release/deps/simulator_integration-2293bacbff895152.d: crates/rtsdf/../../tests/simulator_integration.rs

/root/repo/target/release/deps/simulator_integration-2293bacbff895152: crates/rtsdf/../../tests/simulator_integration.rs

crates/rtsdf/../../tests/simulator_integration.rs:
