/root/repo/target/release/deps/solver-22b53c1aa5e159c2.d: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs

/root/repo/target/release/deps/solver-22b53c1aa5e159c2: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs

crates/solver/src/lib.rs:
crates/solver/src/bnb.rs:
crates/solver/src/convex.rs:
crates/solver/src/integer.rs:
crates/solver/src/linalg.rs:
crates/solver/src/linear.rs:
crates/solver/src/scalar.rs:
