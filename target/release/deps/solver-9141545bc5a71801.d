/root/repo/target/release/deps/solver-9141545bc5a71801.d: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs

/root/repo/target/release/deps/libsolver-9141545bc5a71801.rlib: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs

/root/repo/target/release/deps/libsolver-9141545bc5a71801.rmeta: crates/solver/src/lib.rs crates/solver/src/bnb.rs crates/solver/src/convex.rs crates/solver/src/integer.rs crates/solver/src/linalg.rs crates/solver/src/linear.rs crates/solver/src/scalar.rs

crates/solver/src/lib.rs:
crates/solver/src/bnb.rs:
crates/solver/src/convex.rs:
crates/solver/src/integer.rs:
crates/solver/src/linalg.rs:
crates/solver/src/linear.rs:
crates/solver/src/scalar.rs:
