/root/repo/target/release/deps/strategies_integration-3132f97995a041e2.d: crates/rtsdf/../../tests/strategies_integration.rs

/root/repo/target/release/deps/strategies_integration-3132f97995a041e2: crates/rtsdf/../../tests/strategies_integration.rs

crates/rtsdf/../../tests/strategies_integration.rs:
