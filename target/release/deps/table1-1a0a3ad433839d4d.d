/root/repo/target/release/deps/table1-1a0a3ad433839d4d.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-1a0a3ad433839d4d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
