/root/repo/target/release/deps/table1-90d5b057737f0efa.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-90d5b057737f0efa: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
