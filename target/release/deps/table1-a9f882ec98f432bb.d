/root/repo/target/release/deps/table1-a9f882ec98f432bb.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-a9f882ec98f432bb: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
