/root/repo/target/release/deps/table1-b17b72a85f889f76.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-b17b72a85f889f76: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
