/root/repo/target/release/examples/blast_realtime-358ab222186c8b65.d: crates/rtsdf/../../examples/blast_realtime.rs

/root/repo/target/release/examples/blast_realtime-358ab222186c8b65: crates/rtsdf/../../examples/blast_realtime.rs

crates/rtsdf/../../examples/blast_realtime.rs:
