/root/repo/target/release/examples/flexible_shares-e9aab367f8f48a4a.d: crates/rtsdf/../../examples/flexible_shares.rs

/root/repo/target/release/examples/flexible_shares-e9aab367f8f48a4a: crates/rtsdf/../../examples/flexible_shares.rs

crates/rtsdf/../../examples/flexible_shares.rs:
