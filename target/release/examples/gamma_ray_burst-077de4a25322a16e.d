/root/repo/target/release/examples/gamma_ray_burst-077de4a25322a16e.d: crates/rtsdf/../../examples/gamma_ray_burst.rs

/root/repo/target/release/examples/gamma_ray_burst-077de4a25322a16e: crates/rtsdf/../../examples/gamma_ray_burst.rs

crates/rtsdf/../../examples/gamma_ray_burst.rs:
