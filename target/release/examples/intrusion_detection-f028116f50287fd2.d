/root/repo/target/release/examples/intrusion_detection-f028116f50287fd2.d: crates/rtsdf/../../examples/intrusion_detection.rs

/root/repo/target/release/examples/intrusion_detection-f028116f50287fd2: crates/rtsdf/../../examples/intrusion_detection.rs

crates/rtsdf/../../examples/intrusion_detection.rs:
