/root/repo/target/release/examples/quickstart-207b1ba105c34176.d: crates/rtsdf/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-207b1ba105c34176: crates/rtsdf/../../examples/quickstart.rs

crates/rtsdf/../../examples/quickstart.rs:
