/root/repo/target/release/examples/quickstart-c95585e7c5054c77.d: crates/rtsdf/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c95585e7c5054c77: crates/rtsdf/../../examples/quickstart.rs

crates/rtsdf/../../examples/quickstart.rs:
