//! Integration of the additional applications (gamma, IDS, cascade) and
//! the measured BLAST variant with the full scheduling + simulation
//! stack.

use rtsdf::apps::{cascade, gamma, ids};
use rtsdf::prelude::*;

/// Schedule a pipeline at an operating point and check the simulator
/// confirms the prediction; returns (predicted, measured, miss rate).
fn schedule_and_simulate(
    pipeline: &PipelineSpec,
    tau0: f64,
    d: f64,
    b: Vec<f64>,
    items: usize,
) -> (f64, f64, f64) {
    let params = RtParams::new(tau0, d).unwrap();
    let sched = EnforcedWaitsProblem::new(pipeline, params, b)
        .solve(SolveMethod::WaterFilling)
        .unwrap_or_else(|e| panic!("infeasible at tau0={tau0}, D={d}: {e}"));
    let m = simulate_enforced(pipeline, &sched, d, &SimConfig::quick(tau0, 5, items));
    (sched.active_fraction, m.active_fraction, m.miss_rate())
}

#[test]
fn gamma_pipeline_schedules_and_validates() {
    let p = gamma::synthesize(&gamma::GammaConfig::default(), 1).unwrap();
    let b: Vec<f64> = p
        .mean_gains()
        .iter()
        .map(|g| (g.ceil() + 1.0).max(2.0))
        .collect();
    let (predicted, measured, miss) = schedule_and_simulate(&p, 40.0, 8e4, b, 6_000);
    assert!(
        (predicted - measured).abs() / predicted < 0.06,
        "gamma agreement: {predicted} vs {measured}"
    );
    assert!(miss < 0.02, "gamma miss rate {miss}");
}

#[test]
fn ids_pipeline_schedules_and_validates() {
    let p = ids::synthesize(&ids::IdsConfig::default(), 2).unwrap();
    let b: Vec<f64> = p
        .mean_gains()
        .iter()
        .map(|g| (g.ceil() + 1.0).max(2.0))
        .collect();
    let (predicted, measured, miss) = schedule_and_simulate(&p, 60.0, 1e5, b, 6_000);
    assert!(
        (predicted - measured).abs() / predicted < 0.06,
        "ids agreement: {predicted} vs {measured}"
    );
    assert!(miss < 0.02, "ids miss rate {miss}");
}

#[test]
fn cascade_pipeline_schedules_and_validates() {
    let p = cascade::synthesize(&cascade::CascadeConfig::default(), 3).unwrap();
    let b: Vec<f64> = p
        .mean_gains()
        .iter()
        .map(|g| (g.ceil() + 1.0).max(2.0))
        .collect();
    let (predicted, measured, miss) = schedule_and_simulate(&p, 50.0, 1.2e5, b, 6_000);
    assert!(
        (predicted - measured).abs() / predicted < 0.06,
        "cascade agreement: {predicted} vs {measured}"
    );
    assert!(miss < 0.02, "cascade miss rate {miss}");
}

#[test]
fn measured_blast_variant_flows_through_the_stack() {
    // The fully measured Table-1 analogue (synthetic sequences + SIMT
    // kernels) must be schedulable and simulate consistently, just like
    // the paper-constant pipeline.
    let cfg = rtsdf::blast::MeasurementConfig {
        genome_len: 40_000,
        query_len: 16_000,
        positions: 12_000,
        ..rtsdf::blast::MeasurementConfig::default()
    };
    let (p, table) = rtsdf::blast::measure_pipeline(&cfg).unwrap();
    assert_eq!(table.rows.len(), 4);
    let b: Vec<f64> = p
        .mean_gains()
        .iter()
        .map(|g| (g.ceil() + 2.0).max(3.0))
        .collect();
    let (predicted, measured, miss) = schedule_and_simulate(&p, 40.0, 4e5, b, 5_000);
    assert!(
        (predicted - measured).abs() / predicted < 0.08,
        "measured-blast agreement: {predicted} vs {measured}"
    );
    assert!(miss < 0.05, "measured-blast miss rate {miss}");
}

#[test]
fn all_apps_have_the_irregular_shape() {
    // Every bundled application must actually be irregular: at least
    // one attenuating stage and (for the expanders) a stage with
    // variance — otherwise they would not exercise the paper's problem.
    let pipelines = [
        gamma::synthesize(&gamma::GammaConfig::default(), 9).unwrap(),
        ids::synthesize(&ids::IdsConfig::default(), 9).unwrap(),
        cascade::synthesize(&cascade::CascadeConfig::default(), 9).unwrap(),
    ];
    for p in &pipelines {
        let gains = p.mean_gains();
        assert!(
            gains.iter().any(|&g| g < 0.9),
            "no attenuating stage: {gains:?}"
        );
        let has_variance = p.nodes().iter().any(|n| n.gain.variance() > 1e-6);
        assert!(has_variance, "no stochastic stage");
        // End-to-end gain far from 1 — data volume changes through the
        // pipeline.
        assert!(p.end_to_end_gain() < 0.8, "{}", p.end_to_end_gain());
    }
}

#[test]
fn bursty_arrivals_stress_but_do_not_break_enforced_schedules() {
    let p = ids::synthesize(&ids::IdsConfig::default(), 4).unwrap();
    let params = RtParams::new(60.0, 1.2e5).unwrap();
    let b: Vec<f64> = p
        .mean_gains()
        .iter()
        .map(|g| (g.ceil() + 2.0).max(3.0))
        .collect();
    let sched = EnforcedWaitsProblem::new(&p, params, b)
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let mut cfg = SimConfig::quick(60.0, 11, 8_000);
    cfg.arrivals = ArrivalProcess::Bursty {
        tau_on: 20.0,
        on_mean: 1_500.0,
        off_mean: 3_000.0,
    };
    let m = simulate_enforced(&p, &sched, params.deadline, &cfg);
    assert!(
        !m.truncated,
        "bursty load must not destabilize the schedule"
    );
    assert!(
        m.miss_rate() < 0.2,
        "bursty miss rate {} unexpectedly catastrophic",
        m.miss_rate()
    );
}
