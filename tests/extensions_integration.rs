//! Integration tests for the beyond-the-paper extensions: flexible
//! shares, co-scheduling, schedulability frontiers, firing timelines,
//! and the vacation discipline — exercised together through the facade.

use rtsdf::core::coschedule::{admit, max_replicas, Workload};
use rtsdf::core::flexible::{with_service_times, FlexibleSharesProblem};
use rtsdf::core::frontier::{enforced_min_deadline, enforced_min_tau0, monolithic_min_deadline};
use rtsdf::prelude::*;
use rtsdf::sim::config::FiringDiscipline;
use rtsdf::sim::timeline::{record_timeline, render_ascii};

const PAPER_B: [f64; 4] = [1.0, 3.0, 9.0, 6.0];

fn blast() -> PipelineSpec {
    rtsdf::blast::paper_pipeline()
}

#[test]
fn frontier_flexible_and_equal_share_orders() {
    // Frontier chain: flexible minimum < equal-share minimum, and the
    // equal-share frontier matches the closed form.
    let p = blast();
    let tau0 = 10.0;
    let equal_min = enforced_min_deadline(&p, &PAPER_B, tau0).unwrap();
    // Analytic flexible minimum: (Σ √(c_i·b_i))² at utilization 1.
    let c: Vec<f64> = p.service_times().iter().map(|t| t / 4.0).collect();
    let flex_min: f64 = c
        .iter()
        .zip(&PAPER_B)
        .map(|(&ci, &bi)| (ci * bi).sqrt())
        .sum::<f64>()
        .powi(2);
    assert!(flex_min < equal_min);
    // Flexible schedules just above its analytic minimum...
    let params = RtParams::new(tau0, flex_min * 1.02).unwrap();
    assert!(FlexibleSharesProblem::new(&p, params, PAPER_B.to_vec())
        .solve()
        .is_ok());
    // ...and not below it.
    let params = RtParams::new(tau0, flex_min * 0.98).unwrap();
    assert!(FlexibleSharesProblem::new(&p, params, PAPER_B.to_vec())
        .solve()
        .is_err());
}

#[test]
fn frontier_respects_both_axes() {
    let p = blast();
    // The arrival-rate wall.
    assert!(enforced_min_deadline(&p, &PAPER_B, enforced_min_tau0(&p) * 0.9).is_none());
    // Monolithic frontier exists only above its rate wall.
    assert!(monolithic_min_deadline(&p, 1.0, 1.0, 5.0, 50_000).is_none());
    assert!(monolithic_min_deadline(&p, 1.0, 1.0, 20.0, 50_000).is_some());
}

#[test]
fn coscheduling_composes_with_the_frontier() {
    // A workload right at its feasibility frontier consumes ~the whole
    // device; two of them cannot be admitted.
    let p = blast();
    let tau0 = 10.0;
    let d_min = enforced_min_deadline(&p, &PAPER_B, tau0).unwrap();
    let w = Workload {
        pipeline: &p,
        params: RtParams::new(tau0, d_min * 1.05).unwrap(),
        b: PAPER_B.to_vec(),
    };
    let n = max_replicas(&w).unwrap();
    assert!(
        n <= 2,
        "near-frontier workloads are expensive: {n} replicas"
    );
    // A relaxed workload co-schedules with it if capacity remains.
    let relaxed = Workload {
        pipeline: &p,
        params: RtParams::new(50.0, 3e5).unwrap(),
        b: PAPER_B.to_vec(),
    };
    let single = admit(std::slice::from_ref(&relaxed)).unwrap();
    assert!(single.total_utilization < 0.2);
}

#[test]
fn flexible_schedule_simulates_within_its_deadline() {
    let p = blast();
    let params = RtParams::new(10.0, 2.2e4).unwrap(); // below equal-share min
    let sched = FlexibleSharesProblem::new(&p, params, PAPER_B.to_vec())
        .solve()
        .unwrap();
    let realized = with_service_times(&p, &sched.service_times);
    let ws = WaitSchedule {
        waits: vec![0.0; p.len()],
        periods: sched.periods.clone(),
        active_fraction: sched.utilization,
        backlog_factors: PAPER_B.to_vec(),
        latency_bound: sched.latency_bound,
        method: SolveMethod::WaterFilling,
        telemetry: None,
    };
    let report = run_seeds_enforced(
        &realized,
        &ws,
        params.deadline,
        &SimConfig::quick(10.0, 0, 5_000),
        8,
    );
    assert!(
        report.miss_free_fraction() >= 0.75,
        "flexible schedule below the equal-share frontier should still be miss-free-ish: {}",
        report.miss_free_fraction()
    );
}

#[test]
fn timeline_reflects_the_optimized_waits() {
    let p = blast();
    let params = RtParams::new(10.0, 1e5).unwrap();
    let sched = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec())
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let tl = record_timeline(&p, &sched, 1e5, &SimConfig::quick(10.0, 1, 2_000), 30_000.0);
    for node in 0..p.len() {
        let mean = tl.mean_period(node).expect("several firings in the window");
        assert!(
            (mean - sched.periods[node].round()).abs() <= 1.0,
            "node {node}: timeline period {mean} vs schedule {}",
            sched.periods[node]
        );
    }
    let art = render_ascii(&tl, 80);
    assert_eq!(art.lines().count(), p.len() + 1);
}

#[test]
fn vacation_discipline_is_a_pure_win_at_slow_rates() {
    let p = blast();
    let params = RtParams::new(80.0, 3e5).unwrap();
    let sched = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec())
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let mut strict = SimConfig::quick(80.0, 2, 3_000);
    let mut vacation = strict.clone();
    vacation.discipline = FiringDiscipline::Vacation;
    let sm = simulate_enforced(&p, &sched, params.deadline, &strict);
    let vm = simulate_enforced(&p, &sched, params.deadline, &vacation);
    assert!(
        vm.active_fraction < sm.active_fraction,
        "{} vs {}",
        vm.active_fraction,
        sm.active_fraction
    );
    assert!(vm.latency.mean() <= sm.latency.mean() + 1e-9);
    assert!(vm.miss_rate() <= sm.miss_rate() + 1e-12);
    // And the strict run's *vacation metric* equals roughly what the
    // vacation run actually charges.
    let rel =
        (sm.active_fraction_nonempty - vm.active_fraction).abs() / vm.active_fraction.max(1e-12);
    assert!(
        rel < 0.35,
        "vacation metric {} vs realized {}",
        sm.active_fraction_nonempty,
        vm.active_fraction
    );
    strict.seed = 3;
    vacation.seed = 3;
    let sm2 = simulate_enforced(&p, &sched, params.deadline, &strict);
    let vm2 = simulate_enforced(&p, &sched, params.deadline, &vacation);
    assert_eq!(sm2.items_completed, vm2.items_completed);
}
