//! The paper's headline qualitative claims, as executable assertions.
//!
//! Each test names the claim (§ reference) and checks the *shape* the
//! paper reports — who wins, how each strategy scales — not absolute
//! numbers, which depended on the authors' hardware.

use rtsdf::core::comparison::{compare_at, sweep, SweepConfig};
use rtsdf::model::analysis;
use rtsdf::prelude::*;

fn blast() -> PipelineSpec {
    rtsdf::blast::paper_pipeline()
}

const PAPER_B: [f64; 4] = [1.0, 3.0, 9.0, 6.0];

fn enforced_af(p: &PipelineSpec, tau0: f64, d: f64) -> Option<f64> {
    EnforcedWaitsProblem::new(p, RtParams::new(tau0, d).unwrap(), PAPER_B.to_vec())
        .solve(SolveMethod::WaterFilling)
        .ok()
        .map(|s| s.active_fraction)
}

fn monolithic_af(p: &PipelineSpec, tau0: f64, d: f64) -> Option<f64> {
    MonolithicProblem::new(p, RtParams::new(tau0, d).unwrap(), 1.0, 1.0)
        .solve_fast()
        .ok()
        .map(|s| s.active_fraction)
}

#[test]
fn claim_enforced_scales_inversely_with_deadline() {
    // §6.3: "the enforced-wait strategy's active fraction ... scales
    // inversely with D" — longer deadlines buy strictly more waiting.
    let p = blast();
    let tau0 = 5.0;
    let afs: Vec<f64> = [3e4, 6e4, 1.2e5, 2.4e5]
        .iter()
        .map(|&d| enforced_af(&p, tau0, d).unwrap())
        .collect();
    for w in afs.windows(2) {
        assert!(w[1] < w[0], "active fraction must drop with D: {afs:?}");
    }
    // And meaningfully so: quadrupling the deadline range should cut the
    // active fraction substantially.
    assert!(afs.last().unwrap() < &(afs[0] * 0.7), "{afs:?}");
}

#[test]
fn claim_enforced_insensitive_to_tau0_except_smallest() {
    // §6.3: "insensitive to τ0 except at the smallest sizes".
    let p = blast();
    let d = 1.2e5;
    let a20 = enforced_af(&p, 20.0, d).unwrap();
    let a50 = enforced_af(&p, 50.0, d).unwrap();
    let a100 = enforced_af(&p, 100.0, d).unwrap();
    assert!((a50 - a100).abs() / a50 < 0.02, "{a50} vs {a100}");
    assert!((a20 - a100).abs() / a20 < 0.3);
    // But at the smallest τ0 the stability constraints bite hard.
    let a4 = enforced_af(&p, 4.0, d).unwrap();
    assert!(a4 > 1.5 * a100, "small tau0 must hurt: {a4} vs {a100}");
}

#[test]
fn claim_monolithic_insensitive_to_deadline() {
    // §6.3: "the monolithic strategy is mostly insensitive to D".
    let p = blast();
    let tau0 = 50.0;
    let a1 = monolithic_af(&p, tau0, 2e5).unwrap();
    let a2 = monolithic_af(&p, tau0, 3.5e5).unwrap();
    assert!((a1 - a2).abs() / a2 < 0.12, "{a1} vs {a2}");
    // Even across a 3.5x deadline range the drift stays modest compared
    // to the enforced strategy's response to the same slack.
    let a0 = monolithic_af(&p, tau0, 1e5).unwrap();
    assert!((a0 - a2).abs() / a2 < 0.25, "{a0} vs {a2}");
}

#[test]
fn claim_monolithic_scales_inversely_with_tau0() {
    // §6.3: monolithic active fraction ∝ ρ0 = 1/τ0.
    let p = blast();
    let d = 3.5e5;
    let a25 = monolithic_af(&p, 25.0, d).unwrap();
    let a50 = monolithic_af(&p, 50.0, d).unwrap();
    let a100 = monolithic_af(&p, 100.0, d).unwrap();
    assert!((a25 / a50 - 2.0).abs() < 0.35, "a25/a50 = {}", a25 / a50);
    assert!((a50 / a100 - 2.0).abs() < 0.35, "a50/a100 = {}", a50 / a100);
}

#[test]
fn claim_fig4_win_regions() {
    // §6.3 / Fig. 4: enforced waits lower utilization "over a large
    // portion of the arrival rate/deadline parameter space", with the
    // advantage "at least 0.4 in absolute terms" for fast arrivals with
    // slack; monolithic dominates for slow arrivals and little slack.
    let p = blast();
    let (tau0s, ds) = RtParams::paper_grid(10, 10);
    let r = sweep(&p, &tau0s, &ds, &SweepConfig::paper_blast()).unwrap();
    assert!(
        r.enforced_win_fraction() > 0.6,
        "{}",
        r.enforced_win_fraction()
    );
    assert!(r.max_enforced_advantage().unwrap() >= 0.4);

    // The monolithic corner: slow arrivals, minimal slack.
    let corner = compare_at(
        &p,
        RtParams::new(100.0, 2.4e4).unwrap(),
        &SweepConfig::paper_blast(),
    );
    assert!(corner.difference().unwrap() < -0.4, "{corner:?}");
}

#[test]
fn claim_enforced_exploits_deadline_slack_monolithic_cannot() {
    // §6.3: "the monolithic strategy's ability to exploit additional
    // deadline to improve utilization is limited" while enforced waits
    // keep improving. Compare each strategy's improvement from doubling
    // an already-ample deadline.
    let p = blast();
    // τ0 = 20: the monolithic strategy is already near its large-M
    // plateau at the smaller deadline, so extra slack buys it little,
    // while the enforced strategy is still far from its stability caps
    // and converts the same slack into much longer waits.
    let tau0 = 20.0;
    let e_gain = enforced_af(&p, tau0, 4e4).unwrap() - enforced_af(&p, tau0, 1.2e5).unwrap();
    let m_gain = monolithic_af(&p, tau0, 4e4).unwrap() - monolithic_af(&p, tau0, 1.2e5).unwrap();
    assert!(
        e_gain > 3.0 * m_gain.max(0.0),
        "enforced gain {e_gain} should dwarf monolithic gain {m_gain}"
    );
}

#[test]
fn claim_asymptotic_n_fold_advantage() {
    // The analytic counterpart of Fig. 3's gap: with unbounded deadline
    // slack, enforced waits approach 1/N of the monolithic limit.
    let p = blast();
    let params = RtParams::new(10.0, 1e12).unwrap();
    let e = analysis::enforced_limit_active_fraction(&p, &params);
    let m = analysis::monolithic_limit_active_fraction(&p, &params);
    assert!((m / e - p.len() as f64).abs() < 1e-9);
    // The optimizer actually attains the enforced limit.
    let sched = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec())
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    assert!((sched.active_fraction - e).abs() / e < 1e-6);
}

#[test]
fn claim_infeasible_below_min_deadline() {
    // §6.1: deadlines below 2×10⁴ cycles yielded no feasible miss-free
    // realizations for either strategy. Our analytic minimum for the
    // enforced strategy with the paper's b is Σ b_i·x̂_i ≈ 2.34×10⁴, and
    // the monolithic minimum response even at M = 1 exceeds T̄(1) ≈
    // 4 397 + bMτ0; at the paper's grid floor both strategies are
    // squeezed out across most arrival rates.
    let p = blast();
    for tau0 in [1.0, 10.0, 100.0] {
        let params = RtParams::new(tau0, 1.5e4).unwrap();
        let e = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec())
            .solve(SolveMethod::WaterFilling);
        assert!(e.is_err(), "enforced feasible at D=1.5e4, tau0={tau0}?");
    }
}
