//! Cross-crate integration: optimizer → simulator → measurement, the
//! paper's §6.2 loop at test scale.

use rtsdf::prelude::*;
use rtsdf::sim::calibration::{calibrate_enforced, CalibrationConfig};
use rtsdf::sim::validate::{enforced_agreement, monolithic_agreement};

const PAPER_B: [f64; 4] = [1.0, 3.0, 9.0, 6.0];

fn blast() -> PipelineSpec {
    rtsdf::blast::paper_pipeline()
}

#[test]
fn optimizer_and_simulator_agree_for_both_strategies() {
    // §6.2: "the active fractions measured in the simulator closely
    // matched those predicted by the optimizer for each approach and
    // set of parameters tested."
    let p = blast();
    let points = [
        RtParams::new(10.0, 1e5).unwrap(),
        RtParams::new(30.0, 2e5).unwrap(),
        RtParams::new(80.0, 3e5).unwrap(),
    ];
    let enforced = enforced_agreement(&p, &points, &PAPER_B, 8_000, 17);
    assert!(
        !enforced.cells.is_empty() && enforced.worst_rel_error() < 0.05,
        "enforced agreement: {:#?}",
        enforced.cells
    );
    // Monolithic blocks can hold thousands of items, so agreement needs
    // a stream many blocks long; use slower arrivals (smaller optimal
    // M) and a longer stream.
    let mono_points = [
        RtParams::new(30.0, 1e5).unwrap(),
        RtParams::new(60.0, 2e5).unwrap(),
        RtParams::new(80.0, 3e5).unwrap(),
    ];
    let mono = monolithic_agreement(&p, &mono_points, 1.0, 1.0, 20_000, 17);
    assert!(
        !mono.cells.is_empty() && mono.worst_rel_error() < 0.08,
        "monolithic agreement: {:#?}",
        mono.cells
    );
}

#[test]
fn paper_backlog_factors_are_low_miss_across_seeds() {
    // The paper's calibrated b = [1,3,9,6] gave no misses in ≥95% of
    // trials and <1% missed items otherwise. At test scale we check a
    // slightly weaker version of the same property.
    let p = blast();
    let params = RtParams::new(10.0, 1e5).unwrap();
    let sched = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec())
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let report = run_seeds_enforced(
        &p,
        &sched,
        params.deadline,
        &SimConfig::quick(10.0, 0, 5_000),
        12,
    );
    assert!(
        report.miss_free_fraction() >= 0.75,
        "miss-free fraction {}",
        report.miss_free_fraction()
    );
    assert!(
        report.worst_miss_rate() < 0.01,
        "worst miss rate {}",
        report.worst_miss_rate()
    );
}

#[test]
fn optimistic_backlog_factors_miss_more_than_calibrated() {
    // §6.2's starting point b_i = ⌈g_i⌉ was optimistic: it produced
    // frequent misses, which is what drove the calibration. Verify the
    // direction of that effect.
    let p = blast();
    let params = RtParams::new(5.0, 4e4).unwrap();
    let optimistic = EnforcedWaitsProblem::optimistic_backlog(&p);
    let opt_sched = EnforcedWaitsProblem::new(&p, params, optimistic)
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let cal_sched = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec())
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let cfg = SimConfig::quick(5.0, 0, 8_000);
    let opt = run_seeds_enforced(&p, &opt_sched, params.deadline, &cfg, 10);
    let cal = run_seeds_enforced(&p, &cal_sched, params.deadline, &cfg, 10);
    assert!(
        opt.miss_free_fraction() <= cal.miss_free_fraction(),
        "optimistic {} vs calibrated {}",
        opt.miss_free_fraction(),
        cal.miss_free_fraction()
    );
    // And the calibrated design pays for safety with a higher active
    // fraction (waits must shrink to absorb the larger latency bound).
    assert!(cal_sched.active_fraction >= opt_sched.active_fraction - 1e-12);
}

#[test]
fn monolithic_nearly_miss_free_at_b1_s1() {
    // §6.2 reports no misses for the monolithic strategy even at
    // b = 1, S = 1. Our optimizer saturates the latency bound exactly
    // (the paper's Fig. 2 as stated), so sampled gain variance can push
    // a block's processing a hair past the bound — we observe rare
    // misses (worst ≈ 0.1% of items), comfortably inside the paper's
    // "fewer than 1%" regime. A tiny safety margin (S = 1.1) removes
    // them entirely, recovering the paper's observation.
    let p = blast();
    for (tau0, d) in [(30.0, 1e5), (60.0, 2e5)] {
        let params = RtParams::new(tau0, d).unwrap();
        let sched = MonolithicProblem::new(&p, params, 1.0, 1.0)
            .solve()
            .unwrap();
        let report = run_seeds_monolithic(
            &p,
            &sched,
            params.deadline,
            &SimConfig::quick(tau0, 0, 5_000),
            8,
        );
        assert!(
            report.worst_miss_rate() < 0.01,
            "tau0={tau0}, D={d}: worst rate {}",
            report.worst_miss_rate()
        );

        let safe = MonolithicProblem::new(&p, params, 1.0, 1.1)
            .solve()
            .unwrap();
        let safe_report = run_seeds_monolithic(
            &p,
            &safe,
            params.deadline,
            &SimConfig::quick(tau0, 0, 5_000),
            8,
        );
        assert_eq!(
            safe_report.miss_free_fraction(),
            1.0,
            "S = 1.1 should be miss-free; worst rate {}",
            safe_report.worst_miss_rate()
        );
    }
}

#[test]
fn calibration_loop_reaches_target_and_beats_start() {
    let p = blast();
    let grid = vec![RtParams::new(8.0, 8e4).unwrap()];
    let result = calibrate_enforced(&p, &CalibrationConfig::quick(grid));
    assert!(result.converged, "{:?}", result.rounds);
    let last = result.rounds.last().unwrap();
    assert!(last.worst_miss_free >= 0.95);
    // Factors grew beyond the optimistic start if the start was failing.
    if result.rounds.len() > 1 {
        let first = &result.rounds[0];
        assert!(first.worst_miss_free < 0.95);
        assert!(result.b.iter().sum::<f64>() > first.b.iter().sum::<f64>());
    }
}

#[test]
fn empty_firings_metric_ordering() {
    // The "vacation" accounting never exceeds the charged accounting.
    let p = blast();
    let params = RtParams::new(50.0, 2e5).unwrap();
    let sched = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec())
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let m = simulate_enforced(
        &p,
        &sched,
        params.deadline,
        &SimConfig::quick(50.0, 2, 3_000),
    );
    assert!(m.active_fraction_nonempty <= m.active_fraction + 1e-12);
    // At τ0=50 the tail stages see little traffic: some firings must be
    // empty, so the two metrics genuinely differ.
    assert!(
        m.active_fraction_nonempty < m.active_fraction,
        "expected empty firings at a slow arrival rate"
    );
}
