//! Cross-crate integration: the optimizers, the KKT verifier, and the
//! queueing-theory estimator working together on the BLAST pipeline.

use rtsdf::core::kkt::verify_kkt;
use rtsdf::prelude::*;
use rtsdf::queueing::estimate::{estimate_backlog_factors, EstimateConfig};

const PAPER_B: [f64; 4] = [1.0, 3.0, 9.0, 6.0];

fn blast() -> PipelineSpec {
    rtsdf::blast::paper_pipeline()
}

#[test]
fn both_solvers_agree_and_certify_across_the_grid() {
    let p = blast();
    let (tau0s, ds) = RtParams::paper_grid(5, 4);
    let mut solved = 0;
    for &tau0 in &tau0s {
        for &d in &ds {
            let params = RtParams::new(tau0, d).unwrap();
            let prob = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec());
            let wf = prob.solve(SolveMethod::WaterFilling);
            let ip = prob.solve(SolveMethod::InteriorPoint);
            match (wf, ip) {
                (Ok(wf), Ok(ip)) => {
                    solved += 1;
                    assert!(
                        (wf.active_fraction - ip.active_fraction).abs() < 1e-4,
                        "solver mismatch at tau0={tau0} D={d}: {} vs {}",
                        wf.active_fraction,
                        ip.active_fraction
                    );
                    let kkt = verify_kkt(&prob, &wf.periods, 1e-5);
                    assert!(
                        kkt.is_optimal(1e-3),
                        "KKT failure at tau0={tau0} D={d}: {kkt:?}"
                    );
                }
                (Err(_), Err(_)) => {} // consistently infeasible
                (wf, ip) => {
                    panic!("feasibility disagreement at tau0={tau0} D={d}: {wf:?} vs {ip:?}")
                }
            }
        }
    }
    assert!(solved >= 8, "too few feasible grid cells solved: {solved}");
}

#[test]
fn enforced_waits_schedule_is_reproducible() {
    let p = blast();
    let params = RtParams::new(10.0, 1e5).unwrap();
    let s1 = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec())
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let s2 = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec())
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    assert_eq!(s1.periods, s2.periods);
    assert_eq!(s1.active_fraction, s2.active_fraction);
}

#[test]
fn queueing_estimates_reasonable_versus_paper_calibration() {
    // The paper's empirically calibrated factors are b = [1, 3, 9, 6].
    // The a-priori estimator should produce factors of the same scale
    // (within small integers, not orders of magnitude) for a schedule
    // that is deadline-bound.
    let p = blast();
    let params = RtParams::new(10.0, 3e4).unwrap();
    let sched = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec())
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let est = estimate_backlog_factors(&p, &sched.periods, params.tau0, &EstimateConfig::default());
    for (i, e) in est.iter().enumerate() {
        assert!(
            e.b >= 1.0 && e.b <= 16.0,
            "node {i}: a-priori b = {} out of plausible range",
            e.b
        );
    }
}

#[test]
fn monolithic_and_enforced_feasibility_boundaries() {
    let p = blast();
    // Enforced head-stability limit: x̂_0/v ≈ 2.83 cycles.
    let below = RtParams::new(2.0, 1e9).unwrap();
    let above = RtParams::new(3.0, 1e9).unwrap();
    assert!(EnforcedWaitsProblem::new(&p, below, PAPER_B.to_vec())
        .solve(SolveMethod::WaterFilling)
        .is_err());
    assert!(EnforcedWaitsProblem::new(&p, above, PAPER_B.to_vec())
        .solve(SolveMethod::WaterFilling)
        .is_ok());
    // Monolithic stability limit: Σ G_i·t_i / v ≈ 7.9 cycles.
    let below = RtParams::new(7.0, 3.5e5).unwrap();
    let above = RtParams::new(9.0, 3.5e5).unwrap();
    assert!(MonolithicProblem::new(&p, below, 1.0, 1.0).solve().is_err());
    assert!(MonolithicProblem::new(&p, above, 1.0, 1.0).solve().is_ok());
}

#[test]
fn monolithic_fast_and_exact_agree_across_grid() {
    let p = blast();
    let (tau0s, ds) = RtParams::paper_grid(4, 4);
    for &tau0 in &tau0s {
        for &d in &ds {
            let params = RtParams::new(tau0, d).unwrap();
            let prob = MonolithicProblem::new(&p, params, 1.0, 1.0);
            match (prob.solve(), prob.solve_fast()) {
                (Ok(a), Ok(b)) => assert!(
                    (a.active_fraction - b.active_fraction).abs() < 1e-9,
                    "tau0={tau0} D={d}: {} vs {}",
                    a.active_fraction,
                    b.active_fraction
                ),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("tau0={tau0} D={d}: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn wait_schedules_serialize_roundtrip() {
    let p = blast();
    let params = RtParams::new(10.0, 1e5).unwrap();
    let s = EnforcedWaitsProblem::new(&p, params, PAPER_B.to_vec())
        .solve(SolveMethod::WaterFilling)
        .unwrap();
    let json = serde_json::to_string(&s).unwrap();
    let back: WaitSchedule = serde_json::from_str(&json).unwrap();
    // serde_json's default float parsing may be off by one ulp (exact
    // roundtrip is behind its `float_roundtrip` feature), so compare to
    // a tight tolerance instead of bitwise.
    for (a, b) in s.periods.iter().zip(&back.periods) {
        assert!((a - b).abs() <= a.abs() * 1e-15, "{a} vs {b}");
    }
    assert!((s.active_fraction - back.active_fraction).abs() < 1e-12);
}
